#!/usr/bin/env bash
# Tier-1 verification, fully offline and warning-clean.
#
# The workspace is hermetic (path dependencies only, Cargo.lock
# committed), so --offline must always succeed; any attempt to reach a
# registry is a bug. -Dwarnings keeps the workspace warning-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-Dwarnings ${RUSTFLAGS:-}"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> bench smoke run (quick mode)"
HARNESS_BENCH_QUICK=1 cargo bench --offline -p bench --bench omega_solver >/dev/null
HARNESS_BENCH_QUICK=1 cargo bench --offline -p bench --bench parallel_scaling >/dev/null
HARNESS_BENCH_QUICK=1 cargo bench --offline -p bench --bench warm_cache >/dev/null

echo "==> cache/prefilter/determinism smoke (includes the corpus-scaling gate)"
cargo run -q --release --offline -p bench --bin smoke

echo "==> CLI corpus mode byte-identity (1 vs 8 threads)"
# The whole built-in corpus through tinydep --corpus on the two-level
# pool must print byte-identical reports at every thread count.
corpus_t1=$(cargo run -q --release --offline --bin tinydep -- --corpus --threads=1)
corpus_t8=$(cargo run -q --release --offline --bin tinydep -- --corpus --threads=8)
if [ "$corpus_t1" != "$corpus_t8" ]; then
    echo "ci.sh: FAIL: tinydep --corpus output differs between 1 and 8 threads" >&2
    exit 1
fi

echo "==> CLI checkpoint byte-identity (base checkpointing on vs off)"
# Resuming checkpointed base tableaus is a pure performance feature:
# the whole-corpus report must not change by a byte when it is off,
# with and without the memo cache.
corpus_nockpt=$(cargo run -q --release --offline --bin tinydep -- --corpus --threads=8 --no-base-checkpoint)
if [ "$corpus_t8" != "$corpus_nockpt" ]; then
    echo "ci.sh: FAIL: tinydep --corpus output differs with --no-base-checkpoint" >&2
    exit 1
fi
corpus_nocache=$(cargo run -q --release --offline --bin tinydep -- --corpus --threads=8 --no-cache)
corpus_nocache_nockpt=$(cargo run -q --release --offline --bin tinydep -- --corpus --threads=8 --no-cache --no-base-checkpoint)
if [ "$corpus_nocache" != "$corpus_nocache_nockpt" ]; then
    echo "ci.sh: FAIL: --no-base-checkpoint changes the report under --no-cache" >&2
    exit 1
fi
if [ "$corpus_t8" != "$corpus_nocache" ]; then
    echo "ci.sh: FAIL: tinydep --corpus output differs with --no-cache" >&2
    exit 1
fi

echo "==> parallelize decision engine (corpus gate + byte-identity)"
# The newly-parallelizable counts per program are pinned in
# table_parallelize; any drift (kills regressing, or silently unlocking
# more) fails here.
cargo run -q --release --offline -p bench --bin table_parallelize >/dev/null
# The full --parallelize corpus report must be byte-identical at every
# thread count, with and without the memo cache.
par_base=$(cargo run -q --release --offline --bin tinydep -- --parallelize --corpus --threads=1)
for t in 2 8 16; do
    got=$(cargo run -q --release --offline --bin tinydep -- --parallelize --corpus --threads=$t)
    if [ "$par_base" != "$got" ]; then
        echo "ci.sh: FAIL: --parallelize --corpus differs at --threads=$t" >&2
        exit 1
    fi
    got=$(cargo run -q --release --offline --bin tinydep -- --parallelize --corpus --threads=$t --no-cache)
    if [ "$par_base" != "$got" ]; then
        echo "ci.sh: FAIL: --parallelize --corpus differs at --threads=$t --no-cache" >&2
        exit 1
    fi
done
# The corpus CHOLSKY section must equal the one-shot report, which the
# golden pins (the serve test below closes the loop with the server op).
par_cholsky=$(cargo run -q --release --offline --bin tinydep -- --parallelize corpus:cholsky)
par_section=$(printf '%s\n' "$par_base" \
    | awk '/^== cholsky ==$/{on=1; next} /^== /{on=0} on')
if [ "$par_cholsky" != "$par_section" ]; then
    echo "ci.sh: FAIL: --parallelize corpus section differs from the one-shot report" >&2
    exit 1
fi
if [ "$par_cholsky" != "$(cat tests/golden/cholsky_parallelize.txt)" ]; then
    echo "ci.sh: FAIL: --parallelize corpus:cholsky differs from the golden" >&2
    exit 1
fi
# The server parallelize op must match the one-shot report and golden.
cargo test -q --release --offline --test serve \
    parallelize_op_matches_the_one_shot_report_and_the_golden >/dev/null

echo "==> baseline-subsumption table (Banerjee book examples)"
# Fails when the Omega test stops eliminating the false dependences the
# GCD/Banerjee baselines report on the book examples.
cargo run -q --release --offline -p bench --bin table_banerjee >/dev/null

echo "==> server soak gate (1000 corpus requests through tinydep --serve)"
# Gates the analysis server: every response byte-identical to the
# one-shot report, flat live-row counts across the soak (row-store GC),
# and a warm-hit rate above the floor. Release build keeps it quick.
TINYDEP_SOAK_N=1000 cargo test -q --release --offline --test serve \
    soak_bounded_rows_warm_hits_and_byte_identical_reports

echo "==> determinism test, single-threaded test runner"
cargo test -q --offline --test determinism -- --test-threads=1

echo "==> allocation-regression gate (release perf guard)"
cargo test -q --release --offline --test perf_guard

echo "==> ci.sh: all checks passed"
