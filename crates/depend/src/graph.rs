//! The dependence-graph IR: statements as nodes, dependences as edges.
//!
//! [`analyze_program`](crate::analyze_program) produces flat vectors of
//! [`Dependence`] records; every consumer used to re-walk those vectors
//! and re-derive the same presentation data (access strings via
//! [`access_of`], direction summaries, status tags) on its own. The
//! [`DepGraph`] computes that once: it is the single IR that
//! [`report`](crate::report), [`dot`](crate::dot),
//! [`Legality`](crate::Legality) and the
//! [`parallelize`](crate::parallelize) decision engine consume.
//!
//! Edges keep a reference to their underlying [`Dependence`] (with its
//! constraint problems and cases intact) plus the precomputed render
//! strings, and are stored in the canonical analysis order — flows,
//! antis, outputs, each in construction order — so every renderer that
//! iterates the graph reproduces the pre-IR output byte for byte.
//!
//! The graph also answers the per-loop questions behind the
//! parallelization decisions under an explicit [`KillView`]: the
//! *post-kill* view sees only live (surviving) edges, the *pre-kill*
//! view sees every edge as if the dead-marking analyses (kill *and*
//! covering — the two ways a dependence is declared false) had never
//! run. Since those analyses only mark dependences dead — they never
//! add or reshape them — the pre-kill view of one extended analysis is
//! exactly what a `kill: false, cover: false` run would have produced
//! (property-tested in `tests/parallelize.rs`), which is what makes the
//! kills-on/kills-off delta computable from a single analysis.

use std::collections::BTreeSet;

use tiny::ast::name_key;
use tiny::ProgramInfo;

use crate::analysis::Analysis;
use crate::dep::{DepKind, Dependence};
use crate::pairs::access_of;
use crate::space::OrderCase;
use crate::transform::LoopRef;

/// One statement node of the dependence graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Statement label (source order, 1-based).
    pub label: usize,
    /// The written access, rendered (`a(i, j)`).
    pub write: String,
    /// Enclosing loop variables, outermost first.
    pub loop_vars: Vec<String>,
}

/// One dependence edge: the underlying record plus the render data every
/// consumer needs (previously re-derived separately by `report.rs` and
/// `dot.rs`).
#[derive(Debug, Clone)]
pub struct Edge<'a> {
    /// The underlying dependence (cases, problems, liveness).
    pub dep: &'a Dependence,
    /// Source access, rendered (`a(i-1)`).
    pub src_access: String,
    /// Destination access, rendered.
    pub dst_access: String,
    /// Canonical (case-folded) name of the source access's array.
    pub src_array: String,
    /// Direction/distance summary (`(0,1)`), empty when the endpoints
    /// share no loop.
    pub dir: String,
    /// Status tag (`[ k]`, `[Cr]`, ...).
    pub tag: String,
}

impl Edge<'_> {
    /// The dependence kind.
    pub fn kind(&self) -> DepKind {
        self.dep.kind
    }

    /// Whether the dependence survived kill/cover analysis.
    pub fn is_live(&self) -> bool {
        self.dep.is_live()
    }

    /// Source statement label.
    pub fn src_label(&self) -> usize {
        self.dep.src.label
    }

    /// Destination statement label.
    pub fn dst_label(&self) -> usize {
        self.dep.dst.label
    }

    /// Whether this edge exists under `view`: every edge pre-kill, only
    /// live ones post-kill.
    pub fn alive_under(&self, view: KillView) -> bool {
        match view {
            KillView::PreKill => true,
            KillView::PostKill => self.is_live(),
        }
    }

    /// Compact description for blocking-dependence annotations:
    /// `flow 2->5 (1,0) on A`.
    pub fn describe(&self) -> String {
        let mut s = format!("{} {}->{}", self.dep.kind, self.src_label(), self.dst_label());
        if !self.dir.is_empty() {
            s.push(' ');
            s.push_str(&self.dir);
        }
        s.push_str(" on ");
        s.push_str(&self.src_array.to_uppercase());
        s
    }
}

/// Which dependences a query sees: the surviving (post-kill/post-cover)
/// graph, or the full graph as standard analysis would report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillView {
    /// Only live edges — kill analysis applied.
    PostKill,
    /// Every edge, dead or not — as if kill analysis never ran.
    PreKill,
}

/// The parallelization verdict for one loop under one [`KillView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopVerdict {
    /// Indices (into [`DepGraph::edges`]) of the dependences carried by
    /// the loop under the view, in edge order.
    pub carried: Vec<usize>,
    /// `Some(arrays)` when the loop can run in parallel after
    /// privatizing `arrays` (empty set = outright parallel, no
    /// privatization needed); `None` when a carried flow — or a storage
    /// dependence on an unprivatizable array — keeps it sequential.
    pub privatize: Option<BTreeSet<String>>,
}

impl LoopVerdict {
    /// No carried dependence at all: parallel as written.
    pub fn outright_parallel(&self) -> bool {
        self.carried.is_empty()
    }

    /// Parallelizable, possibly after privatization.
    pub fn parallelizable(&self) -> bool {
        self.privatize.is_some()
    }
}

/// The dependence-graph IR over one program's [`Analysis`].
#[derive(Debug)]
pub struct DepGraph<'a> {
    info: &'a ProgramInfo,
    analysis: &'a Analysis,
    nodes: Vec<Node>,
    edges: Vec<Edge<'a>>,
}

impl<'a> DepGraph<'a> {
    /// Builds the graph: one node per statement (source order), one edge
    /// per dependence in the canonical order flows → antis → outputs.
    pub fn new(info: &'a ProgramInfo, analysis: &'a Analysis) -> DepGraph<'a> {
        let nodes = info
            .stmts
            .iter()
            .map(|s| Node {
                label: s.label,
                write: s.write.to_string(),
                loop_vars: s.loops.iter().map(|l| l.var.clone()).collect(),
            })
            .collect();
        let mut edges = Vec::with_capacity(
            analysis.flows.len() + analysis.antis.len() + analysis.outputs.len(),
        );
        for dep in analysis
            .flows
            .iter()
            .chain(&analysis.antis)
            .chain(&analysis.outputs)
        {
            let src = access_of(info.stmt(dep.src.label), dep.src.site);
            let dst = access_of(info.stmt(dep.dst.label), dep.dst.site);
            edges.push(Edge {
                dep,
                src_access: src.to_string(),
                dst_access: dst.to_string(),
                src_array: name_key(&src.array),
                dir: if dep.common > 0 {
                    dep.summary().to_string()
                } else {
                    String::new()
                },
                tag: dep.status_tag(),
            });
        }
        DepGraph {
            info,
            analysis,
            nodes,
            edges,
        }
    }

    /// The program the graph describes.
    pub fn info(&self) -> &'a ProgramInfo {
        self.info
    }

    /// The analysis the graph was built from.
    pub fn analysis(&self) -> &'a Analysis {
        self.analysis
    }

    /// Statement nodes, in source order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges, in the canonical flows → antis → outputs order.
    pub fn edges(&self) -> &[Edge<'a>] {
        &self.edges
    }

    /// Edges of one dependence kind, in construction order.
    pub fn edges_of_kind(&self, kind: DepKind) -> impl Iterator<Item = &Edge<'a>> {
        self.edges.iter().filter(move |e| e.kind() == kind)
    }

    /// Live flow edges (the Figure 3 rows).
    pub fn live_flows(&self) -> impl Iterator<Item = &Edge<'a>> {
        self.edges_of_kind(DepKind::Flow).filter(|e| e.is_live())
    }

    /// Dead flow edges (the Figure 4 rows).
    pub fn dead_flows(&self) -> impl Iterator<Item = &Edge<'a>> {
        self.edges_of_kind(DepKind::Flow).filter(|e| !e.is_live())
    }

    /// Whether both endpoints of `dep` are nested inside loop `l`.
    pub fn under(&self, dep: &Dependence, l: &LoopRef) -> bool {
        let src = self.info.stmt(dep.src.label);
        let dst = self.info.stmt(dep.dst.label);
        src.path.starts_with(&l.path) && dst.path.starts_with(&l.path)
    }

    /// Indices of the edges carried by loop `l` under `view`: both
    /// endpoints inside `l` and some case carried at `l`'s depth.
    pub fn carried_edges(&self, l: &LoopRef, view: KillView) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.alive_under(view)
                    && self.under(e.dep, l)
                    && e.dep
                        .cases
                        .iter()
                        .any(|c| c.order == OrderCase::CarriedAt(l.depth))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `array` (canonical name) is privatizable with respect to
    /// loop `l` under `view`: no flow dependence on the array is carried
    /// by `l`, so every iteration uses only values it produced itself
    /// (or loop-invariant live-ins, handled by copy-in).
    pub fn privatizable(&self, array: &str, l: &LoopRef, view: KillView) -> bool {
        let key = name_key(array);
        !self.edges.iter().any(|e| {
            e.kind() == DepKind::Flow
                && e.alive_under(view)
                && self.under(e.dep, l)
                && e.src_array == key
                && e.dep
                    .cases
                    .iter()
                    .any(|c| c.order == OrderCase::CarriedAt(l.depth))
        })
    }

    /// The parallelization verdict for loop `l` under `view` — the
    /// decision [`parallelize`](crate::parallelize) and
    /// [`Legality`](crate::Legality) both consume.
    pub fn loop_verdict(&self, l: &LoopRef, view: KillView) -> LoopVerdict {
        let carried = self.carried_edges(l, view);
        let mut privatize = BTreeSet::new();
        for &i in &carried {
            let e = &self.edges[i];
            match e.kind() {
                DepKind::Flow => {
                    return LoopVerdict {
                        carried,
                        privatize: None,
                    }
                }
                DepKind::Anti | DepKind::Output => {
                    if !self.privatizable(&e.src_array, l, view) {
                        return LoopVerdict {
                            carried,
                            privatize: None,
                        };
                    }
                    privatize.insert(e.src_array.clone());
                }
            }
        }
        LoopVerdict {
            carried,
            privatize: Some(privatize),
        }
    }

    /// The carried edges that keep a sequential loop sequential: carried
    /// flows, plus storage edges on arrays that are not privatizable
    /// under `view`. Empty exactly when the loop is parallelizable.
    pub fn blockers(&self, verdict: &LoopVerdict, l: &LoopRef, view: KillView) -> Vec<usize> {
        if verdict.parallelizable() {
            return Vec::new();
        }
        verdict
            .carried
            .iter()
            .copied()
            .filter(|&i| {
                let e = &self.edges[i];
                e.kind() == DepKind::Flow || !self.privatizable(&e.src_array, l, view)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;
    use crate::transform::program_loops;

    fn run(src: &str) -> (ProgramInfo, Analysis) {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = analyze_program(&info, &Config::extended()).unwrap();
        (info, analysis)
    }

    #[test]
    fn edges_are_in_canonical_order_with_render_data() {
        let (info, a) = run(tiny::corpus::EXAMPLE_2);
        let g = DepGraph::new(&info, &a);
        assert_eq!(g.nodes().len(), info.stmts.len());
        assert_eq!(
            g.edges().len(),
            a.flows.len() + a.antis.len() + a.outputs.len()
        );
        // Order: all flows first, then antis, then outputs.
        let kinds: Vec<DepKind> = g.edges().iter().map(Edge::kind).collect();
        let mut sorted = kinds.clone();
        sorted.sort_by_key(|k| match k {
            DepKind::Flow => 0,
            DepKind::Anti => 1,
            DepKind::Output => 2,
        });
        assert_eq!(kinds, sorted);
        for e in g.edges() {
            assert!(!e.src_access.is_empty());
            assert!(!e.dst_access.is_empty());
            assert_eq!(e.src_array, name_key(&e.src_array));
        }
        assert_eq!(g.live_flows().count(), a.live_flows().count());
        assert_eq!(g.dead_flows().count(), a.dead_flows().count());
    }

    #[test]
    fn loop_verdicts_match_legality() {
        for src in [
            tiny::corpus::DOUBLE_BUFFER,
            tiny::corpus::MATMUL,
            tiny::corpus::SEIDEL,
            tiny::corpus::EXAMPLE_2,
        ] {
            let (info, a) = run(src);
            let g = DepGraph::new(&info, &a);
            let legality = crate::Legality::new(&info, &a);
            for l in program_loops(&info) {
                let v = g.loop_verdict(&l, KillView::PostKill);
                assert_eq!(v.outright_parallel(), legality.is_parallel(&l), "{l:?}");
                assert_eq!(
                    v.privatize,
                    legality.parallel_with_privatization(&l),
                    "{l:?}"
                );
            }
        }
    }

    #[test]
    fn prekill_view_sees_dead_edges() {
        let (info, a) = run(tiny::corpus::EXAMPLE_1);
        let g = DepGraph::new(&info, &a);
        let dead = g.edges().iter().filter(|e| !e.is_live()).count();
        assert!(dead > 0, "example 1 has a killed flow");
        for e in g.edges() {
            assert!(e.alive_under(KillView::PreKill));
            assert_eq!(e.alive_under(KillView::PostKill), e.is_live());
        }
    }

    #[test]
    fn blockers_empty_iff_parallelizable() {
        let (info, a) = run(tiny::corpus::SEIDEL);
        let g = DepGraph::new(&info, &a);
        for l in program_loops(&info) {
            for view in [KillView::PostKill, KillView::PreKill] {
                let v = g.loop_verdict(&l, view);
                let blockers = g.blockers(&v, &l, view);
                assert_eq!(v.parallelizable(), blockers.is_empty(), "{l:?}");
            }
        }
    }

    #[test]
    fn describe_is_compact() {
        let (info, a) = run("a(1) := 2; x := a(1);");
        let g = DepGraph::new(&info, &a);
        let e = g.live_flows().next().expect("one flow");
        assert_eq!(e.describe(), "flow 1->2 on A");
    }
}
