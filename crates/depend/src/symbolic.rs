//! Symbolic dependence analysis (§5): under which conditions on the
//! symbolic (loop-invariant) variables does a dependence exist? The answer
//! is computed by projecting the dependence problem onto the symbolic
//! variables and taking the **gist** of the result given everything
//! already known — producing exactly the concise user queries the paper
//! shows for Examples 7–11.

use std::collections::BTreeSet;

use omega::{Budget, LinExpr, Problem, VarId};
use tiny::ast::name_key;
use tiny::ProgramInfo;

use crate::dep::AccessSite;
use crate::error::Result;
use crate::occur::{
    exists_under_property, to_linexpr_with_occurrences, ArrayProperty, OccurrenceTable,
};
use crate::pairs::{access_of, executes_before};
use crate::space::{add_order, order_cases, OrderCase, Space, StmtVars};

/// A dependence pair prepared for symbolic analysis: subscripts are
/// translated with occurrence variables for every opaque term, and
/// in-bounds assertions are derived from the array declarations.
#[derive(Debug, Clone)]
pub struct SymbolicPair {
    /// The constraint space (src `i*`, dst `j*`, symbolic constants,
    /// occurrence variables).
    pub space: Space,
    /// Source iteration variables.
    pub src_vars: StmtVars,
    /// Destination iteration variables.
    pub dst_vars: StmtVars,
    /// Occurrences introduced while translating the pair.
    pub table: OccurrenceTable,
    /// Source statement label.
    pub src_label: usize,
    /// Source access site.
    pub src_site: AccessSite,
    /// Destination statement label.
    pub dst_label: usize,
    /// Destination access site.
    pub dst_site: AccessSite,
    /// Dimension-wise subscript equalities `src_dim − dst_dim = 0`.
    sub_equalities: Vec<LinExpr>,
    /// In-bounds constraints (from declared array extents) and program
    /// assumptions — the "things we already know".
    known_extra: Vec<LinExpr>,
    common: usize,
    lex_before: bool,
}

/// The symbolic condition for one restraint vector of a pair.
#[derive(Debug, Clone)]
pub struct SymbolicCondition {
    /// The restraint vector (order case).
    pub order: OrderCase,
    /// `gist π(p ∧ q) given π(p)` — the *new* conditions under which the
    /// dependence exists, over the kept variables.
    pub condition: Problem,
}

impl SymbolicCondition {
    /// Renders the paper-style user query: the condition that must never
    /// hold for the dependence to be ruled out.
    pub fn question(&self) -> String {
        if self.condition.is_trivially_true() {
            "The dependence exists unconditionally.".to_string()
        } else if self.condition.is_known_infeasible() {
            "The dependence cannot exist.".to_string()
        } else {
            format!(
                "Is it the case that the following never happens? {}",
                self.condition
            )
        }
    }
}

impl SymbolicPair {
    /// Prepares a pair for symbolic analysis.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn new(
        info: &ProgramInfo,
        src_label: usize,
        src_site: AccessSite,
        dst_label: usize,
        dst_site: AccessSite,
    ) -> Result<SymbolicPair> {
        let src = info.stmt(src_label);
        let dst = info.stmt(dst_label);
        let mut space = Space::new(&info.syms);
        let src_vars = space.bind_stmt("i", src);
        let dst_vars = space.bind_stmt("j", dst);
        let mut table = OccurrenceTable::default();

        // Translate the subscripts of EVERY access of both statements so
        // in-bounds assertions can be generated, sharing occurrences.
        let mut known_extra = Vec::new();
        let translate_access_bounds =
            |acc: &tiny::Access,
             vars: &StmtVars,
             prefix: &str,
             space: &mut Space,
             table: &mut OccurrenceTable|
             -> Result<Vec<LinExpr>> {
                let mut subs = Vec::new();
                for s in &acc.subs {
                    subs.push(to_linexpr_with_occurrences(s, vars, space, table, prefix)?);
                }
                Ok(subs)
            };

        // The pair's own subscripts give the dependence equalities.
        let src_acc = access_of(src, src_site).clone();
        let dst_acc = access_of(dst, dst_site).clone();
        let src_subs = translate_access_bounds(&src_acc, &src_vars, "i", &mut space, &mut table)?;
        let dst_subs = translate_access_bounds(&dst_acc, &dst_vars, "j", &mut space, &mut table)?;
        let mut sub_equalities = Vec::new();
        for (a, b) in src_subs.iter().zip(&dst_subs) {
            sub_equalities.push(a.combine(1, -1, b)?);
        }

        // In-bounds assertions for all accesses of both statements.
        let empty = StmtVars {
            iters: vec![],
            bindings: Default::default(),
        };
        let add_bounds = |acc: &tiny::Access,
                              subs: &[LinExpr],
                              space: &Space,
                              known: &mut Vec<LinExpr>| {
            let Some(decl) = info.arrays.get(&name_key(&acc.array)) else {
                return;
            };
            for (dim, sub) in subs.iter().enumerate() {
                let Some((lo, hi)) = decl.dims.get(dim) else { continue };
                let lo = crate::space::affine_in(lo, &empty, space);
                let hi = crate::space::affine_in(hi, &empty, space);
                if let Some(lo) = lo {
                    if let Ok(e) = sub.combine(1, -1, &lo) {
                        known.push(e); // sub - lo >= 0
                    }
                }
                if let Some(hi) = hi {
                    if let Ok(e) = hi.combine(1, -1, sub) {
                        known.push(e); // hi - sub >= 0
                    }
                }
            }
        };
        add_bounds(&src_acc, &src_subs, &space, &mut known_extra);
        add_bounds(&dst_acc, &dst_subs, &space, &mut known_extra);
        // Nested index-array accesses of the pair (the `s`, `s'` and
        // `Q_s`, `Q_s'` bounds of the paper's Example 8 setup): bound the
        // occurrence arguments by the index array's declared extents.
        for occ in table.occurrences.clone() {
            let Some(decl) = info.arrays.get(&occ.array) else {
                continue;
            };
            for (dim, arg) in occ.args.iter().enumerate() {
                let Some((lo, hi)) = decl.dims.get(dim) else { continue };
                if let Some(lo) = crate::space::affine_in(lo, &empty, &space) {
                    if let Ok(e) = arg.combine(1, -1, &lo) {
                        known_extra.push(e);
                    }
                }
                if let Some(hi) = crate::space::affine_in(hi, &empty, &space) {
                    if let Ok(e) = hi.combine(1, -1, arg) {
                        known_extra.push(e);
                    }
                }
            }
        }

        // Opaque loop bounds (array values or written scalars in bounds,
        // Example 9) become occurrence constraints on the iteration
        // variables: `j >= B(i)` etc.
        for (stmt, vars, prefix) in [(src, &src_vars, "i"), (dst, &dst_vars, "j")] {
            for (idx, l) in stmt.loops.iter().enumerate() {
                let iv = vars.iters[idx];
                if l.lower.is_none() {
                    let e = to_linexpr_with_occurrences(
                        &l.lower_expr,
                        vars,
                        &mut space,
                        &mut table,
                        prefix,
                    )?;
                    known_extra
                        .push(LinExpr::var(iv).combine(1, -1, &e)?);
                }
                if l.upper.is_none() {
                    let e = to_linexpr_with_occurrences(
                        &l.upper_expr,
                        vars,
                        &mut space,
                        &mut table,
                        prefix,
                    )?;
                    known_extra
                        .push(e.combine(1, -1, &LinExpr::var(iv))?);
                }
            }
        }

        let common = src.common_loops(dst);
        let lex_before = executes_before(src, src_site, dst, dst_site);
        Ok(SymbolicPair {
            space,
            src_vars,
            dst_vars,
            table,
            src_label,
            src_site,
            dst_label,
            dst_site,
            sub_equalities,
            known_extra,
            common,
            lex_before,
        })
    }

    /// The restraint vectors (order cases) of the pair.
    pub fn order_cases(&self) -> Vec<OrderCase> {
        order_cases(self.common, self.lex_before)
    }

    /// The "known" problem `p` for one order case: both iteration spaces,
    /// the order restraint, in-bounds assertions and program assumptions —
    /// everything true *whether or not* the dependence exists.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn known(&self, info: &ProgramInfo, case: OrderCase) -> Result<Problem> {
        let src = info.stmt(self.src_label);
        let dst = info.stmt(self.dst_label);
        let mut p = self.space.problem();
        self.space.add_iteration_space(&mut p, src, &self.src_vars)?;
        self.space.add_iteration_space(&mut p, dst, &self.dst_vars)?;
        self.space.add_assumptions(&mut p, &info.assumptions)?;
        for e in &self.known_extra {
            p.add_geq(e.clone());
        }
        add_order(&mut p, case, &self.src_vars, &self.dst_vars, self.common)?;
        Ok(p)
    }

    /// The "dependence exists" extra constraints `q`: subscript
    /// equalities.
    pub fn dependence_extra(&self) -> Problem {
        let mut q = self.space.problem();
        for e in &self.sub_equalities {
            q.add_eq(e.clone());
        }
        q
    }

    /// The full dependence problem `p ∧ q` for one order case.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn full_problem(&self, info: &ProgramInfo, case: OrderCase) -> Result<Problem> {
        let mut p = self.known(info, case)?;
        p.and(&self.dependence_extra())?;
        Ok(p)
    }

    /// Computes the symbolic condition for one order case over the kept
    /// variables: `gist π_keep(p ∧ q) given π_keep(p)` (§5, computed with
    /// the combined red/black projection of §3.3.2). Returns `None` when
    /// the projection splinters.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn condition(
        &self,
        info: &ProgramInfo,
        case: OrderCase,
        keep: &[VarId],
        budget: &mut Budget,
    ) -> Result<Option<SymbolicCondition>> {
        let p = self.known(info, case)?;
        let q = self.dependence_extra();
        let gist = omega::gist_projected(&q, &p, keep, budget)?;
        Ok(gist.map(|mut condition| {
            let _ = condition.simplify();
            SymbolicCondition {
                order: case,
                condition,
            }
        }))
    }

    /// All symbolic conditions, one per restraint vector whose dependence
    /// problem is satisfiable.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn conditions(
        &self,
        info: &ProgramInfo,
        keep: &[VarId],
        budget: &mut Budget,
    ) -> Result<Vec<SymbolicCondition>> {
        let mut out = Vec::new();
        for case in self.order_cases() {
            if !self.full_problem(info, case)?.is_satisfiable_with(budget)? {
                continue;
            }
            if let Some(c) = self.condition(info, case, keep, budget)? {
                out.push(c);
            }
        }
        Ok(out)
    }

    /// Looks up symbolic variables by name for the `keep` set.
    pub fn keep_vars(&self, names: &[&str]) -> Vec<VarId> {
        names
            .iter()
            .filter_map(|n| self.space.sym(n))
            .collect()
    }

    /// The occurrence variables (kept by default in queries).
    pub fn occurrence_vars(&self) -> Vec<VarId> {
        self.table.occurrences.iter().map(|o| o.var).collect()
    }

    /// Whether the dependence can still exist once `property` is assumed
    /// for the uninterpreted array `array`, over all restraint vectors.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn exists_with_property(
        &self,
        info: &ProgramInfo,
        array: &str,
        property: ArrayProperty,
        budget: &mut Budget,
    ) -> Result<bool> {
        let occs: Vec<&crate::occur::Occurrence> = self.table.of_array(array).collect();
        for case in self.order_cases() {
            let p = self.full_problem(info, case)?;
            if !p.is_satisfiable_with(budget)? {
                continue;
            }
            if exists_under_property(&p, &occs, property, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl SymbolicPair {
    /// Whether the dependence can exist given that `scalar` is a strictly
    /// increasing induction variable (Example 11's `k`).
    ///
    /// For loop-carried restraints the source instance's occurrence of the
    /// scalar is strictly smaller than the destination's; for the
    /// loop-independent restraint the two values are equal when no
    /// increment separates the statements within one iteration. Soundness
    /// requires every increment of the scalar to be nested in all common
    /// loops of the pair — checked here; otherwise the test stays
    /// conservative.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn exists_with_increasing_scalar(
        &self,
        info: &ProgramInfo,
        scalar: &str,
        budget: &mut Budget,
    ) -> Result<bool> {
        let key = name_key(scalar);
        let src = info.stmt(self.src_label);
        let dst = info.stmt(self.dst_label);
        // Guard: every writer of the scalar shares the full common nest.
        let guard_ok = info
            .stmts
            .iter()
            .filter(|s| name_key(&s.write.array) == key && s.write.subs.is_empty())
            .all(|w| w.common_loops(src) >= self.common && w.common_loops(dst) >= self.common);
        let src_occ: Vec<VarId> = self
            .table
            .occurrences
            .iter()
            .filter(|o| o.array == key && o.side == "i" && o.args.is_empty())
            .map(|o| o.var)
            .collect();
        let dst_occ: Vec<VarId> = self
            .table
            .occurrences
            .iter()
            .filter(|o| o.array == key && o.side == "j" && o.args.is_empty())
            .map(|o| o.var)
            .collect();
        for case in self.order_cases() {
            let mut p = self.full_problem(info, case)?;
            if guard_ok {
                for &a in &src_occ {
                    for &b in &dst_occ {
                        let diff = LinExpr::var(a)
                            .combine(1, -1, &LinExpr::var(b))?;
                        match case {
                            OrderCase::CarriedAt(_) => {
                                // v_src < v_dst.
                                let mut e = diff.negated();
                                e.add_constant(-1)?;
                                p.add_geq(e);
                            }
                            OrderCase::LoopIndependent => {
                                // Same iteration: equal values only when no
                                // increment sits between the statements.
                                let increment_between = info.stmts.iter().any(|s| {
                                    name_key(&s.write.array) == key
                                        && src.lexically_before(s)
                                        && s.lexically_before(dst)
                                });
                                if !increment_between {
                                    p.add_eq(diff.clone());
                                }
                            }
                        }
                    }
                }
            }
            if p.is_satisfiable_with(budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Identifies written scalars that behave as strictly increasing
/// induction variables: every write has the form `k := k + e` with `e >= 1`
/// provable under the writing statement's iteration space (Example 11's
/// `k := k + j`).
///
/// # Errors
///
/// Propagates solver errors.
pub fn increasing_scalars(info: &ProgramInfo, budget: &mut Budget) -> Result<BTreeSet<String>> {
    let mut result = BTreeSet::new();
    'scalars: for name in &info.written {
        let writers: Vec<&tiny::StmtInfo> = info
            .stmts
            .iter()
            .filter(|s| name_key(&s.write.array) == *name && s.write.subs.is_empty())
            .collect();
        if writers.is_empty()
            || info
                .stmts
                .iter()
                .any(|s| name_key(&s.write.array) == *name && !s.write.subs.is_empty())
        {
            continue;
        }
        for w in &writers {
            // Must be k := k + e with e >= 1.
            let Some(incr) = increment_of(&w.write.array, &w.rhs) else {
                continue 'scalars;
            };
            let mut space = Space::new(&info.syms);
            let vars = space.bind_stmt("i", w);
            let mut p = space.problem();
            space.add_iteration_space(&mut p, w, &vars)?;
            space.add_assumptions(&mut p, &info.assumptions)?;
            let Some(e) = crate::space::affine_in(&incr, &vars, &space) else {
                continue 'scalars;
            };
            // Provably e >= 1: p ∧ e <= 0 unsatisfiable.
            let mut test = p.clone();
            let mut neg = e.negated();
            neg.add_constant(0)?;
            test.add_geq(neg); // -e >= 0 i.e. e <= 0
            if test.is_satisfiable_with(budget)? {
                continue 'scalars;
            }
        }
        result.insert(name.clone());
    }
    Ok(result)
}

/// Pattern-matches `k := k + e` (or `e + k`), returning `e`.
fn increment_of(k: &str, rhs: &tiny::Expr) -> Option<tiny::Expr> {
    use tiny::ast::BinOp;
    use tiny::Expr;
    if let Expr::Bin(BinOp::Add, l, r) = rhs {
        if matches!(&**l, Expr::Var(v) if name_key(v) == name_key(k)) {
            return Some((**r).clone());
        }
        if matches!(&**r, Expr::Var(v) if name_key(v) == name_key(k)) {
            return Some((**l).clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn pair(
        src: &str,
        a: usize,
        a_site: AccessSite,
        b: usize,
        b_site: AccessSite,
    ) -> (ProgramInfo, SymbolicPair) {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let p = SymbolicPair::new(&info, a, a_site, b, b_site).unwrap();
        (info, p)
    }

    /// Example 7: the outer-loop-carried flow dependence exists only when
    /// `1 <= x <= 50` (given `50 <= n <= 100` and in-bounds assertions).
    #[test]
    fn example7_outer_carried_condition() {
        let src = format!("assume 50 <= n <= 100;\n{}", tiny::corpus::EXAMPLE_7);
        let (info, p) = pair(&src, 1, AccessSite::Write, 1, AccessSite::Read(0));
        let keep = p.keep_vars(&["x", "y", "m"]);
        let mut b = Budget::default();
        let c = p
            .condition(&info, OrderCase::CarriedAt(1), &keep, &mut b)
            .unwrap()
            .expect("projection is exact");
        let x = p.space.sym("x").unwrap();
        // Expect exactly { 1 <= x <= 50 }.
        let cond = &c.condition;
        assert!(
            cond.geqs().len() == 2 && cond.eqs().is_empty(),
            "expected two inequalities, got {cond}"
        );
        let lo = cond
            .geqs()
            .iter()
            .find(|g| g.expr().coef(x) > 0)
            .expect("lower bound on x");
        let hi = cond
            .geqs()
            .iter()
            .find(|g| g.expr().coef(x) < 0)
            .expect("upper bound on x");
        assert_eq!(lo.expr().constant(), -1, "x >= 1: {cond}");
        assert_eq!(hi.expr().constant(), 50, "x <= 50: {cond}");
    }

    /// Example 7, inner restraint `(0,+)`: exists iff `x = 0 ∧ y < m`.
    #[test]
    fn example7_inner_carried_condition() {
        let src = format!("assume 50 <= n <= 100;\n{}", tiny::corpus::EXAMPLE_7);
        let (info, p) = pair(&src, 1, AccessSite::Write, 1, AccessSite::Read(0));
        let keep = p.keep_vars(&["x", "y", "m"]);
        let mut b = Budget::default();
        let c = p
            .condition(&info, OrderCase::CarriedAt(2), &keep, &mut b)
            .unwrap()
            .expect("projection is exact");
        let cond = &c.condition;
        let x = p.space.sym("x").unwrap();
        let y = p.space.sym("y").unwrap();
        let m = p.space.sym("m").unwrap();
        // x = 0:
        assert!(
            cond.eqs().iter().any(|e| e.expr().coef(x) != 0
                && e.expr().constant() == 0
                && e.expr().num_terms() == 1),
            "expected x = 0 in {cond}"
        );
        // y < m i.e. m - y - 1 >= 0:
        assert!(
            cond.geqs().iter().any(|g| {
                g.expr().coef(m) == 1 && g.expr().coef(y) == -1 && g.expr().constant() == -1
            }),
            "expected y < m in {cond}"
        );
    }

    /// Example 8: the output dependence query is `Q[a] = Q[b]`; asserting
    /// injectivity rules the dependence out.
    #[test]
    fn example8_output_dependence_query_and_refutation() {
        let (info, p) = pair(
            tiny::corpus::EXAMPLE_8,
            1,
            AccessSite::Write,
            1,
            AccessSite::Write,
        );
        // One occurrence of q per side from the pair's subscripts.
        assert!(p.table.of_array("q").count() >= 2);
        let mut keep = p.occurrence_vars();
        keep.extend(p.keep_vars(&["n"]));
        let mut b = Budget::default();
        let cs = p.conditions(&info, &keep, &mut b).unwrap();
        assert_eq!(cs.len(), 1, "one restraint vector (+)");
        let cond = &cs[0].condition;
        // The condition is the equality of the two q occurrences.
        assert!(
            cond.eqs().iter().any(|e| e.expr().num_terms() == 2),
            "expected q(i) = q(j) in {cond}"
        );
        // Injectivity kills it.
        assert!(!p
            .exists_with_property(&info, "q", ArrayProperty::Injective, &mut b)
            .unwrap());
    }

    /// Example 8: the flow dependence asks about `Q[a] = Q[b] - 1`, which
    /// even a strictly increasing array cannot rule out.
    #[test]
    fn example8_flow_dependence_survives_monotonicity() {
        // Find the A[...] read (reads also include the nested Q reads).
        let info0 = analyze(&Program::parse(tiny::corpus::EXAMPLE_8).unwrap()).unwrap();
        let a_read = info0
            .stmt(1)
            .reads
            .iter()
            .position(|r| name_key(&r.array) == "a")
            .unwrap();
        let (info, p) = pair(
            tiny::corpus::EXAMPLE_8,
            1,
            AccessSite::Write,
            1,
            AccessSite::Read(a_read),
        );
        let mut b = Budget::default();
        assert!(p
            .exists_with_property(&info, "q", ArrayProperty::StrictlyIncreasing, &mut b)
            .unwrap());
        assert!(p
            .exists_with_property(&info, "q", ArrayProperty::Injective, &mut b)
            .unwrap());
        // A strictly DECREASING q cannot have Q[a] = Q[b+1] - 1 with
        // a < b+1 (values must drop).
        assert!(!p
            .exists_with_property(&info, "q", ArrayProperty::StrictlyDecreasing, &mut b)
            .unwrap());
    }

    /// Example 9: array values in loop bounds become occurrence
    /// constraints; the self output dependence of `A[i,j]` stays
    /// impossible.
    #[test]
    fn example9_bounds_occurrences() {
        let (info, p) = pair(
            tiny::corpus::EXAMPLE_9,
            1,
            AccessSite::Write,
            1,
            AccessSite::Write,
        );
        assert!(
            p.table.of_array("b").count() >= 2,
            "bound occurrences for B"
        );
        let mut b = Budget::default();
        let keep = p.occurrence_vars();
        let cs = p.conditions(&info, &keep, &mut b).unwrap();
        assert!(
            cs.is_empty(),
            "A[i,j] written once per iteration: no output dependence"
        );
    }

    /// Example 10: `i*j` is treated as an uninterpreted term `mul(i,j)`.
    #[test]
    fn example10_nonlinear_term() {
        let (info, p) = pair(
            tiny::corpus::EXAMPLE_10,
            1,
            AccessSite::Write,
            1,
            AccessSite::Write,
        );
        assert_eq!(p.table.of_array("mul").count(), 2);
        let mut b = Budget::default();
        let keep = p.occurrence_vars();
        let cs = p.conditions(&info, &keep, &mut b).unwrap();
        assert!(!cs.is_empty(), "dependence conditional on mul values");
        // Every condition equates the two occurrence values.
        for c in &cs {
            assert!(
                c.condition.eqs().iter().any(|e| e.expr().num_terms() == 2),
                "{}",
                c.condition
            );
        }
    }

    /// Example 11 (s141): `k` is recognized as strictly increasing, and
    /// the flow dependence of `a(k)` onto itself is refuted for all
    /// loop-carried restraints.
    #[test]
    fn example11_induction_scalar() {
        let info = analyze(&Program::parse(tiny::corpus::EXAMPLE_11).unwrap()).unwrap();
        let mut b = Budget::default();
        let inc = increasing_scalars(&info, &mut b).unwrap();
        assert!(inc.contains("k"), "k := k + j with j >= i >= 1");

        // Flow from the write a(k) (stmt 1) to its own read a(k).
        let read_idx = info
            .stmt(1)
            .reads
            .iter()
            .position(|r| name_key(&r.array) == "a")
            .unwrap();
        let p = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(read_idx))
            .unwrap();
        assert!(
            !p.exists_with_increasing_scalar(&info, "k", &mut b).unwrap(),
            "no loop-carried dependence on a(k): s141 is vectorizable"
        );
        // Without the induction knowledge, the dependence is assumed.
        let mut q = p.clone();
        q.table.occurrences.clear(); // forget the link
        assert!(q.exists_with_increasing_scalar(&info, "k", &mut b).unwrap());
    }

    /// The induction test is conservative when increments sit outside the
    /// common nest.
    #[test]
    fn induction_guard_is_conservative() {
        let src = "
            sym n;
            for i := 1 to n do
              a(k) := a(k) + 1;
            endfor
            k := k + 1;
        ";
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let mut b = Budget::default();
        // k's write is outside the loop: carried instances share the same
        // k, so the dependence must be assumed.
        let read_idx = info
            .stmt(1)
            .reads
            .iter()
            .position(|r| name_key(&r.array) == "a")
            .unwrap();
        let p = SymbolicPair::new(&info, 1, AccessSite::Write, 1, AccessSite::Read(read_idx))
            .unwrap();
        assert!(p.exists_with_increasing_scalar(&info, "k", &mut b).unwrap());
    }
}
