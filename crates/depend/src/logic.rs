//! Shared logical machinery for the §4 tests: implications whose
//! right-hand side is a union of conjunctions (the `∃` over several
//! execution-order cases), with the exact Presburger-formula fallback.

use omega::{Budget, Formula, Problem};

use crate::error::Result;

/// Decides `p ⇒ q₁ ∨ … ∨ qₙ`.
///
/// Strategy straight from §3.2/§4: first try each disjunct alone (the
/// sufficient test the paper's implementation uses — fast and usually
/// enough); if that fails and `formula_fallback` is set, run the exact
/// check by asking whether `p ∧ ¬q₁ ∧ … ∧ ¬qₙ` is satisfiable through the
/// Presburger layer.
///
/// # Errors
///
/// Propagates solver errors.
pub fn implies_union(
    p: &Problem,
    qs: &[Problem],
    formula_fallback: bool,
    budget: &mut Budget,
) -> Result<bool> {
    if !p.is_satisfiable_with(budget)? {
        return Ok(true);
    }
    for q in qs {
        if omega::implies_with(p, q, budget)? {
            return Ok(true);
        }
    }
    if !formula_fallback || qs.is_empty() || qs.len() > 12 {
        return Ok(false);
    }
    // Exact: ¬(p ⇒ ∨qᵢ) ≡ p ∧ ∧¬qᵢ satisfiable. The witness problems may
    // carry projection wildcards beyond p's table, so the formula space is
    // p's table extended to cover every operand.
    let mut space = p.clone();
    for q in qs {
        space.extend_space_to(q)?;
    }
    let negated_qs: Vec<Formula> = qs
        .iter()
        .map(|q| Formula::not(Formula::from_problem(q)))
        .collect();
    let mut parts = vec![Formula::from_problem(p)];
    parts.extend(negated_qs);
    let f = Formula::and(parts);
    let sat = match f.is_satisfiable(&space, budget) {
        Ok(s) => s,
        // The exact fallback is best-effort: on blow-up, stay conservative.
        Err(omega::Error::TooComplex { .. }) => true,
        Err(e) => return Err(e.into()),
    };
    Ok(!sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega::{LinExpr, VarKind};

    #[test]
    fn single_disjunct_path() {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-1)); // x >= 1
        let mut b = Budget::default();
        assert!(implies_union(&p, &[q], false, &mut b).unwrap());
    }

    #[test]
    fn union_needed() {
        // 0 <= x <= 10  ⇒  x <= 5 ∨ x >= 4: true, but neither disjunct
        // alone suffices.
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        let mut q1 = s.clone();
        q1.add_geq(LinExpr::term(-1, x).plus_const(5));
        let mut q2 = s.clone();
        q2.add_geq(LinExpr::var(x).plus_const(-4));
        let mut b = Budget::default();
        assert!(
            !implies_union(&p, &[q1.clone(), q2.clone()], false, &mut b).unwrap(),
            "case-by-case must fail"
        );
        assert!(
            implies_union(&p, &[q1, q2], true, &mut b).unwrap(),
            "formula fallback must succeed"
        );
    }

    #[test]
    fn union_that_really_fails() {
        // 0 <= x <= 10 ⇒ x <= 3 ∨ x >= 6 is false (x = 4).
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        let mut q1 = s.clone();
        q1.add_geq(LinExpr::term(-1, x).plus_const(3));
        let mut q2 = s.clone();
        q2.add_geq(LinExpr::var(x).plus_const(-6));
        let mut b = Budget::default();
        assert!(!implies_union(&p, &[q1, q2], true, &mut b).unwrap());
    }

    #[test]
    fn vacuous_premise() {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::term(-1, x));
        let mut b = Budget::default();
        assert!(implies_union(&p, &[], true, &mut b).unwrap());
    }
}
