//! §4.5 quick pre-tests: reject obviously-independent access pairs
//! before constructing a full Omega [`Problem`](omega::Problem).
//!
//! These are the paper's "quick tests performed before the general
//! tests": the GCD divisibility test, a constant-bounds range
//! disjointness test, and a symbolic-bounds range test that additionally
//! exploits sign facts from the program's `assume` clauses (so `1..n` vs
//! `n+1..2n` is rejected without a solve). All run per subscript
//! dimension and are strictly *conservative* — a rejected pair has no
//! integer solution to its subscript equations, so the full Omega solve
//! would report it independent too (property-tested in
//! `crates/depend/tests`). Unlike [`baseline`](crate::baseline), which
//! exists to *compare* against the Omega test, this module is wired into
//! the analysis driver as a fast path, and reports *why* each pair was
//! skipped.

use omega::int;
use tiny::ast::{name_key, Affine};
use tiny::sema::StmtInfo;
use tiny::{RelOp, Relation};

use crate::baseline::{banerjee_test, gcd_test, Verdict};
use crate::dep::AccessSite;
use crate::pairs::access_of;

/// Why the pre-filter rejected a pair without consulting the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The GCD of the loop coefficients does not divide the constant
    /// difference in some dimension.
    Gcd,
    /// The constant-bounded ranges of some subscript dimension are
    /// disjoint.
    Range,
    /// The symbolically-bounded ranges of some subscript dimension are
    /// disjoint: substituting loop bounds of known sign (using `assume`
    /// facts) proves the subscript difference never zero, e.g. `1..n` vs
    /// `n+1..2n`.
    SymbolicRange,
}

/// Per-reason counters for pre-filter outcomes across an analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Pairs rejected by the GCD test.
    pub gcd: u64,
    /// Pairs rejected by constant-range disjointness.
    pub range: u64,
    /// Pairs rejected by symbolic-range disjointness.
    pub symbolic_range: u64,
    /// Pairs the pre-filter could not reject (passed on to the solver).
    pub passed: u64,
}

impl PrefilterStats {
    /// Total pairs the pre-filter examined.
    pub fn tested(&self) -> u64 {
        self.gcd + self.range + self.symbolic_range + self.passed
    }

    /// Total pairs rejected without building an Omega problem.
    pub fn skipped(&self) -> u64 {
        self.gcd + self.range + self.symbolic_range
    }

    /// Records one outcome.
    pub(crate) fn record(&mut self, outcome: Option<SkipReason>) {
        match outcome {
            Some(SkipReason::Gcd) => self.gcd += 1,
            Some(SkipReason::Range) => self.range += 1,
            Some(SkipReason::SymbolicRange) => self.symbolic_range += 1,
            None => self.passed += 1,
        }
    }

    /// Accumulates another counter set (parallel-worker merge).
    pub(crate) fn absorb(&mut self, other: PrefilterStats) {
        self.gcd += other.gcd;
        self.range += other.range;
        self.symbolic_range += other.symbolic_range;
        self.passed += other.passed;
    }
}

/// Runs the §4.5 quick tests on a same-array access pair. Returns the
/// reason the pair can be skipped, or `None` when a dependence may exist
/// and the full Omega analysis must run.
///
/// The caller guarantees both sites reference the same array; scalars
/// (no subscripts) always pass through. `assumptions` are the program's
/// `assume` clauses, which the symbolic range test may use as sign facts.
pub fn prefilter_pair(
    src: &StmtInfo,
    src_site: AccessSite,
    dst: &StmtInfo,
    dst_site: AccessSite,
    assumptions: &[Relation],
) -> Option<SkipReason> {
    let a = access_of(src, src_site);
    let b = access_of(dst, dst_site);
    debug_assert_eq!(name_key(&a.array), name_key(&b.array));

    // The two sides are distinct statement instances: rename the
    // destination's loop variables (as the exact analysis does) so
    // `a(i)` vs `a(i-1)` compares `i` against `i' - 1`.
    let mut loop_vars: Vec<String> = src.loops.iter().map(|l| name_key(&l.var)).collect();
    loop_vars.extend(dst.loops.iter().map(|l| format!("{}'", name_key(&l.var))));
    let rename = |aff: &Affine, stmt: &StmtInfo| -> Affine {
        let mut out = Affine::constant(aff.constant);
        for (name, coef) in &aff.terms {
            if stmt.loops.iter().any(|l| name_key(&l.var) == *name) {
                out.add_term(&format!("{name}'"), *coef);
            } else {
                out.add_term(name, *coef);
            }
        }
        out
    };

    // The GCD test additionally sees loop strides: substituting
    // `i = lo + step·k` (fresh counter `k`, written `i^`) folds a
    // `step 2` loop into even/odd coefficient arithmetic, which is how
    // the paper's quick test separates the red/black-style sweeps. The
    // counters are unbounded integers, so the substitution is a superset
    // of the real iteration set — still conservative.
    let mut gcd_vars = loop_vars.clone();
    gcd_vars.extend(loop_vars.iter().map(|v| format!("{v}^")));

    let facts = facts_of(assumptions);
    let is_scalar = |_: &str| true;
    for (sa, sb) in a.subs.iter().zip(&b.subs) {
        let (Some(sa), Some(sb)) = (
            tiny::sema::affine_of(sa, &is_scalar),
            tiny::sema::affine_of(sb, &is_scalar),
        ) else {
            continue;
        };
        let sb = rename(&sb, dst);
        let ga = fold_steps(&sa, src, false);
        let gb = fold_steps(&sb, dst, true);
        if gcd_test(&ga, &gb, &gcd_vars) == Verdict::Independent {
            return Some(SkipReason::Gcd);
        }
        if banerjee_test(&sa, &sb, src, dst) == Verdict::Independent {
            return Some(SkipReason::Range);
        }
        if symbolic_range_test(&sa, &sb, src, dst, &facts) == Verdict::Independent {
            return Some(SkipReason::SymbolicRange);
        }
    }
    None
}

/// Normalizes `assume` relations into affine facts `f >= 0`. Relations
/// whose sides are not affine (or `!=`, which is not convex) are dropped.
fn facts_of(assumptions: &[Relation]) -> Vec<Affine> {
    let is_scalar = |_: &str| true;
    let mut out = Vec::new();
    for rel in assumptions {
        let (Some(l), Some(r)) = (
            tiny::sema::affine_of(&rel.lhs, &is_scalar),
            tiny::sema::affine_of(&rel.rhs, &is_scalar),
        ) else {
            continue;
        };
        match rel.op {
            RelOp::Le => out.push(r.sub(&l)),
            RelOp::Lt => {
                let mut f = r.sub(&l);
                f.constant -= 1;
                out.push(f);
            }
            RelOp::Ge => out.push(l.sub(&r)),
            RelOp::Gt => {
                let mut f = l.sub(&r);
                f.constant -= 1;
                out.push(f);
            }
            RelOp::Eq => {
                out.push(l.sub(&r));
                out.push(r.sub(&l));
            }
            RelOp::Ne => {}
        }
    }
    out
}

/// The symbolic counterpart of [`banerjee_test`]: bounds the subscript
/// difference by substituting each loop variable with a *symbolic* bound
/// piece chosen by coefficient sign, then proves the resulting affine
/// estimate strictly positive (or strictly negative) everywhere using the
/// `assume` facts. Rejecting `1..n` vs `n+1..2n` needs no facts at all —
/// the `n` terms cancel to a constant.
fn symbolic_range_test(
    src_sub: &Affine,
    dst_sub: &Affine,
    src: &StmtInfo,
    dst: &StmtInfo,
    facts: &[Affine],
) -> Verdict {
    let diff = src_sub.sub(dst_sub);
    // Independence when `diff >= 1` everywhere or `diff <= -1` everywhere.
    if let Some(min) = extreme_of(&diff, false, src, dst) {
        let mut goal = min;
        goal.constant -= 1;
        if prove_nonneg(&goal, facts) {
            return Verdict::Independent;
        }
    }
    if let Some(max) = extreme_of(&diff, true, src, dst) {
        let mut goal = max.scale(-1);
        goal.constant -= 1;
        if prove_nonneg(&goal, facts) {
            return Verdict::Independent;
        }
    }
    Verdict::Maybe
}

/// A symbolic bound on `diff` over the two iteration spaces: every loop
/// variable (destination side primed) is replaced by one piece of its
/// loop bound — the upper piece when maximizing with a positive
/// coefficient, mirrored otherwise. A lower bound is the max of its
/// pieces and an upper the min, so any single piece bounds the variable
/// from the right side. `None` when some variable has no usable
/// loop-variable-free piece (triangular nests give up — conservative).
fn extreme_of(diff: &Affine, maximize: bool, src: &StmtInfo, dst: &StmtInfo) -> Option<Affine> {
    let is_loop_var = |name: &str| {
        let base = name.strip_suffix('\'').unwrap_or(name);
        src.loops.iter().any(|l| name_key(&l.var) == base)
            || dst.loops.iter().any(|l| name_key(&l.var) == base)
    };
    let mut out = Affine::constant(diff.constant);
    for (name, &coef) in &diff.terms {
        let (stmt, base) = match name.strip_suffix('\'') {
            Some(base) => (dst, base),
            None => {
                if src.loops.iter().any(|l| name_key(&l.var) == *name) {
                    (src, name.as_str())
                } else if dst.loops.iter().any(|l| name_key(&l.var) == *name) {
                    // Only the destination loops bind this unprimed name:
                    // its value here is ambiguous, give up.
                    return None;
                } else {
                    // Symbolic constant: contributes itself.
                    out.add_term(name, coef);
                    continue;
                }
            }
        };
        let l = stmt.loops.iter().find(|l| name_key(&l.var) == base)?;
        let want_upper = (coef > 0) == maximize;
        let pieces = if want_upper {
            l.upper.as_ref()?
        } else {
            l.lower.as_ref()?
        };
        let piece = pieces
            .iter()
            .find(|p| p.terms.keys().all(|t| !is_loop_var(t)))?;
        out.constant = out.constant.checked_add(coef.checked_mul(piece.constant)?)?;
        for (n2, &c2) in &piece.terms {
            out.add_term(n2, coef.checked_mul(c2)?);
        }
    }
    Some(out)
}

/// Proves `expr >= 0` under `facts` (each an affine `f >= 0`): every
/// variable of `expr` is bounded from the needed side through a
/// single-variable fact, and the bounds accumulate in 128-bit arithmetic.
/// Purely sufficient — `false` means "not provable this way".
fn prove_nonneg(expr: &Affine, facts: &[Affine]) -> bool {
    let mut total = i128::from(expr.constant);
    for (name, &coef) in &expr.terms {
        // The best provable lower bound on this term's contribution.
        let mut best: Option<i128> = None;
        for f in facts {
            if f.terms.len() != 1 {
                continue;
            }
            let (v, &a) = f.terms.iter().next().expect("len checked");
            if v != name {
                continue;
            }
            // Fact `a·v + k >= 0`.
            let contrib = if coef > 0 && a > 0 {
                // v >= ceil(-k/a), a lower bound — usable for coef > 0.
                Some(i128::from(coef) * i128::from(int::ceil_div(-f.constant, a)))
            } else if coef < 0 && a < 0 {
                // v <= floor(k/-a), an upper bound — usable for coef < 0.
                Some(i128::from(coef) * i128::from(int::floor_div(f.constant, -a)))
            } else {
                None
            };
            if let Some(c) = contrib {
                best = Some(best.map_or(c, |b| b.max(c)));
            }
        }
        match best {
            Some(c) => total += c,
            None => return false,
        }
    }
    total >= 0
}

/// Rewrites each step-`s` loop variable `i` (`s > 1`, single affine lower
/// bound `lo`) as `lo + s·i^` over a fresh counter `i^`, so the stride
/// reaches the GCD test's coefficients. `renamed` marks the destination
/// side, whose loop variables (and any loop variables appearing in `lo`)
/// carry a `'` suffix. Variables the rewrite cannot handle exactly pass
/// through unchanged — the plain variable is a superset of the strided
/// one, so the result stays conservative.
fn fold_steps(aff: &Affine, stmt: &StmtInfo, renamed: bool) -> Affine {
    let suffix = if renamed { "'" } else { "" };
    let mut out = Affine::constant(aff.constant);
    for (name, coef) in &aff.terms {
        let base = name.strip_suffix('\'').unwrap_or(name);
        let ctx = (base != name.as_str()) == renamed;
        let l = stmt
            .loops
            .iter()
            .find(|l| ctx && name_key(&l.var) == base && l.step > 1);
        let lows = l.and_then(|l| l.lower.as_deref());
        match (l, lows) {
            (Some(l), Some([lo])) => {
                out.add_term(&format!("{name}^"), coef * l.step);
                out.constant += coef * lo.constant;
                for (n2, c2) in &lo.terms {
                    let primed = stmt.loops.iter().any(|l| name_key(&l.var) == *n2);
                    if primed {
                        out.add_term(&format!("{n2}{suffix}"), coef * c2);
                    } else {
                        out.add_term(n2, coef * c2);
                    }
                }
            }
            _ => out.add_term(name, *coef),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn stmts(src: &str) -> tiny::ProgramInfo {
        analyze(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn rejects_odd_even_strides_by_gcd() {
        let info = stmts(
            "sym n;
             for i := 1 to n do a(2*i) := a(2*i+1); endfor",
        );
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0), &info.assumptions),
            Some(SkipReason::Gcd)
        );
    }

    #[test]
    fn rejects_odd_even_step_loops_by_gcd() {
        // The stride lives in the loop step, not the subscript: the write
        // sweeps odd indices, the read even ones.
        let info = stmts(
            "sym n;
             for i := 1 to n step 2 do a(i) := 0; endfor
             for i := 2 to n step 2 do x := a(i); endfor",
        );
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(2),
                AccessSite::Read(0),
                &info.assumptions
            ),
            Some(SkipReason::Gcd)
        );
        // Same parity on both sides: may well alias; must pass through.
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(1),
                AccessSite::Write,
                &info.assumptions
            ),
            None
        );
    }

    #[test]
    fn rejects_disjoint_constant_ranges() {
        let info = stmts("for i := 1 to 10 do a(i) := a(i+100); endfor");
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0), &info.assumptions),
            Some(SkipReason::Range)
        );
    }

    #[test]
    fn passes_possible_dependences_through() {
        let info = stmts("sym n; for i := 1 to n do a(i) := a(i-1); endfor");
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0), &info.assumptions),
            None
        );
    }

    #[test]
    fn rejects_disjoint_symbolic_ranges() {
        // Write 1..n, read n+1..2n: the `n` terms cancel, so the maximum
        // of the subscript difference is the constant -1 — no facts
        // needed.
        let info = stmts(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := n+1 to 2*n do x := a(i); endfor",
        );
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(2),
                AccessSite::Read(0),
                &info.assumptions
            ),
            Some(SkipReason::SymbolicRange)
        );
    }

    #[test]
    fn symbolic_rejection_uses_assume_facts() {
        // The residual estimate is `m - n`, provable only through the
        // assumed per-variable bounds.
        let with_facts = stmts(
            "sym n, m;
             assume n <= 100;
             assume m >= 100;
             for i := 1 to n do a(i) := 0; endfor
             for i := 1 to n do x := a(i+m); endfor",
        );
        assert_eq!(
            prefilter_pair(
                with_facts.stmt(1),
                AccessSite::Write,
                with_facts.stmt(2),
                AccessSite::Read(0),
                &with_facts.assumptions
            ),
            Some(SkipReason::SymbolicRange)
        );
        // Without the assumptions nothing pins the sign of `m - n`.
        let without = stmts(
            "sym n, m;
             for i := 1 to n do a(i) := 0; endfor
             for i := 1 to n do x := a(i+m); endfor",
        );
        assert_eq!(
            prefilter_pair(
                without.stmt(1),
                AccessSite::Write,
                without.stmt(2),
                AccessSite::Read(0),
                &without.assumptions
            ),
            None
        );
    }

    #[test]
    fn triangular_bounds_give_up() {
        // The inner bound references the outer loop variable: no usable
        // loop-variable-free piece, so the symbolic test must pass the
        // pair through.
        let info = stmts(
            "sym n;
             for i := 1 to n do
               for j := i to n do a(j) := a(j-1); endfor
             endfor",
        );
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0), &info.assumptions),
            None
        );
    }

    #[test]
    fn stats_bookkeeping() {
        let mut s = PrefilterStats::default();
        s.record(Some(SkipReason::Gcd));
        s.record(Some(SkipReason::Range));
        s.record(Some(SkipReason::SymbolicRange));
        s.record(None);
        assert_eq!(s.tested(), 4);
        assert_eq!(s.skipped(), 3);
        let mut t = PrefilterStats::default();
        t.absorb(s);
        t.absorb(s);
        assert_eq!(t.tested(), 8);
        assert_eq!(t.symbolic_range, 2);
    }
}
