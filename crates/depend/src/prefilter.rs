//! §4.5 quick pre-tests: reject obviously-independent access pairs
//! before constructing a full Omega [`Problem`](omega::Problem).
//!
//! These are the paper's "quick tests performed before the general
//! tests": the GCD divisibility test and a constant-bounds range
//! disjointness test, both run per subscript dimension. They are strictly
//! *conservative* — a rejected pair has no integer solution to its
//! subscript equations, so the full Omega solve would report it
//! independent too (property-tested in `crates/depend/tests`). Unlike
//! [`baseline`](crate::baseline), which exists to *compare* against the
//! Omega test, this module is wired into the analysis driver as a fast
//! path, and reports *why* each pair was skipped.

use tiny::ast::{name_key, Affine};
use tiny::sema::StmtInfo;

use crate::baseline::{banerjee_test, gcd_test, Verdict};
use crate::dep::AccessSite;
use crate::pairs::access_of;

/// Why the pre-filter rejected a pair without consulting the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The GCD of the loop coefficients does not divide the constant
    /// difference in some dimension.
    Gcd,
    /// The constant-bounded ranges of some subscript dimension are
    /// disjoint.
    Range,
}

/// Per-reason counters for pre-filter outcomes across an analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Pairs rejected by the GCD test.
    pub gcd: u64,
    /// Pairs rejected by range disjointness.
    pub range: u64,
    /// Pairs the pre-filter could not reject (passed on to the solver).
    pub passed: u64,
}

impl PrefilterStats {
    /// Total pairs the pre-filter examined.
    pub fn tested(&self) -> u64 {
        self.gcd + self.range + self.passed
    }

    /// Total pairs rejected without building an Omega problem.
    pub fn skipped(&self) -> u64 {
        self.gcd + self.range
    }

    /// Records one outcome.
    pub(crate) fn record(&mut self, outcome: Option<SkipReason>) {
        match outcome {
            Some(SkipReason::Gcd) => self.gcd += 1,
            Some(SkipReason::Range) => self.range += 1,
            None => self.passed += 1,
        }
    }

    /// Accumulates another counter set (parallel-worker merge).
    pub(crate) fn absorb(&mut self, other: PrefilterStats) {
        self.gcd += other.gcd;
        self.range += other.range;
        self.passed += other.passed;
    }
}

/// Runs the §4.5 quick tests on a same-array access pair. Returns the
/// reason the pair can be skipped, or `None` when a dependence may exist
/// and the full Omega analysis must run.
///
/// The caller guarantees both sites reference the same array; scalars
/// (no subscripts) always pass through.
pub fn prefilter_pair(
    src: &StmtInfo,
    src_site: AccessSite,
    dst: &StmtInfo,
    dst_site: AccessSite,
) -> Option<SkipReason> {
    let a = access_of(src, src_site);
    let b = access_of(dst, dst_site);
    debug_assert_eq!(name_key(&a.array), name_key(&b.array));

    // The two sides are distinct statement instances: rename the
    // destination's loop variables (as the exact analysis does) so
    // `a(i)` vs `a(i-1)` compares `i` against `i' - 1`.
    let mut loop_vars: Vec<String> = src.loops.iter().map(|l| name_key(&l.var)).collect();
    loop_vars.extend(dst.loops.iter().map(|l| format!("{}'", name_key(&l.var))));
    let rename = |aff: &Affine, stmt: &StmtInfo| -> Affine {
        let mut out = Affine::constant(aff.constant);
        for (name, coef) in &aff.terms {
            if stmt.loops.iter().any(|l| name_key(&l.var) == *name) {
                out.add_term(&format!("{name}'"), *coef);
            } else {
                out.add_term(name, *coef);
            }
        }
        out
    };

    // The GCD test additionally sees loop strides: substituting
    // `i = lo + step·k` (fresh counter `k`, written `i^`) folds a
    // `step 2` loop into even/odd coefficient arithmetic, which is how
    // the paper's quick test separates the red/black-style sweeps. The
    // counters are unbounded integers, so the substitution is a superset
    // of the real iteration set — still conservative.
    let mut gcd_vars = loop_vars.clone();
    gcd_vars.extend(loop_vars.iter().map(|v| format!("{v}^")));

    let is_scalar = |_: &str| true;
    for (sa, sb) in a.subs.iter().zip(&b.subs) {
        let (Some(sa), Some(sb)) = (
            tiny::sema::affine_of(sa, &is_scalar),
            tiny::sema::affine_of(sb, &is_scalar),
        ) else {
            continue;
        };
        let sb = rename(&sb, dst);
        let ga = fold_steps(&sa, src, false);
        let gb = fold_steps(&sb, dst, true);
        if gcd_test(&ga, &gb, &gcd_vars) == Verdict::Independent {
            return Some(SkipReason::Gcd);
        }
        if banerjee_test(&sa, &sb, src, dst) == Verdict::Independent {
            return Some(SkipReason::Range);
        }
    }
    None
}

/// Rewrites each step-`s` loop variable `i` (`s > 1`, single affine lower
/// bound `lo`) as `lo + s·i^` over a fresh counter `i^`, so the stride
/// reaches the GCD test's coefficients. `renamed` marks the destination
/// side, whose loop variables (and any loop variables appearing in `lo`)
/// carry a `'` suffix. Variables the rewrite cannot handle exactly pass
/// through unchanged — the plain variable is a superset of the strided
/// one, so the result stays conservative.
fn fold_steps(aff: &Affine, stmt: &StmtInfo, renamed: bool) -> Affine {
    let suffix = if renamed { "'" } else { "" };
    let mut out = Affine::constant(aff.constant);
    for (name, coef) in &aff.terms {
        let base = name.strip_suffix('\'').unwrap_or(name);
        let ctx = (base != name.as_str()) == renamed;
        let l = stmt
            .loops
            .iter()
            .find(|l| ctx && name_key(&l.var) == base && l.step > 1);
        let lows = l.and_then(|l| l.lower.as_deref());
        match (l, lows) {
            (Some(l), Some([lo])) => {
                out.add_term(&format!("{name}^"), coef * l.step);
                out.constant += coef * lo.constant;
                for (n2, c2) in &lo.terms {
                    let primed = stmt.loops.iter().any(|l| name_key(&l.var) == *n2);
                    if primed {
                        out.add_term(&format!("{n2}{suffix}"), coef * c2);
                    } else {
                        out.add_term(n2, coef * c2);
                    }
                }
            }
            _ => out.add_term(name, *coef),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn stmts(src: &str) -> tiny::ProgramInfo {
        analyze(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn rejects_odd_even_strides_by_gcd() {
        let info = stmts(
            "sym n;
             for i := 1 to n do a(2*i) := a(2*i+1); endfor",
        );
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0)),
            Some(SkipReason::Gcd)
        );
    }

    #[test]
    fn rejects_odd_even_step_loops_by_gcd() {
        // The stride lives in the loop step, not the subscript: the write
        // sweeps odd indices, the read even ones.
        let info = stmts(
            "sym n;
             for i := 1 to n step 2 do a(i) := 0; endfor
             for i := 2 to n step 2 do x := a(i); endfor",
        );
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(2),
                AccessSite::Read(0)
            ),
            Some(SkipReason::Gcd)
        );
        // Same parity on both sides: may well alias; must pass through.
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(1),
                AccessSite::Write
            ),
            None
        );
    }

    #[test]
    fn rejects_disjoint_constant_ranges() {
        let info = stmts("for i := 1 to 10 do a(i) := a(i+100); endfor");
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0)),
            Some(SkipReason::Range)
        );
    }

    #[test]
    fn passes_possible_dependences_through() {
        let info = stmts("sym n; for i := 1 to n do a(i) := a(i-1); endfor");
        let s = &info.stmts[0];
        assert_eq!(
            prefilter_pair(s, AccessSite::Write, s, AccessSite::Read(0)),
            None
        );
    }

    #[test]
    fn passes_symbolic_bounds_through() {
        // Omega proves this independent; the quick tests cannot, and must
        // not claim to.
        let info = stmts(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := n+1 to 2*n do x := a(i); endfor",
        );
        assert_eq!(
            prefilter_pair(
                info.stmt(1),
                AccessSite::Write,
                info.stmt(2),
                AccessSite::Read(0)
            ),
            None
        );
    }

    #[test]
    fn stats_bookkeeping() {
        let mut s = PrefilterStats::default();
        s.record(Some(SkipReason::Gcd));
        s.record(Some(SkipReason::Range));
        s.record(None);
        assert_eq!(s.tested(), 3);
        assert_eq!(s.skipped(), 2);
        let mut t = PrefilterStats::default();
        t.absorb(s);
        t.absorb(s);
        assert_eq!(t.tested(), 6);
    }
}
