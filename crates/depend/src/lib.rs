#![warn(missing_docs)]
//! # depend — array data dependence analysis with array kills
//!
//! The analyses of Pugh & Wonnacott, *Eliminating False Data Dependences
//! using the Omega Test* (PLDI 1992), built on the [`omega`] solver and
//! the [`tiny`] loop-language frontend.
//!
//! The pipeline: [`build_dependence`] constructs exact flow/anti/output
//! dependences split per *restraint vector* (§2.1.2); the §4 analyses —
//! [`refine_dependence`], [`check_covering`], [`check_kill`],
//! [`check_terminating`] — eliminate the false ones; [`analyze_program`]
//! drives the whole thing and produces the Figure 3/4 tables plus the
//! Figure 6/7 statistics; [`SymbolicPair`] answers the §5 symbolic
//! questions; and [`Legality`] turns the results into transformation
//! verdicts (parallelism, privatization, interchange, fusion).
//!
//! # Example
//!
//! ```
//! use depend::{analyze_program, Config};
//!
//! // Example 3 of the paper: the flow dependence refines from (0+,1)
//! // to (0,1) — each read receives its value within the same outer
//! // iteration.
//! let program = tiny::Program::parse(tiny::corpus::EXAMPLE_3)?;
//! let info = tiny::analyze(&program)?;
//! let analysis = analyze_program(&info, &Config::extended())?;
//! let flow = analysis.live_flows().next().unwrap();
//! assert_eq!(flow.summary().to_string(), "(0,1)");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod dep;
pub mod graph;
pub mod parallel;
pub mod parallelize;
pub mod prefilter;
pub mod dir;
pub mod dirvec;
pub mod dot;
pub mod occur;
pub mod pairs;
pub mod space;
pub mod symbolic;

mod error;
pub mod analysis;
pub mod baseline;
pub mod cover;
pub mod kill;
pub mod logic;
pub mod refine;
pub mod report;
pub mod terminate;
pub mod transform;

pub use analysis::{
    analyze_corpus, analyze_corpus_with_cache, analyze_program, analyze_program_on,
    analyze_program_with_cache, Analysis, KillStat, PairClass, PairStat, Stats,
};
pub use config::Config;
pub use cover::{check_covering, CoverOutcome};
pub use kill::{check_kill, KillOutcome};
pub use pairs::build_dependence;
pub use parallel::{parallel_map, parallel_map_infallible, Pool};
pub use prefilter::{prefilter_pair, PrefilterStats, SkipReason};
pub use graph::{DepGraph, Edge, KillView, LoopVerdict, Node};
pub use parallelize::{decide_loops, render_parallelize_report, LoopDecision, ParallelizeSummary};
pub use refine::{refine_dependence, RefineOutcome};
pub use occur::{exists_under_property, ArrayProperty, Occurrence, OccurrenceTable};
pub use symbolic::{increasing_scalars, SymbolicCondition, SymbolicPair};
pub use report::{dead_flow_table, format_edge, live_flow_table, ReportOptions};
pub use terminate::check_terminating;
pub use transform::{program_loops, Legality, LoopRef};
pub use dep::{AccessRef, AccessSite, DeadReason, DepCase, DepKind, Dependence};
pub use dir::{DirEntry, DirectionVector};
pub use error::{Error, Result};
pub use space::{OrderCase, Space, StmtVars};

