//! Transformation legality queries on top of the dependence analysis —
//! the paper's motivation made concrete. Killing false flow dependences
//! matters because storage-related dependences (anti/output) *can* be
//! removed by privatization, renaming or expansion, but only if doing so
//! "appears not to affect the flow dependences": a loop-carried flow that
//! is actually dead blocks privatization under standard analysis and is
//! unblocked by the extended analysis.

use std::collections::BTreeSet;

use omega::{Budget, LinExpr};
use tiny::ProgramInfo;

use crate::analysis::Analysis;
use crate::dep::Dependence;
use crate::error::Result;
use crate::graph::{DepGraph, KillView};

/// Identifies one loop of the program by its tree path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRef {
    /// Tree path from the program root to the loop.
    pub path: Vec<usize>,
    /// The loop variable (as written).
    pub var: String,
    /// 1-based nesting depth (a top-level loop has depth 1).
    pub depth: usize,
}

/// Enumerates every loop of the program.
pub fn program_loops(info: &ProgramInfo) -> Vec<LoopRef> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for s in &info.stmts {
        for (d, l) in s.loops.iter().enumerate() {
            // Loops and `if` branches interleave in the tree path; the
            // loop's own entry sits at `loop_path_idx[d]`.
            let path = s.path[..=s.loop_path_idx[d]].to_vec();
            if seen.insert(path.clone()) {
                out.push(LoopRef {
                    path,
                    var: l.var.clone(),
                    depth: d + 1,
                });
            }
        }
    }
    out
}

/// Legality queries over an [`Analysis`] — a thin consumer of the
/// [`DepGraph`] IR: carried-dependence, parallelism and privatization
/// questions are answered by the graph (post-kill view), while the
/// interchange and fusion tests below add their own Omega queries on the
/// graph's edges.
#[derive(Debug)]
pub struct Legality<'a> {
    info: &'a ProgramInfo,
    graph: DepGraph<'a>,
}

impl<'a> Legality<'a> {
    /// Wraps an analysis for querying (building its [`DepGraph`]).
    pub fn new(info: &'a ProgramInfo, analysis: &'a Analysis) -> Self {
        Legality {
            info,
            graph: DepGraph::new(info, analysis),
        }
    }

    /// The dependence-graph IR the queries run on.
    pub fn graph(&self) -> &DepGraph<'a> {
        &self.graph
    }

    fn all_deps(&self) -> impl Iterator<Item = &'a Dependence> + '_ {
        self.graph.edges().iter().map(|e| e.dep)
    }

    /// Whether both endpoints of `dep` are nested inside `l`.
    fn under(&self, dep: &Dependence, l: &LoopRef) -> bool {
        self.graph.under(dep, l)
    }

    /// Live dependences carried by loop `l` (their restraint vector is
    /// `CarriedAt(l.depth)` between statements nested in `l`).
    pub fn carried_by<'s>(&'s self, l: &LoopRef) -> impl Iterator<Item = &'a Dependence> + 's {
        self.graph
            .carried_edges(l, KillView::PostKill)
            .into_iter()
            .map(|i| self.graph.edges()[i].dep)
    }

    /// A loop is parallel when no live dependence of any kind is carried
    /// by it.
    pub fn is_parallel(&self, l: &LoopRef) -> bool {
        self.graph
            .loop_verdict(l, KillView::PostKill)
            .outright_parallel()
    }

    /// Whether `array` is privatizable with respect to loop `l`: no live
    /// *flow* dependence on the array is carried by `l`, so every
    /// iteration uses only values it produced itself (or loop-invariant
    /// live-ins, which privatization handles with copy-in).
    pub fn privatizable(&self, array: &str, l: &LoopRef) -> bool {
        self.graph.privatizable(array, l, KillView::PostKill)
    }

    /// Whether interchanging loop `l` with the loop immediately inside it
    /// is legal: no live dependence may have a distance vector that is
    /// positive at `l` and negative at the inner level (the classic
    /// `(<,>)` direction pattern, which interchange would reverse into a
    /// backward dependence).
    ///
    /// The test is exact: each dependence case's constraint problem is
    /// queried with `d_l >= 1 ∧ d_{l+1} <= -1` through the Omega test.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn interchange_legal(&self, l: &LoopRef, budget: &mut Budget) -> Result<bool> {
        let outer = l.depth - 1; // 0-based index into common loops
        let inner = l.depth; // the loop directly inside
        for d in self.all_deps() {
            if !d.is_live() || !self.under(d, l) || d.common <= inner {
                continue;
            }
            for case in &d.cases {
                let mut p = case.problem.clone();
                let d_outer = LinExpr::var(case.dst_vars.iters[outer])
                    .combine(1, -1, &LinExpr::var(case.src_vars.iters[outer]))?;
                let d_inner = LinExpr::var(case.dst_vars.iters[inner])
                    .combine(1, -1, &LinExpr::var(case.src_vars.iters[inner]))?;
                // d_outer >= 1 and d_inner <= -1.
                let mut lo = d_outer;
                lo.add_constant(-1)?;
                p.add_geq(lo);
                let mut hi = d_inner.negated();
                hi.add_constant(-1)?;
                p.add_geq(hi);
                if p.is_satisfiable_with(budget)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Whether fusing two adjacent same-depth loops `l1` and `l2`
    /// (`l1` lexically first) is legal: fusion is illegal when some
    /// dependence from an `l1` statement to an `l2` statement would be
    /// reversed — i.e. the source iteration exceeds the destination
    /// iteration, which after fusion runs the consumer before the
    /// producer.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn fusion_legal(&self, l1: &LoopRef, l2: &LoopRef, budget: &mut Budget) -> Result<bool> {
        debug_assert_eq!(l1.depth, l2.depth);
        let level = l1.depth - 1;
        for d in self.all_deps() {
            if !d.is_live() {
                continue;
            }
            let src = self.info.stmt(d.src.label);
            let dst = self.info.stmt(d.dst.label);
            if !src.path.starts_with(&l1.path) || !dst.path.starts_with(&l2.path) {
                continue;
            }
            for case in &d.cases {
                // After fusion the two loop variables become one; the
                // dependence is reversed when src_iter > dst_iter.
                let mut p = case.problem.clone();
                let diff = LinExpr::var(case.src_vars.iters[level])
                    .combine(1, -1, &LinExpr::var(case.dst_vars.iters[level]))?;
                let mut strict = diff;
                strict.add_constant(-1)?;
                p.add_geq(strict); // src - dst >= 1
                if p.is_satisfiable_with(budget)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// A loop is parallel *after privatization* when every dependence it
    /// carries is a storage dependence (anti/output) on a privatizable
    /// array. Returns the set of arrays to privatize, or `None` when a
    /// carried flow dependence makes the loop inherently sequential.
    pub fn parallel_with_privatization(&self, l: &LoopRef) -> Option<BTreeSet<String>> {
        self.graph.loop_verdict(l, KillView::PostKill).privatize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;
    use tiny::ast::name_key;

    fn setup(src: &str, cfg: &Config) -> (ProgramInfo, Analysis) {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = analyze_program(&info, cfg).unwrap();
        (info, analysis)
    }

    fn find_loop<'a>(loops: &'a [LoopRef], var: &str) -> &'a LoopRef {
        loops
            .iter()
            .find(|l| name_key(&l.var) == name_key(var))
            .unwrap_or_else(|| panic!("no loop {var}"))
    }

    #[test]
    fn wavefront_inner_and_outer_are_sequential() {
        let (info, a) = setup(tiny::corpus::WAVEFRONT, &Config::extended());
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        assert!(!legality.is_parallel(find_loop(&loops, "i")));
        assert!(!legality.is_parallel(find_loop(&loops, "j")));
    }

    #[test]
    fn independent_updates_are_parallel() {
        let (info, a) = setup(
            "sym n; for i := 1 to n do a(i) := b(i) + c(i); endfor",
            &Config::extended(),
        );
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        assert!(legality.is_parallel(find_loop(&loops, "i")));
    }

    #[test]
    fn matmul_outer_loops_parallel_inner_reduction_not() {
        let (info, a) = setup(tiny::corpus::MATMUL, &Config::extended());
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        assert!(legality.is_parallel(find_loop(&loops, "i")));
        assert!(legality.is_parallel(find_loop(&loops, "j")));
        assert!(!legality.is_parallel(find_loop(&loops, "k")), "reduction on c(i,j)");
    }

    #[test]
    fn double_buffer_needs_extended_analysis_to_privatize() {
        // The paper's central claim in miniature: under STANDARD analysis
        // the stale loop-carried flow on `b` blocks privatization of the
        // time loop; the EXTENDED analysis kills it (b is fully
        // overwritten each iteration), leaving only storage dependences.
        let (info, ext) = setup(tiny::corpus::DOUBLE_BUFFER, &Config::extended());
        let loops = program_loops(&info);
        let it = find_loop(&loops, "it");
        let legality = Legality::new(&info, &ext);
        assert!(
            legality.privatizable("b", it),
            "extended analysis: b has no live carried flow"
        );

        let (info_s, std) = setup(tiny::corpus::DOUBLE_BUFFER, &Config::standard());
        let loops_s = program_loops(&info_s);
        let it_s = find_loop(&loops_s, "it");
        let legality_s = Legality::new(&info_s, &std);
        assert!(
            !legality_s.privatizable("b", it_s),
            "standard analysis: the false carried flow on b blocks privatization"
        );
        // The time loop itself stays sequential either way (a genuinely
        // carries values between iterations).
        assert!(legality.parallel_with_privatization(it).is_none());
    }

    #[test]
    fn inner_loops_of_double_buffer_are_parallel() {
        let (info, a) = setup(tiny::corpus::DOUBLE_BUFFER, &Config::extended());
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        // Both i loops are parallel (each element independent).
        let inner: Vec<&LoopRef> = loops.iter().filter(|l| l.depth == 2).collect();
        assert_eq!(inner.len(), 2);
        for l in inner {
            assert!(legality.is_parallel(l), "{l:?}");
        }
    }

    #[test]
    fn privatization_unblocks_a_temporary() {
        // t(i) is written then read within each iteration of the outer
        // loop; anti/output deps on t are carried, but t is privatizable,
        // so the loop parallelizes with privatization.
        let src = "
            sym n, m;
            for i := 1 to n do
              for j := 1 to m do
                t(j) := a(i, j) * 2;
              endfor
              for j := 1 to m do
                b(i, j) := t(j) + t(j);
              endfor
            endfor
        ";
        let (info, a) = setup(src, &Config::extended());
        let loops = program_loops(&info);
        let i = find_loop(&loops, "i");
        let legality = Legality::new(&info, &a);
        assert!(!legality.is_parallel(i), "anti/output deps on t are carried");
        let privatized = legality
            .parallel_with_privatization(i)
            .expect("parallel after privatizing t");
        assert!(privatized.contains("t"), "{privatized:?}");
    }

    #[test]
    fn seidel_is_inherently_sequential() {
        let (info, a) = setup(tiny::corpus::SEIDEL, &Config::extended());
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        for l in &loops {
            assert!(
                legality.parallel_with_privatization(l).is_none(),
                "{l:?} carries a real flow"
            );
        }
    }

    #[test]
    fn program_loops_enumerates_nests() {
        let info = tiny::analyze(&tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap()).unwrap();
        let loops = program_loops(&info);
        // CHOLSKY: J (1) + I, L(2), JJ+L under I... count distinct loops.
        assert!(loops.len() >= 15, "CHOLSKY has many loops: {}", loops.len());
        assert!(loops.iter().any(|l| l.var == "J" && l.depth == 1));
        assert!(loops.iter().any(|l| l.var == "L" && l.depth == 4));
    }
}

#[cfg(test)]
mod interchange_tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;
    use tiny::ast::name_key;

    fn legal(src: &str, var: &str) -> bool {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let loops = program_loops(&info);
        let l = loops
            .iter()
            .find(|l| name_key(&l.var) == name_key(var))
            .unwrap();
        Legality::new(&info, &a)
            .interchange_legal(l, &mut Budget::default())
            .unwrap()
    }

    #[test]
    fn wavefront_interchange_is_legal() {
        // Distances (1,0) and (0,1): interchange permutes them to (0,1)
        // and (1,0), both still lexicographically positive.
        assert!(legal(tiny::corpus::WAVEFRONT, "i"));
    }

    #[test]
    fn antidiagonal_dependence_blocks_interchange() {
        // a(i,j) := a(i-1,j+1): distance (1,-1) becomes (-1,1) after
        // interchange — backward, so illegal.
        assert!(!legal(
            "sym n, m;
             for i := 2 to n do
               for j := 1 to m-1 do
                 a(i, j) := a(i-1, j+1);
               endfor
             endfor",
            "i"
        ));
    }

    #[test]
    fn refinement_can_enable_interchange() {
        // Unrefined, the flow a(i,j) := a(i-1, j+1) + a(i-1, j) blocks;
        // a purely (1,0) dependence does not.
        assert!(legal(
            "sym n, m;
             for i := 2 to n do
               for j := 1 to m do
                 a(i, j) := a(i-1, j);
               endfor
             endfor",
            "i"
        ));
    }

    #[test]
    fn matmul_all_interchanges_legal() {
        let program = tiny::Program::parse(tiny::corpus::MATMUL).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let loops = program_loops(&info);
        let legality = Legality::new(&info, &a);
        for l in loops.iter().filter(|l| l.depth <= 2) {
            assert!(
                legality
                    .interchange_legal(l, &mut Budget::default())
                    .unwrap(),
                "{l:?}"
            );
        }
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    fn check(src: &str) -> bool {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let loops = program_loops(&info);
        let top: Vec<&LoopRef> = loops.iter().filter(|l| l.depth == 1).collect();
        assert_eq!(top.len(), 2, "expected two top-level loops");
        Legality::new(&info, &a)
            .fusion_legal(top[0], top[1], &mut Budget::default())
            .unwrap()
    }

    #[test]
    fn pointwise_producer_consumer_fuses() {
        // b(i) consumed at the same i it was produced: legal.
        assert!(check(
            "sym n;
             for i := 1 to n do b(i) := a(i) * 2; endfor
             for i := 1 to n do c(i) := b(i) + 1; endfor"
        ));
    }

    #[test]
    fn forward_shift_blocks_fusion() {
        // The second loop reads b(i+1): after fusion, iteration i would
        // read a value produced only at iteration i+1.
        assert!(!check(
            "sym n;
             for i := 1 to n do b(i) := a(i) * 2; endfor
             for i := 1 to n-1 do c(i) := b(i+1); endfor"
        ));
    }

    #[test]
    fn backward_shift_fuses() {
        // Reading b(i-1) is fine: the producer iteration precedes.
        assert!(check(
            "sym n;
             for i := 1 to n do b(i) := a(i) * 2; endfor
             for i := 2 to n do c(i) := b(i-1); endfor"
        ));
    }

    #[test]
    fn anti_dependence_can_also_block() {
        // First loop reads b(i-1); second overwrites b. Fused, iteration
        // i-1 writes b(i-1) BEFORE iteration i reads it — the anti
        // dependence (read at i, write at i-1) is reversed: illegal.
        assert!(!check(
            "sym n;
             for i := 2 to n do c(i) := b(i-1); endfor
             for i := 1 to n do b(i) := a(i); endfor"
        ));
        // Reading b(i+1) before a LATER write is preserved by fusion.
        assert!(check(
            "sym n;
             for i := 1 to n-1 do c(i) := b(i+1); endfor
             for i := 1 to n do b(i) := a(i); endfor"
        ));
    }
}
