//! Dependence distance and direction vectors (§2.1).

use std::fmt;

use omega::{Budget, LinExpr, Problem, ProblemLike, VarId, VarKind};

use crate::error::Result;

/// The distance information for one loop: an integer interval, possibly
/// half-open.
///
/// Rendering matches the paper's notation:
/// `1` (exact), `+` (≥1), `0+` (≥0), `-` (≤−1), `0:1` (range), `*`
/// (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Smallest possible distance, if bounded below.
    pub lo: Option<i64>,
    /// Largest possible distance, if bounded above.
    pub hi: Option<i64>,
}

impl DirEntry {
    /// The completely unknown entry `*`.
    pub fn star() -> DirEntry {
        DirEntry { lo: None, hi: None }
    }

    /// An exact distance.
    pub fn exact(d: i64) -> DirEntry {
        DirEntry {
            lo: Some(d),
            hi: Some(d),
        }
    }

    /// Whether the entry pins a single distance.
    pub fn is_exact(&self) -> bool {
        self.lo.is_some() && self.lo == self.hi
    }

    /// Whether distance 0 is possible.
    pub fn contains_zero(&self) -> bool {
        self.lo.unwrap_or(i64::MIN) <= 0 && self.hi.unwrap_or(i64::MAX) >= 0
    }

    /// The union (interval hull) of two entries.
    pub fn hull(&self, other: &DirEntry) -> DirEntry {
        DirEntry {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }
}

impl fmt::Display for DirEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => write!(f, "{a}"),
            (Some(a), Some(b)) => write!(f, "{a}:{b}"),
            (Some(1), _) => write!(f, "+"),
            (Some(0), _) => write!(f, "0+"),
            (Some(a), _) if a > 1 => write!(f, "{a}+"),
            (_, Some(-1)) => write!(f, "-"),
            (_, Some(0)) => write!(f, "0-"),
            _ => write!(f, "*"),
        }
    }
}

/// A per-common-loop summary of the possible dependence distances.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirectionVector(pub Vec<DirEntry>);

impl DirectionVector {
    /// Entry-wise interval hull (used to merge carrier cases for display).
    pub fn hull(&self, other: &DirectionVector) -> DirectionVector {
        debug_assert_eq!(self.0.len(), other.0.len());
        DirectionVector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.hull(b))
                .collect(),
        )
    }

    /// Number of loops summarized.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (no common loops).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for DirectionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Reads syntactic bounds of a single variable from a (projected)
/// problem: the tightest `lo <= v <= hi` implied by constraints mentioning
/// `v` alone. Equalities `v = c` pin both ends.
fn syntactic_bounds(p: &Problem, v: VarId) -> DirEntry {
    let mut entry = direct_bounds(p, v);
    // Stride pattern left by projection: `a·v + g·w + k = 0` with
    // `|a| = 1` and `w` an (existential) variable with direct bounds —
    // e.g. `d = 2α, 1 <= α <= 5` gives d ∈ [2, 10].
    for c in p.eqs() {
        let a = c.expr().coef(v);
        if a.abs() != 1 || c.expr().num_terms() != 2 {
            continue;
        }
        let Some((w, g)) = c.expr().terms().find(|&(u, _)| u != v) else {
            continue;
        };
        let wb = direct_bounds(p, w);
        // v = -(g·w + k)/a = -a·(g·w + k) since a = ±1.
        let k = c.expr().constant();
        let m = -a * g;
        let ends = [
            wb.lo.map(|x| m * x - a * k),
            wb.hi.map(|x| m * x - a * k),
        ];
        let (lo, hi) = if m >= 0 {
            (ends[0], ends[1])
        } else {
            (ends[1], ends[0])
        };
        let derived = DirEntry { lo, hi };
        // Intersect with whatever we already know.
        entry = DirEntry {
            lo: match (entry.lo, derived.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, y) => x.or(y),
            },
            hi: match (entry.hi, derived.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, y) => x.or(y),
            },
        };
    }
    entry
}

/// Bounds implied by constraints mentioning `v` alone.
fn direct_bounds(p: &Problem, v: VarId) -> DirEntry {
    let mut entry = DirEntry::star();
    for c in p.eqs() {
        let coef = c.expr().coef(v);
        if coef != 0 && c.expr().num_terms() == 1 {
            // coef·v + k = 0 → v = -k/coef when integral.
            let k = c.expr().constant();
            if k % coef == 0 {
                let val = -k / coef;
                entry = DirEntry::exact(val);
            }
        }
    }
    for c in p.geqs() {
        let coef = c.expr().coef(v);
        if coef == 0 || c.expr().num_terms() != 1 {
            continue;
        }
        let k = c.expr().constant();
        if coef > 0 {
            // coef·v + k >= 0 → v >= ceil(-k / coef)
            let b = omega::int::ceil_div(-k, coef);
            entry.lo = Some(entry.lo.map_or(b, |x| x.max(b)));
        } else {
            // coef·v + k >= 0 → v <= floor(k / -coef)
            let b = omega::int::floor_div(k, -coef);
            entry.hi = Some(entry.hi.map_or(b, |x| x.min(b)));
        }
    }
    entry
}

/// Computes the possible values of the affine quantity `expr` under the
/// constraints of `p`, as an interval (by projecting onto a fresh
/// variable). Returns `None` when `p` is unsatisfiable.
///
/// Generic over [`ProblemLike`], so a probe against a
/// [`DeltaProblem`](omega::DeltaProblem) stays on its pair's delta-keyed
/// cache path instead of re-canonicalizing the shared base.
///
/// # Errors
///
/// Propagates solver errors.
pub fn range_of<P: ProblemLike>(
    p: &P,
    expr: &LinExpr,
    budget: &mut Budget,
) -> Result<Option<DirEntry>> {
    let mut q = p.clone();
    let d = q.add_var(format!("range{}", q.num_vars()), VarKind::Input);
    let mut eq = LinExpr::var(d);
    eq.add_scaled(-1, expr)?;
    q.add_eq(eq);
    let proj = q.project_with(&[d], budget)?;
    let mut any = false;
    let mut entry: Option<DirEntry> = None;
    for piece in proj.problems() {
        if piece.is_known_infeasible() || !piece.is_satisfiable_with(budget)? {
            continue;
        }
        any = true;
        let b = syntactic_bounds(piece, d);
        entry = Some(match entry {
            None => b,
            Some(e) => e.hull(&b),
        });
    }
    if !any {
        return Ok(None);
    }
    Ok(entry)
}

/// Computes the distance summary `(Δ₁, …, Δ_c)` of a dependence problem:
/// for each common loop `l`, the interval of `dst_l − src_l`.
/// Returns `None` when the problem is unsatisfiable (no dependence).
///
/// # Errors
///
/// Propagates solver errors.
pub fn distance_summary<P: ProblemLike>(
    p: &P,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    budget: &mut Budget,
) -> Result<Option<DirectionVector>> {
    let mut entries = Vec::with_capacity(common);
    for l in 0..common {
        let mut expr = LinExpr::var(dst_iters[l]);
        expr.add_coef(src_iters[l], -1)?;
        match range_of(p, &expr, budget)? {
            None => return Ok(None),
            Some(e) => entries.push(e),
        }
    }
    Ok(Some(DirectionVector(entries)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega::{Problem, VarKind};

    #[test]
    fn dir_entry_rendering() {
        assert_eq!(DirEntry::exact(0).to_string(), "0");
        assert_eq!(DirEntry::exact(1).to_string(), "1");
        assert_eq!(DirEntry::exact(-2).to_string(), "-2");
        assert_eq!(DirEntry { lo: Some(1), hi: None }.to_string(), "+");
        assert_eq!(DirEntry { lo: Some(0), hi: None }.to_string(), "0+");
        assert_eq!(DirEntry { lo: None, hi: Some(-1) }.to_string(), "-");
        assert_eq!(DirEntry { lo: Some(0), hi: Some(1) }.to_string(), "0:1");
        assert_eq!(DirEntry::star().to_string(), "*");
    }

    #[test]
    fn hull_merges_intervals() {
        let a = DirEntry::exact(1);
        let b = DirEntry { lo: Some(3), hi: Some(5) };
        let h = a.hull(&b);
        assert_eq!(h, DirEntry { lo: Some(1), hi: Some(5) });
        let c = DirEntry { lo: None, hi: Some(2) };
        assert_eq!(a.hull(&c).lo, None);
    }

    #[test]
    fn vector_rendering() {
        let v = DirectionVector(vec![
            DirEntry::exact(0),
            DirEntry { lo: Some(1), hi: None },
            DirEntry::star(),
        ]);
        assert_eq!(v.to_string(), "(0,+,*)");
    }

    #[test]
    fn range_of_simple_interval() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-1)); // x >= 1
        p.add_geq(LinExpr::term(-1, x).plus_const(5)); // x <= 5
        p.add_eq(LinExpr::var(y).plus_term(-2, x)); // y = 2x
        let mut b = Budget::default();
        let r = range_of(&p, &LinExpr::var(y), &mut b).unwrap().unwrap();
        assert_eq!(r, DirEntry { lo: Some(2), hi: Some(10) });
    }

    #[test]
    fn range_of_unsat_is_none() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::term(-1, x).plus_const(1));
        let mut b = Budget::default();
        assert!(range_of(&p, &LinExpr::var(x), &mut b).unwrap().is_none());
    }

    #[test]
    fn range_unbounded_side() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-3)); // x >= 3
        let mut b = Budget::default();
        let r = range_of(&p, &LinExpr::var(x), &mut b).unwrap().unwrap();
        assert_eq!(r, DirEntry { lo: Some(3), hi: None });
    }

    #[test]
    fn distance_summary_coupled() {
        // i2 - i1 = j2 - j1 (coupled), with dst - src >= 1 on loop 1.
        let mut p = Problem::new();
        let i1 = p.add_var("i1", VarKind::Input);
        let i2 = p.add_var("i2", VarKind::Input);
        let j1 = p.add_var("j1", VarKind::Input);
        let j2 = p.add_var("j2", VarKind::Input);
        for v in [i1, i2, j1, j2] {
            p.add_geq(LinExpr::var(v).plus_const(-1));
            p.add_geq(LinExpr::term(-1, v).plus_const(10));
        }
        // j1 - i1 = j2 - i2 and j1 > i1.
        let mut e = LinExpr::var(j1);
        e.add_coef(i1, -1).unwrap();
        e.add_coef(j2, -1).unwrap();
        e.add_coef(i2, 1).unwrap();
        p.add_eq(e);
        p.constrain_lt(&LinExpr::var(i1), &LinExpr::var(j1)).unwrap();
        let mut b = Budget::default();
        let v = distance_summary(&p, &[i1, i2], &[j1, j2], 2, &mut b)
            .unwrap()
            .unwrap();
        assert_eq!(v.0[0].lo, Some(1));
        assert_eq!(v.0[1].lo, Some(1));
        assert_eq!(v.to_string(), "(1:9,1:9)");
    }
}

/// Enumerates the exact set of distance vectors of a dependence problem,
/// level by level (each level's range conditioned on the fixed prefix).
/// Returns `None` when some level is unbounded (symbolic loop bounds) or
/// more than `limit` vectors exist.
///
/// # Errors
///
/// Propagates solver errors.
pub fn enumerate_distances(
    p: &Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    limit: usize,
    budget: &mut Budget,
) -> Result<Option<Vec<Vec<i64>>>> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    if !enum_rec(
        p, src_iters, dst_iters, common, limit, budget, &mut prefix, &mut out,
    )? {
        return Ok(None);
    }
    Ok(Some(out))
}

#[allow(clippy::too_many_arguments)]
fn enum_rec(
    p: &Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    limit: usize,
    budget: &mut Budget,
    prefix: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
) -> Result<bool> {
    let level = prefix.len();
    if level == common {
        if out.len() >= limit {
            return Ok(false);
        }
        out.push(prefix.clone());
        return Ok(true);
    }
    // Constrain the fixed prefix, then range the next level.
    let mut q = p.clone();
    for (t, &v) in prefix.iter().enumerate() {
        let mut e = LinExpr::var(dst_iters[t]);
        e.add_coef(src_iters[t], -1)?;
        e.add_constant(-v)?;
        q.add_eq(e);
    }
    let mut d = LinExpr::var(dst_iters[level]);
    d.add_coef(src_iters[level], -1)?;
    let Some(entry) = range_of(&q, &d, budget)? else {
        return Ok(true); // prefix infeasible: nothing here
    };
    let (Some(lo), Some(hi)) = (entry.lo, entry.hi) else {
        return Ok(false); // unbounded level
    };
    if (hi - lo) as usize >= limit {
        return Ok(false);
    }
    for v in lo..=hi {
        prefix.push(v);
        let ok = enum_rec(
            p, src_iters, dst_iters, common, limit, budget, prefix, out,
        )?;
        prefix.pop();
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod enum_tests {
    use crate::dep::{AccessSite, DepKind};
    use crate::pairs::build_dependence;
    use omega::Budget;
    use tiny::{analyze, Program};

    fn flow(src: &str) -> crate::dep::Dependence {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let s = &info.stmts[0];
        build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn constant_bounds_enumerate_exactly() {
        // Example 6 shape with constant bounds: distances (a, a) for
        // a in 1..=3 (L1 from 1..4).
        let d = flow(
            "for L1 := 1 to 4 do
               for L2 := 2 to 5 do
                 a(L1-L2) := a(L1-L2);
               endfor
             endfor",
        );
        let mut b = Budget::default();
        let dists = d.enumerate_distances(64, &mut b).unwrap().unwrap();
        assert_eq!(dists, vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
    }

    #[test]
    fn unit_recurrence_distances() {
        let d = flow("for i := 2 to 10 do a(i) := a(i-1); endfor");
        let mut b = Budget::default();
        let dists = d.enumerate_distances(16, &mut b).unwrap().unwrap();
        assert_eq!(dists, vec![vec![1]]);
    }

    #[test]
    fn symbolic_bounds_are_unbounded() {
        let d = flow("sym n; for i := 2 to n do a(i) := a(i-1); endfor");
        // Distance is exactly 1, so even symbolic bounds enumerate...
        let mut b = Budget::default();
        let dists = d.enumerate_distances(16, &mut b).unwrap();
        assert_eq!(dists, Some(vec![vec![1]]));
        // ...but a genuinely growing distance set does not.
        let d = flow("sym n; for i := 2 to n do a(i) := a(2); endfor");
        let dists = d.enumerate_distances(16, &mut b).unwrap();
        assert_eq!(dists, None, "distance i-2 is unbounded in n");
    }

    #[test]
    fn limit_is_respected() {
        let d = flow(
            "for i := 1 to 100 do
               a(1) := a(1) + i;
             endfor",
        );
        let mut b = Budget::default();
        assert_eq!(d.enumerate_distances(10, &mut b).unwrap(), None);
        let all = d.enumerate_distances(200, &mut b).unwrap().unwrap();
        assert_eq!(all.len(), 99, "distances 1..=99");
    }
}
