//! Errors for dependence analysis.

use std::fmt;

/// Errors surfaced by the dependence analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The underlying Omega test failed (overflow or budget exhaustion).
    Solver(omega::Error),
    /// A frontend (semantic) problem made analysis impossible.
    Frontend(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Solver(e) => write!(f, "solver failure: {e}"),
            Error::Frontend(m) => write!(f, "frontend problem: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Solver(e) => Some(e),
            Error::Frontend(_) => None,
        }
    }
}

impl From<omega::Error> for Error {
    fn from(e: omega::Error) -> Self {
        Error::Solver(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: Error = omega::Error::Overflow.into();
        assert!(e.to_string().contains("overflow"));
        assert!(Error::Frontend("x".into()).to_string().contains("x"));
    }
}
