//! Rendering analysis results in the format of the paper's Figures 3/4:
//! one row per dependence with `FROM`, `TO`, `dir/dist` and status tag.

use std::fmt::Write as _;

use tiny::ProgramInfo;

use crate::analysis::Analysis;
use crate::dep::{AccessSite, Dependence};
use crate::pairs::access_of;

/// Options controlling report rendering.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Remaps internal (source-order) statement labels to display labels —
    /// used to print CHOLSKY with the Fortran DO-label numbering of the
    /// paper. `label_map[internal]` is the display label; index 0 unused.
    pub label_map: Option<Vec<usize>>,
}

impl ReportOptions {
    fn display_label(&self, label: usize) -> usize {
        match &self.label_map {
            Some(m) if label < m.len() => m[label],
            _ => label,
        }
    }
}

/// Renders one dependence row.
pub fn format_dependence(
    info: &ProgramInfo,
    dep: &Dependence,
    opts: &ReportOptions,
) -> String {
    let src = info.stmt(dep.src.label);
    let dst = info.stmt(dep.dst.label);
    let from = format!(
        "{}: {}",
        opts.display_label(dep.src.label),
        render_access(src, dep.src.site)
    );
    let to = format!(
        "{}: {}",
        opts.display_label(dep.dst.label),
        render_access(dst, dep.dst.site)
    );
    let dir = if dep.common > 0 {
        dep.summary().to_string()
    } else {
        String::new()
    };
    format!("{from:<22} {to:<22} {dir:<12} {}", dep.status_tag())
        .trim_end()
        .to_string()
}

fn render_access(stmt: &tiny::StmtInfo, site: AccessSite) -> String {
    access_of(stmt, site).to_string().to_uppercase()
}

/// The live flow dependence table (Figure 3).
pub fn live_flow_table(info: &ProgramInfo, analysis: &Analysis, opts: &ReportOptions) -> String {
    let mut out = String::from("FROM                   TO                     dir/dist     status\n");
    for d in analysis.live_flows() {
        let _ = writeln!(out, "{}", format_dependence(info, d, opts));
    }
    out
}

/// The dead flow dependence table (Figure 4).
pub fn dead_flow_table(info: &ProgramInfo, analysis: &Analysis, opts: &ReportOptions) -> String {
    let mut out = String::from("FROM                   TO                     dir/dist     status\n");
    for d in analysis.dead_flows() {
        let _ = writeln!(out, "{}", format_dependence(info, d, opts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    #[test]
    fn report_renders_rows_with_tags() {
        let program = tiny::Program::parse(tiny::corpus::EXAMPLE_2).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let opts = ReportOptions::default();
        let live = live_flow_table(&info, &a, &opts);
        let dead = dead_flow_table(&info, &a, &opts);
        assert!(live.contains("4: A(L2-1)"), "{live}");
        assert!(live.contains("[C"), "cover tag expected:\n{live}");
        assert!(dead.contains("1: A(M)"), "{dead}");
        assert!(
            dead.contains("[ k]") || dead.contains("[ c]"),
            "dead tags expected:\n{dead}"
        );
    }

    #[test]
    fn label_map_remaps() {
        let program = tiny::Program::parse("a(1) := 2; x := a(1);").unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let opts = ReportOptions {
            label_map: Some(vec![0, 7, 9]),
        };
        let live = live_flow_table(&info, &a, &opts);
        assert!(live.contains("7: A(1)"), "{live}");
        assert!(live.contains("9: A(1)"), "{live}");
    }
}

/// Renders the full analysis as a JSON document (hand-rolled: the data is
/// flat and the crate stays dependency-free). Schema:
///
/// ```json
/// {
///   "flows": [ {"src": 1, "dst": 3, "srcAccess": "A(I)", "dstAccess": "A(I)",
///               "dir": "(0,1)", "status": "live", "tags": "[ r]"} , ...],
///   "antis": [...], "outputs": [...]
/// }
/// ```
pub fn to_json(info: &ProgramInfo, analysis: &Analysis) -> String {
    let mut out = String::from("{\n");
    for (key, deps, last) in [
        ("flows", &analysis.flows, false),
        ("antis", &analysis.antis, false),
        ("outputs", &analysis.outputs, true),
    ] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, d) in deps.iter().enumerate() {
            let src = info.stmt(d.src.label);
            let dst = info.stmt(d.dst.label);
            let dir = if d.common > 0 {
                d.summary().to_string()
            } else {
                String::new()
            };
            out.push_str(&format!(
                "    {{\"src\": {}, \"dst\": {}, \"srcAccess\": {}, \"dstAccess\": {}, \
                 \"dir\": {}, \"status\": {}, \"tags\": {}}}{}\n",
                d.src.label,
                d.dst.label,
                json_str(&crate::pairs::access_of(src, d.src.site).to_string()),
                json_str(&crate::pairs::access_of(dst, d.dst.site).to_string()),
                json_str(&dir),
                json_str(if d.is_live() { "live" } else { "dead" }),
                json_str(d.status_tag().trim()),
                if i + 1 < deps.len() { "," } else { "" }
            ));
        }
        out.push_str(if last { "  ]\n" } else { "  ],\n" });
    }
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    #[test]
    fn json_is_well_formed_for_example_1() {
        let program = tiny::Program::parse(tiny::corpus::EXAMPLE_1).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let json = to_json(&info, &a);
        // Structural sanity without a JSON parser dependency.
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"flows\"").count(), 1);
        assert!(json.contains("\"status\": \"dead\""), "{json}");
        assert!(json.contains("\"tags\": \"[ k]\""), "{json}");
        // Balanced braces and brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("x\\y"), "\"x\\\\y\"");
        assert_eq!(json_str("n\nl"), "\"n\\nl\"");
    }
}
