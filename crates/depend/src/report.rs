//! Rendering analysis results in the format of the paper's Figures 3/4:
//! one row per dependence with `FROM`, `TO`, `dir/dist` and status tag.
//!
//! All renderers consume the [`DepGraph`] IR — the graph precomputes the
//! access strings, direction summaries and status tags once, and the
//! tables here (like the DOT export in [`crate::dot`]) only format them.

use std::fmt::Write as _;

use crate::graph::{DepGraph, Edge};

/// Options controlling report rendering.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Remaps internal (source-order) statement labels to display labels —
    /// used to print CHOLSKY with the Fortran DO-label numbering of the
    /// paper. `label_map[internal]` is the display label; index 0 unused.
    pub label_map: Option<Vec<usize>>,
}

impl ReportOptions {
    fn display_label(&self, label: usize) -> usize {
        match &self.label_map {
            Some(m) if label < m.len() => m[label],
            _ => label,
        }
    }
}

/// Renders one dependence row.
pub fn format_edge(edge: &Edge<'_>, opts: &ReportOptions) -> String {
    let from = format!(
        "{}: {}",
        opts.display_label(edge.src_label()),
        edge.src_access.to_uppercase()
    );
    let to = format!(
        "{}: {}",
        opts.display_label(edge.dst_label()),
        edge.dst_access.to_uppercase()
    );
    format!("{from:<22} {to:<22} {:<12} {}", edge.dir, edge.tag)
        .trim_end()
        .to_string()
}

/// The live flow dependence table (Figure 3).
pub fn live_flow_table(graph: &DepGraph<'_>, opts: &ReportOptions) -> String {
    let mut out = String::from("FROM                   TO                     dir/dist     status\n");
    for e in graph.live_flows() {
        let _ = writeln!(out, "{}", format_edge(e, opts));
    }
    out
}

/// The dead flow dependence table (Figure 4).
pub fn dead_flow_table(graph: &DepGraph<'_>, opts: &ReportOptions) -> String {
    let mut out = String::from("FROM                   TO                     dir/dist     status\n");
    for e in graph.dead_flows() {
        let _ = writeln!(out, "{}", format_edge(e, opts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    #[test]
    fn report_renders_rows_with_tags() {
        let program = tiny::Program::parse(tiny::corpus::EXAMPLE_2).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let graph = DepGraph::new(&info, &a);
        let opts = ReportOptions::default();
        let live = live_flow_table(&graph, &opts);
        let dead = dead_flow_table(&graph, &opts);
        assert!(live.contains("4: A(L2-1)"), "{live}");
        assert!(live.contains("[C"), "cover tag expected:\n{live}");
        assert!(dead.contains("1: A(M)"), "{dead}");
        assert!(
            dead.contains("[ k]") || dead.contains("[ c]"),
            "dead tags expected:\n{dead}"
        );
    }

    #[test]
    fn label_map_remaps() {
        let program = tiny::Program::parse("a(1) := 2; x := a(1);").unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let graph = DepGraph::new(&info, &a);
        let opts = ReportOptions {
            label_map: Some(vec![0, 7, 9]),
        };
        let live = live_flow_table(&graph, &opts);
        assert!(live.contains("7: A(1)"), "{live}");
        assert!(live.contains("9: A(1)"), "{live}");
    }
}

/// Renders the full analysis as a JSON document (hand-rolled: the data is
/// flat and the crate stays dependency-free). Schema:
///
/// ```json
/// {
///   "flows": [ {"src": 1, "dst": 3, "srcAccess": "A(I)", "dstAccess": "A(I)",
///               "dir": "(0,1)", "status": "live", "tags": "[ r]"} , ...],
///   "antis": [...], "outputs": [...]
/// }
/// ```
pub fn to_json(graph: &DepGraph<'_>) -> String {
    use crate::dep::DepKind;

    let mut out = String::from("{\n");
    for (key, kind, last) in [
        ("flows", DepKind::Flow, false),
        ("antis", DepKind::Anti, false),
        ("outputs", DepKind::Output, true),
    ] {
        let edges: Vec<&Edge<'_>> = graph.edges_of_kind(kind).collect();
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, e) in edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"src\": {}, \"dst\": {}, \"srcAccess\": {}, \"dstAccess\": {}, \
                 \"dir\": {}, \"status\": {}, \"tags\": {}}}{}\n",
                e.src_label(),
                e.dst_label(),
                json_str(&e.src_access),
                json_str(&e.dst_access),
                json_str(&e.dir),
                json_str(if e.is_live() { "live" } else { "dead" }),
                json_str(e.tag.trim()),
                if i + 1 < edges.len() { "," } else { "" }
            ));
        }
        out.push_str(if last { "  ]\n" } else { "  ],\n" });
    }
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    #[test]
    fn json_is_well_formed_for_example_1() {
        let program = tiny::Program::parse(tiny::corpus::EXAMPLE_1).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        let graph = DepGraph::new(&info, &a);
        let json = to_json(&graph);
        // Structural sanity without a JSON parser dependency.
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"flows\"").count(), 1);
        assert!(json.contains("\"status\": \"dead\""), "{json}");
        assert!(json.contains("\"tags\": \"[ k]\""), "{json}");
        // Balanced braces and brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("x\\y"), "\"x\\\\y\"");
        assert_eq!(json_str("n\nl"), "\"n\\nl\"");
    }
}
