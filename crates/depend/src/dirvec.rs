//! Partially compressed direction vectors (§2.1.1).
//!
//! A single direction vector cannot always summarize a dependence
//! accurately: for distances `{(Δi, Δj) | Δi = Δj}` the compressed vector
//! `(0+, 0+)` falsely suggests `(0,+)` and `(+,0)` are possible. The
//! accurate representation is the *set* `{(+,+), (0,0), (-,-)}` — and
//! after filtering for lexicographically forward directions,
//! `{(+,+), (0,0)}`.
//!
//! This module enumerates the feasible sign patterns of a dependence
//! problem exactly (one Omega-test query per explored pattern, with
//! prefix pruning) and then *partially compresses* them: sign sets are
//! merged along one coordinate only when the resulting box contains no
//! infeasible pattern, so the output never over-approximates.

use std::collections::BTreeSet;

use omega::{Budget, LinExpr, Problem, VarId};

use crate::dir::{DirEntry, DirectionVector};
use crate::error::Result;

/// The sign of a dependence distance at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sign {
    /// Negative distance.
    Neg,
    /// Zero distance.
    Zero,
    /// Positive distance.
    Pos,
}

impl Sign {
    fn all() -> [Sign; 3] {
        [Sign::Neg, Sign::Zero, Sign::Pos]
    }
}

/// A box of sign patterns: one sign set per level. The represented
/// patterns are the product of the per-level sets.
type SignBox = Vec<BTreeSet<Sign>>;

/// Enumerates the feasible sign patterns of `dst − src` distances over
/// `common` levels. Each pattern is certified by a satisfiability query;
/// infeasible prefixes prune their whole subtree.
///
/// # Errors
///
/// Propagates solver errors.
pub fn sign_patterns(
    p: &Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    budget: &mut Budget,
) -> Result<Vec<Vec<Sign>>> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    rec(
        p, src_iters, dst_iters, common, budget, &mut prefix, &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn rec(
    p: &Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    budget: &mut Budget,
    prefix: &mut Vec<Sign>,
    out: &mut Vec<Vec<Sign>>,
) -> Result<()> {
    if prefix.len() == common {
        out.push(prefix.clone());
        return Ok(());
    }
    for s in Sign::all() {
        prefix.push(s);
        let mut q = p.clone();
        constrain_signs(&mut q, src_iters, dst_iters, prefix)?;
        if q.is_satisfiable_with(budget)? {
            rec(p, src_iters, dst_iters, common, budget, prefix, out)?;
        }
        prefix.pop();
    }
    Ok(())
}

fn constrain_signs(
    q: &mut Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    signs: &[Sign],
) -> Result<()> {
    for (l, s) in signs.iter().enumerate() {
        let mut d = LinExpr::var(dst_iters[l]);
        d.add_coef(src_iters[l], -1)?;
        match s {
            Sign::Zero => q.add_eq(d),
            Sign::Pos => {
                let mut e = d;
                e.add_constant(-1)?;
                q.add_geq(e);
            }
            Sign::Neg => {
                let mut e = d.negated();
                e.add_constant(-1)?;
                q.add_geq(e);
            }
        }
    }
    Ok(())
}

/// Partially compresses a set of sign patterns: merges boxes along one
/// coordinate whenever the merged box's full product stays within the
/// feasible set — so the result is a *lossless* cover of the patterns by
/// (few) boxes.
pub fn compress(patterns: &[Vec<Sign>]) -> Vec<SignBox> {
    let feasible: BTreeSet<Vec<Sign>> = patterns.iter().cloned().collect();
    let mut boxes: Vec<SignBox> = patterns
        .iter()
        .map(|p| p.iter().map(|&s| BTreeSet::from([s])).collect())
        .collect();
    loop {
        let mut merged = false;
        'outer: for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                if let Some(m) = try_merge(&boxes[i], &boxes[j], &feasible) {
                    boxes[i] = m;
                    boxes.swap_remove(j);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            // Drop boxes subsumed by others.
            let mut k = 0;
            while k < boxes.len() {
                let subsumed = (0..boxes.len())
                    .any(|o| o != k && box_contains(&boxes[o], &boxes[k]));
                if subsumed {
                    boxes.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            return boxes;
        }
    }
}

fn box_contains(outer: &SignBox, inner: &SignBox) -> bool {
    outer
        .iter()
        .zip(inner)
        .all(|(o, i)| i.is_subset(o))
}

/// Merges two boxes differing in at most one coordinate, when the union
/// box is a contiguous sign interval and fully feasible.
fn try_merge(a: &SignBox, b: &SignBox, feasible: &BTreeSet<Vec<Sign>>) -> Option<SignBox> {
    debug_assert_eq!(a.len(), b.len());
    let mut diff = None;
    for l in 0..a.len() {
        if a[l] != b[l] {
            if diff.is_some() {
                return None;
            }
            diff = Some(l);
        }
    }
    let Some(l) = diff else {
        return Some(a.clone()); // identical
    };
    let mut merged = a.clone();
    merged[l] = a[l].union(&b[l]).copied().collect();
    // {-,+} without 0 is not an interval; reject.
    if merged[l].contains(&Sign::Neg)
        && merged[l].contains(&Sign::Pos)
        && !merged[l].contains(&Sign::Zero)
    {
        return None;
    }
    // Every pattern in the merged product must be feasible.
    if product_within(&merged, feasible) {
        Some(merged)
    } else {
        None
    }
}

fn product_within(b: &SignBox, feasible: &BTreeSet<Vec<Sign>>) -> bool {
    let mut stack = vec![Vec::with_capacity(b.len())];
    while let Some(p) = stack.pop() {
        if p.len() == b.len() {
            if !feasible.contains(&p) {
                return false;
            }
            continue;
        }
        for &s in &b[p.len()] {
            let mut q = p.clone();
            q.push(s);
            stack.push(q);
        }
    }
    true
}

/// Converts a sign box into the paper's direction-vector notation.
pub fn box_to_vector(b: &SignBox) -> DirectionVector {
    DirectionVector(
        b.iter()
            .map(|s| {
                let has = |x| s.contains(&x);
                match (has(Sign::Neg), has(Sign::Zero), has(Sign::Pos)) {
                    (true, true, true) => DirEntry::star(),
                    (false, false, true) => DirEntry { lo: Some(1), hi: None },
                    (false, true, false) => DirEntry::exact(0),
                    (true, false, false) => DirEntry { lo: None, hi: Some(-1) },
                    (false, true, true) => DirEntry { lo: Some(0), hi: None },
                    (true, true, false) => DirEntry { lo: None, hi: Some(0) },
                    _ => DirEntry::star(), // non-interval (rejected earlier)
                }
            })
            .collect(),
    )
}

/// Whether every pattern of a box is lexicographically forward: the first
/// non-zero level is positive. Boxes mixing forward and backward patterns
/// return `false` (split them first).
pub fn box_is_forward(b: &SignBox, src_lexically_first: bool) -> bool {
    // Walk levels: a level that can be negative before any guaranteed
    // positive level breaks forwardness.
    for s in b {
        if s.contains(&Sign::Neg) {
            return false;
        }
        if s.contains(&Sign::Zero) {
            continue; // could still be all-zero so far
        }
        // Guaranteed positive from here on.
        return true;
    }
    // All levels can be zero: forward only for syntactically ordered
    // accesses.
    src_lexically_first
}

/// The §2.1.1 pipeline: enumerate, compress, filter forward, render.
///
/// # Errors
///
/// Propagates solver errors.
pub fn partially_compressed_direction_vectors(
    p: &Problem,
    src_iters: &[VarId],
    dst_iters: &[VarId],
    common: usize,
    src_lexically_first: bool,
    budget: &mut Budget,
) -> Result<Vec<DirectionVector>> {
    let patterns = sign_patterns(p, src_iters, dst_iters, common, budget)?;
    // Filter forward patterns BEFORE compression so forward/backward don't
    // merge into one box.
    let forward: Vec<Vec<Sign>> = patterns
        .into_iter()
        .filter(|pat| {
            for s in pat {
                match s {
                    Sign::Neg => return false,
                    Sign::Zero => continue,
                    Sign::Pos => return true,
                }
            }
            src_lexically_first
        })
        .collect();
    Ok(compress(&forward).iter().map(box_to_vector).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega::VarKind;

    /// The paper's §2.1.1 example: Δi = Δj over a 10×10 nest.
    fn coupled_problem() -> (Problem, Vec<VarId>, Vec<VarId>) {
        let mut p = Problem::new();
        let i1 = p.add_var("i1", VarKind::Input);
        let i2 = p.add_var("i2", VarKind::Input);
        let j1 = p.add_var("j1", VarKind::Input);
        let j2 = p.add_var("j2", VarKind::Input);
        for v in [i1, i2, j1, j2] {
            p.add_geq(LinExpr::var(v).plus_const(-1));
            p.add_geq(LinExpr::term(-1, v).plus_const(10));
        }
        // (j1 - i1) = (j2 - i2)
        let mut e = LinExpr::var(j1);
        e.add_coef(i1, -1).unwrap();
        e.add_coef(j2, -1).unwrap();
        e.add_coef(i2, 1).unwrap();
        p.add_eq(e);
        (p, vec![i1, i2], vec![j1, j2])
    }

    #[test]
    fn coupled_signs_enumerate_to_diagonal() {
        let (p, src, dst) = coupled_problem();
        let mut b = Budget::default();
        let pats = sign_patterns(&p, &src, &dst, 2, &mut b).unwrap();
        let set: BTreeSet<Vec<Sign>> = pats.into_iter().collect();
        let want: BTreeSet<Vec<Sign>> = [
            vec![Sign::Neg, Sign::Neg],
            vec![Sign::Zero, Sign::Zero],
            vec![Sign::Pos, Sign::Pos],
        ]
        .into_iter()
        .collect();
        assert_eq!(set, want, "paper: {{(-,-), (0,0), (+,+)}}");
    }

    #[test]
    fn coupled_forward_filter_matches_paper() {
        // §2.1.1: "After filtering for lexicographically forward
        // directions, this dependence is represented by {(+,+), (0,0)}."
        let (p, src, dst) = coupled_problem();
        let mut b = Budget::default();
        let vecs =
            partially_compressed_direction_vectors(&p, &src, &dst, 2, true, &mut b).unwrap();
        let rendered: BTreeSet<String> = vecs.iter().map(|v| v.to_string()).collect();
        let want: BTreeSet<String> =
            ["(+,+)".to_string(), "(0,0)".to_string()].into_iter().collect();
        assert_eq!(rendered, want);
    }

    #[test]
    fn rectangular_independence_compresses_to_one_box() {
        // Unconstrained distances over a box: all 9 patterns feasible,
        // forward filter keeps {(+,*), (0,0+)}, which compress into two
        // boxes (lex-forward sets are not boxes).
        let mut p = Problem::new();
        let i1 = p.add_var("i1", VarKind::Input);
        let i2 = p.add_var("i2", VarKind::Input);
        let j1 = p.add_var("j1", VarKind::Input);
        let j2 = p.add_var("j2", VarKind::Input);
        for v in [i1, i2, j1, j2] {
            p.add_geq(LinExpr::var(v).plus_const(-1));
            p.add_geq(LinExpr::term(-1, v).plus_const(10));
        }
        let mut b = Budget::default();
        let pats = sign_patterns(&p, &[i1, i2], &[j1, j2], 2, &mut b).unwrap();
        assert_eq!(pats.len(), 9, "all sign patterns feasible");
        let forward: Vec<Vec<Sign>> = pats
            .into_iter()
            .filter(|pat| match pat[0] {
                Sign::Neg => false,
                Sign::Pos => true,
                Sign::Zero => pat[1] != Sign::Neg,
            })
            .collect();
        assert_eq!(forward.len(), 5);
        let boxes = compress(&forward);
        // The cover is lossless (no over-approximation) and complete,
        // regardless of which of the valid covers the greedy merge found.
        let feasible: BTreeSet<Vec<Sign>> = forward.iter().cloned().collect();
        let mut covered = BTreeSet::new();
        for bx in &boxes {
            assert!(product_within(bx, &feasible), "box over-approximates");
            collect_product(bx, &mut covered);
        }
        assert_eq!(covered, feasible, "cover must be complete");
        assert!(boxes.len() <= 3, "compression should reduce 5 patterns: {boxes:?}");
    }

    fn collect_product(b: &SignBox, out: &mut BTreeSet<Vec<Sign>>) {
        let mut stack = vec![Vec::new()];
        while let Some(p) = stack.pop() {
            if p.len() == b.len() {
                out.insert(p);
                continue;
            }
            for &s in &b[p.len()] {
                let mut q = p.clone();
                q.push(s);
                stack.push(q);
            }
        }
    }

    #[test]
    fn compression_never_over_approximates() {
        // For the coupled problem, (0+,0+) must NOT appear: it would
        // falsely include (0,+).
        let (p, src, dst) = coupled_problem();
        let mut b = Budget::default();
        let pats = sign_patterns(&p, &src, &dst, 2, &mut b).unwrap();
        let boxes = compress(&pats);
        for bx in &boxes {
            assert!(
                product_within(bx, &pats.iter().cloned().collect()),
                "box covers an infeasible pattern"
            );
        }
    }

    #[test]
    fn single_loop_signs() {
        // a(i) := a(i-1): distance exactly 1 -> pattern {(+)} only among
        // forward; backward pattern (-) never feasible for this flow.
        let info = tiny::analyze(
            &tiny::Program::parse("sym n; for i := 2 to n do a(i) := a(i-1); endfor").unwrap(),
        )
        .unwrap();
        let s = &info.stmts[0];
        let dep = crate::pairs::build_dependence(
            &info,
            crate::dep::DepKind::Flow,
            s,
            crate::dep::AccessSite::Write,
            s,
            crate::dep::AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        // Rebuild the unordered problem: iteration spaces + subscripts.
        let case = &dep.cases[0];
        let mut b = Budget::default();
        let vecs = partially_compressed_direction_vectors(
            &case.problem,
            &case.src_vars.iters,
            &case.dst_vars.iters,
            1,
            false,
            &mut b,
        )
        .unwrap();
        assert_eq!(vecs.len(), 1);
        assert_eq!(vecs[0].to_string(), "(+)");
    }
}
