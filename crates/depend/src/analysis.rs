//! Whole-program dependence analysis: the driver described at the start of
//! §4 — all output dependences first, then per-read flow analysis with
//! refinement, covering and pairwise killing — plus the per-pair timing
//! and classification statistics behind Figures 6 and 7.
//!
//! The driver is organized as a sequence of *stages* whose tasks are
//! mutually independent (output pairs, flow pairs, per-read kill passes,
//! anti pairs); each stage fans out across [`Config::threads`] workers
//! via [`parallel_map`] and merges its results in task order, so the
//! analysis output is byte-identical at every thread count. All Omega
//! queries of one analysis share a canonical-form memo cache
//! ([`omega::SolverCache`]), and the §4.5 quick pre-tests
//! ([`crate::prefilter`]) reject obviously-independent pairs before a
//! `Problem` is ever built; both report counters in [`Stats`].
//!
//! At corpus scale, [`analyze_corpus`] runs whole programs as outer work
//! items on one shared [`Pool`] while each program's stages fan out as
//! inner batches on the same pool — idle workers steal pair chunks from
//! whichever program is still busy, so a lone heavy program fills every
//! core. The per-item merges are unchanged, so corpus reports are
//! byte-identical to analyzing each program alone.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use omega::Budget;
use tiny::ast::name_key;
use tiny::ProgramInfo;

use crate::config::Config;
use crate::cover::check_covering;
use crate::dep::{AccessSite, DeadReason, DepKind, Dependence};
use crate::error::Result;
use crate::kill::check_kill;
use crate::pairs::build_dependence;
use crate::parallel::{parallel_map, Pool};
use crate::prefilter::{prefilter_pair, PrefilterStats};
use crate::refine::refine_dependence;

/// How a write/read pair was handled, for the Figure 6 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairClass {
    /// The extended capabilities were not needed (no dependence, or the
    /// §4.5 quick tests skipped both refinement and covering).
    NoTest,
    /// A general refinement/covering test ran on a single dependence
    /// vector.
    General,
    /// The dependence was split into several vectors during testing.
    Split,
}

/// Timing record for one write/read array pair.
#[derive(Debug, Clone)]
pub struct PairStat {
    /// Source (write) statement label.
    pub src: usize,
    /// Destination (read) statement label.
    pub dst: usize,
    /// Destination read index.
    pub read_idx: usize,
    /// Array name.
    pub array: String,
    /// Standard analysis time (dependence construction + direction
    /// vectors).
    pub std_ns: u64,
    /// Extended analysis time (standard + refinement + covering).
    pub ext_ns: u64,
    /// Figure 6 class.
    pub class: PairClass,
    /// Whether a dependence was found at all.
    pub dep_found: bool,
}

/// Timing record for one kill test.
#[derive(Debug, Clone)]
pub struct KillStat {
    /// Victim source label.
    pub victim_src: usize,
    /// Killer write label.
    pub killer: usize,
    /// Read statement label.
    pub read: usize,
    /// Kill test time.
    pub kill_ns: u64,
    /// Extended analysis time of the victim pair (the y-axis of the
    /// Figure 6 right-hand plot).
    pub victim_ext_ns: u64,
    /// Whether the Omega test was consulted (false = quick test).
    pub consulted_omega: bool,
    /// Whether the victim died.
    pub killed: bool,
}

/// Aggregated statistics of one program analysis.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// One record per write/read array pair.
    pub pairs: Vec<PairStat>,
    /// One record per kill test performed.
    pub kills: Vec<KillStat>,
    /// Memo-cache counters for the analysis (all zero when
    /// [`Config::memo_cache`] is off). For a caller-owned or corpus-wide
    /// cache these are cumulative across every analysis that shared it.
    pub cache: omega::CacheStats,
    /// §4.5 pre-filter counters (all zero when [`Config::quick_tests`]
    /// is off).
    pub prefilter: PrefilterStats,
    /// True when [`Config::cache_file`] was set but writing the cache
    /// back failed. The analysis itself is unaffected (the report is
    /// complete and correct); a warning went to stderr. Callers that
    /// rely on warm restarts should surface this.
    pub cache_save_failed: bool,
}

/// The result of analyzing a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All flow dependences (live and dead; check
    /// [`Dependence::is_live`]).
    pub flows: Vec<Dependence>,
    /// All anti dependences.
    pub antis: Vec<Dependence>,
    /// All output dependences.
    pub outputs: Vec<Dependence>,
    /// Timing and classification statistics.
    pub stats: Stats,
}

impl Analysis {
    /// Live flow dependences, in (src, dst) order.
    pub fn live_flows(&self) -> impl Iterator<Item = &Dependence> {
        self.flows.iter().filter(|d| d.is_live())
    }

    /// Dead flow dependences.
    pub fn dead_flows(&self) -> impl Iterator<Item = &Dependence> {
        self.flows.iter().filter(|d| !d.is_live())
    }

    /// The value sources of a read: the statements whose writes can still
    /// reach it after kill analysis. This is the paper's "flow of
    /// information" — the input a compiler needs for caches, distributed
    /// memories, or communication generation. A single-element result
    /// means the read's producer is known exactly.
    pub fn value_sources(&self, read_label: usize, read_idx: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .live_flows()
            .filter(|d| {
                d.dst.label == read_label && d.dst.site == AccessSite::Read(read_idx)
            })
            .map(|d| d.src.label)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Runs the full analysis of §4 over a program.
///
/// # Errors
///
/// Propagates solver errors.
///
/// # Examples
///
/// ```
/// use depend::{analyze_program, Config};
///
/// let program = tiny::Program::parse(tiny::corpus::EXAMPLE_3)?;
/// let info = tiny::analyze(&program)?;
/// let analysis = analyze_program(&info, &Config::extended())?;
/// let flow = analysis.live_flows().next().expect("one live flow");
/// assert_eq!(flow.summary().to_string(), "(0,1)");
/// assert!(flow.refined);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_program(info: &ProgramInfo, config: &Config) -> Result<Analysis> {
    // Each solver-heavy operation gets a fresh budget so one pathological
    // pair cannot starve the rest of the analysis; budget exhaustion in a
    // §4 test degrades conservatively (no kill/cover/refinement claimed).
    // All budgets share one memo cache, so structurally identical Omega
    // problems are solved once per analysis regardless of which pair (or
    // worker thread) reaches them first.
    let cache = config.memo_cache.then(|| {
        Arc::new(match &config.cache_file {
            // A missing/corrupt/stale file yields an empty cache: the run
            // is cold but correct.
            Some(path) => omega::SolverCache::load_from(path),
            None => omega::SolverCache::new(),
        })
    });
    let mut analysis =
        analyze_with(info, config, &cache, Exec::Threads(config.effective_threads()))?;
    if let (Some(cache), Some(path)) = (&cache, &config.cache_file) {
        // An unwritable path must not fail the analysis (the report is
        // complete), but it must not be silent either: the next run
        // would silently go cold. The save itself is atomic (temp file
        // + rename), so a crash or a concurrent writer can never leave
        // a torn file behind.
        if let Err(e) = cache.save_to(path) {
            eprintln!(
                "depend: warning: failed to save solver cache to {}: {e}",
                path.display()
            );
            analysis.stats.cache_save_failed = true;
        }
    }
    Ok(analysis)
}

/// Analyzes a whole corpus of programs on one shared two-level [`Pool`].
///
/// Programs are the outer work items; each program's analysis stages
/// submit their pair batches to the *same* pool, so workers that finish
/// their program steal pair chunks from programs still in flight — a
/// lone heavy program (or a corpus smaller than the thread count) still
/// fills every core. Every program's report is byte-identical to an
/// [`analyze_program`] run at any thread count.
///
/// All programs share one memo cache, built per [`Config`] exactly like
/// [`analyze_program`] (loaded from [`Config::cache_file`] when set,
/// saved back once after the whole corpus). Each returned
/// [`Stats::cache`] holds the corpus-cumulative counters. A failed save
/// warns on stderr and sets [`Stats::cache_save_failed`] on every
/// analysis.
///
/// # Errors
///
/// Propagates the first (lowest program index) solver error.
pub fn analyze_corpus(infos: &[ProgramInfo], config: &Config) -> Result<Vec<Analysis>> {
    let cache = config.memo_cache.then(|| {
        Arc::new(match &config.cache_file {
            Some(path) => omega::SolverCache::load_from(path),
            None => omega::SolverCache::new(),
        })
    });
    let mut analyses = analyze_corpus_with_cache(infos, config, cache.clone())?;
    if let (Some(cache), Some(path)) = (&cache, &config.cache_file) {
        if let Err(e) = cache.save_to(path) {
            eprintln!(
                "depend: warning: failed to save solver cache to {}: {e}",
                path.display()
            );
            for a in &mut analyses {
                a.stats.cache_save_failed = true;
            }
        }
    }
    Ok(analyses)
}

/// [`analyze_corpus`] with a caller-owned memo cache (the server's batch
/// path; ownership semantics as in [`analyze_program_with_cache`]).
///
/// # Errors
///
/// Propagates the first (lowest program index) solver error.
pub fn analyze_corpus_with_cache(
    infos: &[ProgramInfo],
    config: &Config,
    cache: Option<Arc<omega::SolverCache>>,
) -> Result<Vec<Analysis>> {
    let threads = config.effective_threads();
    let mut analyses = if threads <= 1 || infos.len() <= 1 {
        // Sequential outer loop; a single program still parallelizes
        // its inner stages across `threads`.
        infos
            .iter()
            .map(|info| analyze_with(info, config, &cache, Exec::Threads(threads)))
            .collect::<Result<Vec<_>>>()?
    } else {
        let pool = Pool::new(threads);
        pool.map(infos.iter().collect(), |_, info| {
            analyze_with(info, config, &cache, Exec::Pool(&pool))
        })?
    };
    if let Some(cache) = &cache {
        // Uniform semantics regardless of completion order: every
        // program reports the corpus-total counters.
        let total = cache.stats();
        for a in &mut analyses {
            a.stats.cache = total;
        }
    }
    Ok(analyses)
}

/// [`analyze_program_with_cache`] scheduled on a caller-owned [`Pool`]:
/// the analysis stages submit their pair batches to `pool`, so an
/// otherwise idle server (or concurrent analyses sharing the pool) lends
/// this analysis its workers. [`Config::threads`] is ignored — the
/// pool's size decides the parallelism.
///
/// # Errors
///
/// Propagates solver errors, exactly like [`analyze_program`].
pub fn analyze_program_on(
    pool: &Pool,
    info: &ProgramInfo,
    config: &Config,
    cache: Option<Arc<omega::SolverCache>>,
) -> Result<Analysis> {
    analyze_with(info, config, &cache, Exec::Pool(pool))
}

/// [`analyze_program`] with a caller-owned memo cache.
///
/// A long-lived caller — the `tinydep --serve` daemon — passes the same
/// [`omega::SolverCache`] for every request so canonical solves stay
/// warm across requests. Results are byte-identical to a fresh-cache run
/// (the cache's determinism contract: a hit is indistinguishable, in
/// value and budget consumption, from the cold computation).
///
/// With `Some(cache)`, [`Config::memo_cache`] and [`Config::cache_file`]
/// are ignored: the caller owns the cache's lifetime and persistence
/// (load it with [`omega::SolverCache::load_from`], save it with
/// [`omega::SolverCache::save_to`]). With `None` this is a plain
/// uncached run. [`Analysis::stats`] then reports the cache's
/// *cumulative* counters, so per-request deltas are the caller's
/// subtraction.
///
/// # Errors
///
/// Propagates solver errors, exactly like [`analyze_program`].
pub fn analyze_program_with_cache(
    info: &ProgramInfo,
    config: &Config,
    cache: Option<Arc<omega::SolverCache>>,
) -> Result<Analysis> {
    analyze_with(info, config, &cache, Exec::Threads(config.effective_threads()))
}

/// Where a stage's fan-out runs: an ephemeral scoped pool of its own
/// ([`parallel_map`]), or a shared long-lived [`Pool`] whose workers are
/// stolen across concurrent analyses (the corpus and server paths).
#[derive(Clone, Copy)]
enum Exec<'p> {
    /// Scoped threads per stage, the one-shot path.
    Threads(usize),
    /// Batches submitted to a shared two-level pool.
    Pool(&'p Pool),
}

impl Exec<'_> {
    fn map<T, R, F>(&self, work: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Send + Sync,
    {
        match self {
            Exec::Threads(threads) => parallel_map(*threads, work, f),
            Exec::Pool(pool) => pool.map(work, f),
        }
    }
}

/// The driver body shared by [`analyze_program`] (which builds and
/// persists the cache per `Config`) and [`analyze_program_with_cache`]
/// (which borrows the caller's); `exec` decides where the stage
/// fan-outs run.
fn analyze_with(
    info: &ProgramInfo,
    config: &Config,
    cache: &Option<Arc<omega::SolverCache>>,
    exec: Exec<'_>,
) -> Result<Analysis> {
    let mut stats = Stats::default();

    // Deduplicated reads per statement (a statement may read the same
    // element twice, e.g. `a(jj)*a(jj)`).
    let mut reads: Vec<(usize, usize)> = Vec::new(); // (label, read idx)
    for s in &info.stmts {
        let mut seen = BTreeSet::new();
        for (idx, r) in s.reads.iter().enumerate() {
            let key = format!("{r}");
            if seen.insert(key) {
                reads.push((s.label, idx));
            }
        }
    }
    let writes: Vec<usize> = info.stmts.iter().map(|s| s.label).collect();

    // 1. All output dependences (they feed the quick tests), one task per
    // write pair, merged in pair order.
    let out_tasks: Vec<(usize, usize)> = writes
        .iter()
        .flat_map(|&w1| writes.iter().map(move |&w2| (w1, w2)))
        .collect();
    let out_results = exec.map(out_tasks, |_, (w1, w2)| {
        let a = info.stmt(w1);
        let b = info.stmt(w2);
        let mut pf = PrefilterStats::default();
        if config.quick_tests && name_key(&a.write.array) == name_key(&b.write.array) {
            let skip =
                prefilter_pair(a, AccessSite::Write, b, AccessSite::Write, &info.assumptions);
            pf.record(skip);
            if skip.is_some() {
                // Conservative by construction: the subscript equations
                // have no integer solution, so build_dependence would
                // have returned None (property-tested in tests/).
                return Ok((None, pf));
            }
        }
        let mut budget = fresh_budget(config, cache);
        let dep = build_dependence(
            info,
            DepKind::Output,
            a,
            AccessSite::Write,
            b,
            AccessSite::Write,
            &mut budget,
        )?;
        Ok((dep, pf))
    })?;
    let mut outputs = Vec::new();
    for (dep, pf) in out_results {
        stats.prefilter.absorb(pf);
        outputs.extend(dep);
    }
    let self_output: BTreeSet<usize> = writes
        .iter()
        .copied()
        .filter(|&w| outputs.iter().any(|d| d.src.label == w && d.dst.label == w))
        .collect();

    // 2. Per-pair flow analysis (construction + refinement + covering):
    // one task per same-array (write, read) pair, in read-major order —
    // exactly the iteration order of the sequential loop.
    let flow_tasks: Vec<(usize, usize)> = reads
        .iter()
        .enumerate()
        .flat_map(|(read_pos, &(read_label, read_idx))| {
            let read_array = name_key(&info.stmt(read_label).reads[read_idx].array);
            writes
                .iter()
                .filter(move |&&w| name_key(&info.stmt(w).write.array) == read_array)
                .map(move |&w| (read_pos, w))
        })
        .collect();
    // Remember each task's read position before the dispatch consumes the
    // vector: the merge below folds results back per read without
    // recomputing the task list.
    let merge_order: Vec<usize> = flow_tasks.iter().map(|&(read_pos, _)| read_pos).collect();
    let flow_results = exec.map(flow_tasks, |_, (read_pos, w)| {
        let (read_label, read_idx) = reads[read_pos];
        analyze_flow_pair(info, config, cache, &self_output, read_label, read_idx, w)
    })?;
    let mut flows_by_read: Vec<Vec<(Dependence, u64)>> =
        (0..reads.len()).map(|_| Vec::new()).collect();
    for (read_pos, (pair_stat, dep, pf)) in merge_order.into_iter().zip(flow_results) {
        stats.prefilter.absorb(pf);
        stats.pairs.push(pair_stat);
        if let Some(pair) = dep {
            flows_by_read[read_pos].push(pair);
        }
    }

    // 3. Pairwise kills among the flow dependences to each read. Reads
    // are independent of one another, so the per-read passes fan out;
    // within one read both passes run sequentially (the cover pass
    // first, its deaths visible to every kill test, as in the paper —
    // see `kill_passes` for why the victims are not parallelized).
    let kill_tasks: Vec<(usize, Vec<(Dependence, u64)>)> = reads
        .iter()
        .map(|&(read_label, _)| read_label)
        .zip(flows_by_read)
        .collect();
    let kill_results = exec.map(kill_tasks, |_, (read_label, mut flows_here)| {
        let kill_stats = if config.kill {
            kill_passes(info, config, cache, &outputs, read_label, &mut flows_here)?
        } else {
            Vec::new()
        };
        Ok((flows_here, kill_stats))
    })?;
    let mut flows = Vec::new();
    for (flows_here, kill_stats) in kill_results {
        flows.extend(flows_here.into_iter().map(|(d, _)| d));
        stats.kills.extend(kill_stats);
    }

    // 4. Anti dependences (reported unchanged, as in the paper): one task
    // per same-array (read, write) pair.
    let anti_tasks: Vec<(usize, usize, usize)> = reads
        .iter()
        .flat_map(|&(read_label, read_idx)| {
            let read_array = name_key(&info.stmt(read_label).reads[read_idx].array);
            writes
                .iter()
                .filter(move |&&w| name_key(&info.stmt(w).write.array) == read_array)
                .map(move |&w| (read_label, read_idx, w))
        })
        .collect();
    let anti_results = exec.map(anti_tasks, |_, (read_label, read_idx, w)| {
        let dst = info.stmt(read_label);
        let wst = info.stmt(w);
        let mut pf = PrefilterStats::default();
        if config.quick_tests {
            let skip = prefilter_pair(
                dst,
                AccessSite::Read(read_idx),
                wst,
                AccessSite::Write,
                &info.assumptions,
            );
            pf.record(skip);
            if skip.is_some() {
                return Ok((None, pf));
            }
        }
        let mut budget = fresh_budget(config, cache);
        let dep = build_dependence(
            info,
            DepKind::Anti,
            dst,
            AccessSite::Read(read_idx),
            wst,
            AccessSite::Write,
            &mut budget,
        )?;
        Ok((dep, pf))
    })?;
    let mut antis = Vec::new();
    for (dep, pf) in anti_results {
        stats.prefilter.absorb(pf);
        antis.extend(dep);
    }

    storage_kill_passes(info, config, cache, &mut outputs, &mut antis)?;

    if let Some(cache) = cache {
        // For a caller-owned cache these counters are cumulative across
        // every analysis that shared it.
        stats.cache = cache.stats();
    }
    Ok(Analysis {
        flows,
        antis,
        outputs,
        stats,
    })
}

/// A per-query budget, sharing the analysis-wide memo cache when one is
/// enabled.
fn fresh_budget(config: &Config, cache: &Option<Arc<omega::SolverCache>>) -> Budget {
    let b = Budget::new(config.budget).with_options(omega::SolverOptions {
        dense_kernel: config.dense_kernel,
        base_checkpoint: config.base_checkpoint,
        ..omega::SolverOptions::default()
    });
    match cache {
        Some(c) => b.with_cache(c.clone()),
        None => b,
    }
}

/// Stage-2 task: dependence construction plus the extended analysis
/// (refinement then covering) for one same-array (write, read) pair.
fn analyze_flow_pair(
    info: &ProgramInfo,
    config: &Config,
    cache: &Option<Arc<omega::SolverCache>>,
    self_output: &BTreeSet<usize>,
    read_label: usize,
    read_idx: usize,
    w: usize,
) -> Result<(PairStat, Option<(Dependence, u64)>, PrefilterStats)> {
    let dst = info.stmt(read_label);
    let src = info.stmt(w);
    let mut pf = PrefilterStats::default();
    let no_dep_stat = |std_ns: u64| PairStat {
        src: w,
        dst: read_label,
        read_idx,
        array: src.write.array.clone(),
        std_ns,
        ext_ns: std_ns,
        class: PairClass::NoTest,
        dep_found: false,
    };

    let t0 = Instant::now();
    if config.quick_tests {
        let skip = prefilter_pair(
            src,
            AccessSite::Write,
            dst,
            AccessSite::Read(read_idx),
            &info.assumptions,
        );
        pf.record(skip);
        if skip.is_some() {
            return Ok((no_dep_stat(t0.elapsed().as_nanos() as u64), None, pf));
        }
    }
    let mut budget = fresh_budget(config, cache);
    let dep = build_dependence(
        info,
        DepKind::Flow,
        src,
        AccessSite::Write,
        dst,
        AccessSite::Read(read_idx),
        &mut budget,
    )?;
    let std_ns = t0.elapsed().as_nanos() as u64;

    let Some(mut dep) = dep else {
        return Ok((no_dep_stat(std_ns), None, pf));
    };

    // Extended analysis: refinement then covering (the paper performs
    // refinement first so loop-independent covers are recognized). Budget
    // exhaustion means "the test did not succeed" — sound, since both
    // analyses only remove information.
    let t1 = Instant::now();
    let mut budget = fresh_budget(config, cache);
    let r = match refine_dependence(
        info,
        &mut dep,
        self_output.contains(&w),
        config,
        &mut budget,
    ) {
        Ok(r) => r,
        Err(crate::Error::Solver(omega::Error::TooComplex { .. })) => {
            crate::refine::RefineOutcome {
                consulted_omega: true,
                ..Default::default()
            }
        }
        Err(e) => return Err(e),
    };
    let mut budget = fresh_budget(config, cache);
    let c = match check_covering(info, &mut dep, config, &mut budget) {
        Ok(c) => c,
        Err(crate::Error::Solver(omega::Error::TooComplex { .. })) => {
            crate::cover::CoverOutcome {
                consulted_omega: true,
                ..Default::default()
            }
        }
        Err(e) => return Err(e),
    };
    let ext_ns = std_ns + t1.elapsed().as_nanos() as u64;

    let consulted = r.consulted_omega || c.consulted_omega;
    let split = r.split || c.split;
    let stat = PairStat {
        src: w,
        dst: read_label,
        read_idx,
        array: src.write.array.clone(),
        std_ns,
        ext_ns,
        class: if !consulted {
            PairClass::NoTest
        } else if split {
            PairClass::Split
        } else {
            PairClass::General
        },
        dep_found: true,
    };
    Ok((stat, Some((dep, ext_ns)), pf))
}

/// Stage-3 task: the pairwise kill analysis for one read.
///
/// Two passes, mirroring the paper: covering dependences first rule out
/// everything that must precede them (marked `[c]`, no Omega query),
/// then the general pairwise kill tests run on what is left (marked
/// `[k]`).
///
/// The killer list is snapshotted before either pass and each victim
/// only consults its own death flag, so pass 2's victims *could* fan
/// out over the worker pool. Profiling on GAUSS_JORDAN showed that is
/// not worth wiring: ~95% of the read's kill time sits in one victim's
/// killer chain, which is inherently sequential (each test must see
/// that victim's earlier deaths), and the nested spawn under the
/// per-read fan-out regressed 8-thread wall time by ~30%. See
/// EXPERIMENTS.md ("Intra-read kill parallelism").
fn kill_passes(
    info: &ProgramInfo,
    config: &Config,
    cache: &Option<Arc<omega::SolverCache>>,
    outputs: &[Dependence],
    read_label: usize,
    flows_here: &mut Vec<(Dependence, u64)>,
) -> Result<Vec<KillStat>> {
    let dst = info.stmt(read_label);
    let has_output = |src: usize, dst: usize| {
        outputs
            .iter()
            .any(|d| d.src.label == src && d.dst.label == dst)
    };
    let mut kill_stats = Vec::new();
    let killers: Vec<(usize, bool, bool, crate::dir::DirectionVector)> = flows_here
        .iter()
        .map(|(d, _)| {
            let summary = d.summary();
            let all_zero = summary
                .0
                .iter()
                .all(|e| e.lo == Some(0) && e.hi == Some(0));
            (d.src.label, d.covering, all_zero, summary)
        })
        .collect();

    // Pass 1: cover-based elimination (quick, syntactic).
    if config.quick_tests {
        // Index-based: the body mutates `flows_here[v]` while the
        // killer list is read separately.
        #[allow(clippy::needless_range_loop)]
        for v in 0..flows_here.len() {
            for (killer_label, killer_covers, killer_loop_indep) in
                killers.iter().map(|(a, b, c, _)| (*a, *b, *c))
            {
                if flows_here[v].0.dead.is_some()
                    || killer_label == flows_here[v].0.src.label
                {
                    continue;
                }
                let victim_src = info.stmt(flows_here[v].0.src.label);
                let killer_stmt = info.stmt(killer_label);
                let t0 = Instant::now();
                // A loop-independent cover kills every write that
                // must precede it: the victim shares at most the
                // cover's common nest with the killer (m <= c) and
                // is lexically before it, so every victim instance
                // executes before the covering instance that
                // services the read.
                let m = victim_src.common_loops(killer_stmt);
                let c = killer_stmt.common_loops(dst);
                if killer_covers
                    && killer_loop_indep
                    && m <= c
                    && victim_src.lexically_before(killer_stmt)
                {
                    flows_here[v].0.dead = Some(DeadReason::Covered);
                    kill_stats.push(KillStat {
                        victim_src: flows_here[v].0.src.label,
                        killer: killer_label,
                        read: read_label,
                        kill_ns: t0.elapsed().as_nanos() as u64,
                        victim_ext_ns: flows_here[v].1,
                        consulted_omega: false,
                        killed: true,
                    });
                }
            }
        }
    }

    // Pass 2: general pairwise kill tests, sequential over victims
    // (measured: intra-read parallelism does not pay off — see the
    // function docs).
    for (victim, ext_ns) in flows_here.iter_mut().map(|(v, n)| (v, *n)) {
        let victim_summary = victim.summary();
        for (killer_label, killer_summary) in killers.iter().map(|(a, _, _, d)| (*a, d)) {
            if victim.dead.is_some() || killer_label == victim.src.label {
                continue;
            }
            let t0 = Instant::now();

            // §4.5 quick test 1: a kill needs an output dependence
            // from the victim's source to the killer.
            if config.quick_tests && !has_output(victim.src.label, killer_label) {
                kill_stats.push(KillStat {
                    victim_src: victim.src.label,
                    killer: killer_label,
                    read: read_label,
                    kill_ns: t0.elapsed().as_nanos() as u64,
                    victim_ext_ns: ext_ns,
                    consulted_omega: false,
                    killed: false,
                });
                continue;
            }

            // §4.5 quick test 2: "it must be possible for the
            // dependence distance from A to C to equal the total
            // distance from A to B and B to C."
            if config.quick_tests {
                let ab = outputs
                    .iter()
                    .find(|d| {
                        d.src.label == victim.src.label && d.dst.label == killer_label
                    })
                    .map(|d| d.summary());
                if let Some(ab) = ab {
                    if !distance_sum_feasible(&victim_summary, &ab, killer_summary) {
                        kill_stats.push(KillStat {
                            victim_src: victim.src.label,
                            killer: killer_label,
                            read: read_label,
                            kill_ns: t0.elapsed().as_nanos() as u64,
                            victim_ext_ns: ext_ns,
                            consulted_omega: false,
                            killed: false,
                        });
                        continue;
                    }
                }
            }

            let mut budget = fresh_budget(config, cache);
            let out = match check_kill(info, victim, killer_label, config, &mut budget) {
                Ok(o) => o,
                Err(crate::Error::Solver(omega::Error::TooComplex { .. })) => {
                    crate::kill::KillOutcome {
                        consulted_omega: true,
                        killed: false,
                    }
                }
                Err(e) => return Err(e),
            };
            if out.killed {
                victim.dead = Some(DeadReason::Killed);
            }
            kill_stats.push(KillStat {
                victim_src: victim.src.label,
                killer: killer_label,
                read: read_label,
                kill_ns: t0.elapsed().as_nanos() as u64,
                victim_ext_ns: ext_ns,
                consulted_omega: out.consulted_omega,
                killed: out.killed,
            });
        }
    }
    Ok(kill_stats)
}

/// Optional extension: kill analysis on storage dependences. The §4.1
/// formula is kind-agnostic — an output dependence A -> C is dead when
/// an intervening write B always overwrites A's value before C writes
/// again, and an anti dependence (read A -> write C) is dead when B
/// always overwrites the read location first (C's ordering constraint
/// is then carried through B). Runs sequentially: later tests skip
/// dependences already found dead.
fn storage_kill_passes(
    info: &ProgramInfo,
    config: &Config,
    cache: &Option<Arc<omega::SolverCache>>,
    outputs: &mut [Dependence],
    antis: &mut [Dependence],
) -> Result<()> {
    if !config.storage_kills {
        return Ok(());
    }
    let mut budget = fresh_budget(config, cache);
    {
        let out_pairs_anti: BTreeSet<(usize, usize)> = outputs
            .iter()
            .map(|d| (d.src.label, d.dst.label))
            .collect();
        #[allow(clippy::needless_range_loop)]
        for v in 0..antis.len() {
            if antis[v].dead.is_some() {
                continue;
            }
            let dst_label = antis[v].dst.label;
            let killers: Vec<usize> = info
                .stmts
                .iter()
                .map(|s| s.label)
                .filter(|&k| k != antis[v].src.label && k != dst_label)
                .collect();
            for killer in killers {
                // Quick gate: the killer must write the same array as the
                // destination write (checked inside check_kill) and reach
                // it (an output dependence killer -> dst exists).
                if config.quick_tests && !out_pairs_anti.contains(&(killer, dst_label)) {
                    continue;
                }
                let out = check_kill(info, &antis[v], killer, config, &mut budget)?;
                if out.killed {
                    antis[v].dead = Some(DeadReason::Killed);
                    break;
                }
            }
        }
    }
    {
        let out_pairs: BTreeSet<(usize, usize)> = outputs
            .iter()
            .map(|d| (d.src.label, d.dst.label))
            .collect();
        let dst_writes: Vec<usize> = outputs.iter().map(|d| d.dst.label).collect();
        let mut seen = BTreeSet::new();
        for &dst_label in &dst_writes {
            if !seen.insert(dst_label) {
                continue;
            }
            let killers: Vec<usize> = outputs
                .iter()
                .filter(|d| d.dst.label == dst_label)
                .map(|d| d.src.label)
                .collect();
            #[allow(clippy::needless_range_loop)]
            for v in 0..outputs.len() {
                if outputs[v].dst.label != dst_label || outputs[v].dead.is_some() {
                    continue;
                }
                for &killer in &killers {
                    if killer == outputs[v].src.label {
                        continue;
                    }
                    if config.quick_tests
                        && !out_pairs.contains(&(outputs[v].src.label, killer))
                    {
                        continue;
                    }
                    let out = check_kill(info, &outputs[v], killer, config, &mut budget)?;
                    if out.killed {
                        outputs[v].dead = Some(DeadReason::Killed);
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

/// §4.5 quick test: a kill requires that the victim's distance can equal
/// the sum of the killer-path distances (`dist(A→C) ∈ dist(A→B) +
/// dist(B→C)` per shared level). All three summaries align on the common
/// nest prefix; unbounded ends never refute.
fn distance_sum_feasible(
    victim: &crate::dir::DirectionVector,
    ab: &crate::dir::DirectionVector,
    bc: &crate::dir::DirectionVector,
) -> bool {
    let levels = victim.len().min(ab.len()).min(bc.len());
    for l in 0..levels {
        let sum_lo = match (ab.0[l].lo, bc.0[l].lo) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        };
        let sum_hi = match (ab.0[l].hi, bc.0[l].hi) {
            (Some(x), Some(y)) => Some(x + y),
            _ => None,
        };
        if let (Some(vh), Some(sl)) = (victim.0[l].hi, sum_lo) {
            if vh < sl {
                return false;
            }
        }
        if let (Some(vl), Some(sh)) = (victim.0[l].lo, sum_hi) {
            if sh < vl {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Analysis {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        analyze_program(&info, &Config::extended()).unwrap()
    }

    #[test]
    fn example1_flow_is_killed() {
        let a = run(tiny::corpus::EXAMPLE_1);
        // Flow from stmt 1 (a(n)) to stmt 3 is dead; flow from stmt 2 live.
        let d1 = a
            .flows
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert_eq!(d1.dead, Some(DeadReason::Killed));
        let d2 = a
            .flows
            .iter()
            .find(|d| d.src.label == 2 && d.dst.label == 3)
            .unwrap();
        assert!(d2.is_live());
    }

    #[test]
    fn example1_m_variants() {
        let a = run(tiny::corpus::EXAMPLE_1_M);
        let d1 = a
            .flows
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert!(d1.is_live(), "kill not verifiable without the assertion");

        let b = run(tiny::corpus::EXAMPLE_1_M_ASSERTED);
        let d1 = b
            .flows
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert!(!d1.is_live(), "assertion restores the kill");
    }

    #[test]
    fn example2_cover_and_kills() {
        let a = run(tiny::corpus::EXAMPLE_2);
        // Read is stmt 5. The write a(L2-1) (stmt 4) covers it.
        let cover = a
            .flows
            .iter()
            .find(|d| d.src.label == 4 && d.dst.label == 5)
            .unwrap();
        assert!(cover.is_live());
        assert!(cover.covering);
        // Flows from stmt 1 (a(m)) and stmt 2 (a(L1)) are dead.
        for src in [1, 2] {
            let d = a
                .flows
                .iter()
                .find(|d| d.src.label == src && d.dst.label == 5)
                .unwrap();
            assert!(!d.is_live(), "stmt {src} flow should be dead");
        }
        // stmt 3 (a(L2)) is killed by stmt 4 as well (general test).
        let d3 = a
            .flows
            .iter()
            .find(|d| d.src.label == 3 && d.dst.label == 5)
            .unwrap();
        assert!(!d3.is_live());
    }

    #[test]
    fn example3_pipeline() {
        let a = run(tiny::corpus::EXAMPLE_3);
        let flows: Vec<_> = a.live_flows().collect();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].summary().to_string(), "(0,1)");
        assert!(flows[0].refined);
    }

    #[test]
    fn stats_are_collected() {
        let a = run(tiny::corpus::EXAMPLE_2);
        assert!(!a.stats.pairs.is_empty());
        assert!(a.stats.pairs.iter().any(|p| p.dep_found));
        assert!(!a.stats.kills.is_empty());
        for p in &a.stats.pairs {
            assert!(p.ext_ns >= p.std_ns);
        }
    }

    #[test]
    fn standard_config_reports_unrefined() {
        let program = tiny::Program::parse(tiny::corpus::EXAMPLE_3).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::standard()).unwrap();
        let flows: Vec<_> = a.live_flows().collect();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].summary().to_string(), "(0+,1)");
        assert!(!flows[0].refined);
    }
}

#[cfg(test)]
mod storage_tests {
    use super::*;

    #[test]
    fn output_dependence_killed_by_intermediate_write() {
        // Three consecutive full overwrites: the output dep 1 -> 3 is
        // transitively covered by write 2.
        let src = "
            sym n;
            for i := 1 to n do a(i) := 0; endfor
            for i := 1 to n do a(i) := 1; endfor
            for i := 1 to n do a(i) := 2; endfor
        ";
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let cfg = Config {
            storage_kills: true,
            ..Config::extended()
        };
        let a = analyze_program(&info, &cfg).unwrap();
        let d13 = a
            .outputs
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert_eq!(d13.dead, Some(DeadReason::Killed));
        // Adjacent output deps stay live.
        for (s, t) in [(1, 2), (2, 3)] {
            let d = a
                .outputs
                .iter()
                .find(|d| d.src.label == s && d.dst.label == t)
                .unwrap();
            assert!(d.is_live(), "{s} -> {t}");
        }
        // Default config leaves all output deps live (paper behavior).
        let b = analyze_program(&info, &Config::extended()).unwrap();
        assert!(b.outputs.iter().all(|d| d.is_live()));
    }

    #[test]
    fn partial_intermediate_write_does_not_kill_output_dep() {
        let src = "
            sym n;
            for i := 1 to 2*n do a(i) := 0; endfor
            for i := 1 to n do a(2*i) := 1; endfor
            for i := 1 to 2*n do a(i) := 2; endfor
        ";
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let cfg = Config {
            storage_kills: true,
            ..Config::extended()
        };
        let a = analyze_program(&info, &cfg).unwrap();
        let d13 = a
            .outputs
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert!(
            d13.is_live(),
            "write 2 overwrites only even elements, so odd elements still \
             carry the output dependence from write 1 to write 3"
        );
    }
}

#[cfg(test)]
mod anti_kill_tests {
    use super::*;

    #[test]
    fn anti_dependence_killed_by_intermediate_overwrite() {
        // read a(i) (stmt 1); full overwrite (stmt 2); overwrite again
        // (stmt 3). The anti dependence 1 -> 3 is transitively enforced
        // through stmt 2: dead under storage-kill analysis.
        let src = "
            sym n;
            for i := 1 to n do x := a(i); endfor
            for i := 1 to n do a(i) := 1; endfor
            for i := 1 to n do a(i) := 2; endfor
        ";
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let cfg = Config {
            storage_kills: true,
            ..Config::extended()
        };
        let a = analyze_program(&info, &cfg).unwrap();
        let d13 = a
            .antis
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 3)
            .unwrap();
        assert_eq!(d13.dead, Some(DeadReason::Killed));
        let d12 = a
            .antis
            .iter()
            .find(|d| d.src.label == 1 && d.dst.label == 2)
            .unwrap();
        assert!(d12.is_live());
        // Default config: untouched, matching the paper's implementation.
        let b = analyze_program(&info, &Config::extended()).unwrap();
        assert!(b.antis.iter().all(|d| d.is_live()));
    }
}

#[cfg(test)]
mod dataflow_tests {
    use super::*;

    #[test]
    fn value_sources_shrink_under_extended_analysis() {
        // Three writes could reach the read syntactically; only the last
        // one actually provides values.
        let src = "
            sym n;
            for i := 1 to n do a(i) := 0; endfor
            for i := 1 to n do a(i) := 1; endfor
            for i := 1 to n do a(i) := 2; endfor
            for i := 1 to n do x := a(i); endfor
        ";
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let std = analyze_program(&info, &Config::standard()).unwrap();
        assert_eq!(std.value_sources(4, 0), vec![1, 2, 3]);
        let ext = analyze_program(&info, &Config::extended()).unwrap();
        assert_eq!(
            ext.value_sources(4, 0),
            vec![3],
            "the producer is known exactly after kill analysis"
        );
    }

    #[test]
    fn value_sources_empty_for_live_in_reads() {
        let src = "sym n; for i := 1 to n do x := a(i); endfor";
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let a = analyze_program(&info, &Config::extended()).unwrap();
        assert!(a.value_sources(1, 0).is_empty(), "a is live-in");
    }
}
