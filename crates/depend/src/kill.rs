//! Killing dependences (§4.1): a dependence from A to C is killed by the
//! dependence from a write B to C when every element A accesses is
//! overwritten by B before C can access it.

use omega::{Budget, PairContext, ProblemLike};
use tiny::ProgramInfo;

use crate::config::Config;
use crate::dep::{AccessSite, Dependence};
use crate::error::Result;
use crate::logic::implies_union;
use crate::pairs::{access_of, executes_before};
use crate::space::{add_order, order_cases, Space};

/// What the kill test did (for the Figure 6 right-hand plot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KillOutcome {
    /// Whether the victim is dead.
    pub killed: bool,
    /// Whether a general Omega-test query ran (false means a quick test
    /// resolved it).
    pub consulted_omega: bool,
}

/// Tests whether `victim` (a dependence from A to C) is killed by the
/// write of statement `killer_label` (B):
///
/// ```text
/// ∀ i,k,Sym:  i ∈ [A] ∧ k ∈ [C] ∧ A(i) ≪ C(k) ∧ A(i) =ₛᵤᵦ C(k)
///   ⇒ ∃ j.  j ∈ [B] ∧ A(i) ≪ B(j) ≪ C(k) ∧ B(j) =ₛᵤᵦ C(k)
/// ```
///
/// # Errors
///
/// Propagates solver errors.
pub fn check_kill(
    info: &ProgramInfo,
    victim: &Dependence,
    killer_label: usize,
    config: &Config,
    budget: &mut Budget,
) -> Result<KillOutcome> {
    let mut out = KillOutcome::default();
    if !config.kill
        || victim.cases.is_empty()
        || victim.cases.iter().any(|c| !c.exact_subscripts)
        || killer_label == victim.src.label
    {
        return Ok(out);
    }

    let a = info.stmt(victim.src.label);
    let c = info.stmt(victim.dst.label);
    let b = info.stmt(killer_label);
    let a_acc = access_of(a, victim.src.site);
    let c_acc = access_of(c, victim.dst.site);
    let b_acc = &b.write;
    if tiny::ast::name_key(&b_acc.array) != tiny::ast::name_key(&c_acc.array) {
        return Ok(out);
    }

    out.consulted_omega = true;
    let mut space = Space::new(&info.syms);
    let i_vars = space.bind_stmt("i", a);
    let k_vars = space.bind_stmt("k", c);
    let j_vars = space.bind_stmt("j", b);

    // Premises: the victim's cases, rebuilt over (i, k).
    let common_ac = a.common_loops(c);
    let mut premises = Vec::new();
    for case in &victim.cases {
        let mut p = space.problem();
        space.add_iteration_space(&mut p, a, &i_vars)?;
        space.add_iteration_space(&mut p, c, &k_vars)?;
        if !space.add_subscript_equality(&mut p, a_acc, &i_vars, c_acc, &k_vars)? {
            return Ok(out);
        }
        space.add_assumptions(&mut p, &info.assumptions)?;
        add_order(&mut p, case.order, &i_vars, &k_vars, common_ac)?;
        premises.push(p);
    }

    // Witnesses: j ∈ [B] ∧ A(i) ≪ B(j) ∧ B(j) ≪ C(k) ∧ subscripts match,
    // one conjunction per (order(A,B), order(B,C)) pair, projected away j.
    let common_ab = a.common_loops(b);
    let common_bc = b.common_loops(c);
    let ab_cases = order_cases(
        common_ab,
        executes_before(a, victim.src.site, b, AccessSite::Write),
    );
    let bc_cases = order_cases(
        common_bc,
        executes_before(b, AccessSite::Write, c, victim.dst.site),
    );
    let keep: Vec<omega::VarId> = i_vars
        .iters
        .iter()
        .chain(&k_vars.iters)
        .copied()
        .chain(space.sym_vars())
        .collect();

    let mut base = space.problem();
    space.add_iteration_space(&mut base, b, &j_vars)?;
    if !space.add_subscript_equality(&mut base, b_acc, &j_vars, c_acc, &k_vars)? {
        return Ok(out);
    }
    space.add_assumptions(&mut base, &info.assumptions)?;
    // One canonicalization of the witness base; each order pair below is
    // a delta against it.
    let wctx = PairContext::new(base, budget);

    let mut witnesses = Vec::new();
    for &ab in &ab_cases {
        for &bc in &bc_cases {
            let mut q = wctx.derive();
            add_order(&mut q, ab, &i_vars, &j_vars, common_ab)?;
            add_order(&mut q, bc, &j_vars, &k_vars, common_bc)?;
            if !q.is_satisfiable_with(budget)? {
                continue;
            }
            let proj = q.project_with(&keep, budget)?;
            for piece in proj.into_problems() {
                if !piece.is_known_infeasible() {
                    witnesses.push(piece);
                }
            }
        }
    }

    for p in &premises {
        if !implies_union(p, &witnesses, config.formula_fallback, budget)? {
            return Ok(out);
        }
    }
    out.killed = true;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::DepKind;
    use crate::pairs::build_dependence;
    use tiny::{analyze, Program};

    fn kill_in(src: &str, victim_w: usize, read_stmt: usize, killer: usize) -> bool {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let mut budget = Budget::default();
        let victim = build_dependence(
            &info,
            DepKind::Flow,
            info.stmt(victim_w),
            AccessSite::Write,
            info.stmt(read_stmt),
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap()
        .expect("victim dependence exists");
        let cfg = Config::default();
        check_kill(&info, &victim, killer, &cfg, &mut budget)
            .unwrap()
            .killed
    }

    #[test]
    fn example1_write_kills_flow() {
        // Paper §4.1: the write a(L1) (stmt 2) kills the flow from a(n)
        // (stmt 1) to the read (stmt 3).
        assert!(kill_in(tiny::corpus::EXAMPLE_1, 1, 3, 2));
    }

    #[test]
    fn example1_m_kill_not_verifiable() {
        // With the first write to a(m) and no assertion, the kill cannot
        // be verified.
        assert!(!kill_in(tiny::corpus::EXAMPLE_1_M, 1, 3, 2));
    }

    #[test]
    fn example1_m_assertion_restores_kill() {
        // Asserting n <= m <= n+10 restores it.
        assert!(kill_in(tiny::corpus::EXAMPLE_1_M_ASSERTED, 1, 3, 2));
    }

    #[test]
    fn kill_chain_middle_write_kills_first() {
        assert!(kill_in(tiny::corpus::CONTRIVED_KILL_CHAIN, 1, 3, 2));
    }

    #[test]
    fn partial_kill_does_not_kill() {
        // Second write only covers even elements.
        assert!(!kill_in(tiny::corpus::CONTRIVED_PARTIAL_KILL, 1, 3, 2));
    }

    #[test]
    fn loop_carried_kill_within_same_nest() {
        // w1: a(i) := 0 (stmt 1); w2: a(i) := 1 (stmt 2, same loop, after);
        // read in a later loop: stmt 2 kills stmt 1's flow.
        assert!(kill_in(
            "sym n;
             for i := 1 to n do
               a(i) := 0;
               a(i) := 1;
             endfor
             for i := 1 to n do x := a(i); endfor",
            1,
            3,
            2
        ));
    }

    #[test]
    fn different_array_killer_is_rejected() {
        assert!(!kill_in(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := 1 to n do b(i) := 1; endfor
             for i := 1 to n do x := a(i); endfor",
            1,
            3,
            2
        ));
    }
}
