//! Graphviz (DOT) export of the dependence graph: statements as nodes,
//! dependences as edges labeled with their distance vectors. Dead
//! dependences render dashed gray — the visual counterpart of Figure 4.
//!
//! Consumes the [`DepGraph`] IR: node labels, access tooltips and edge
//! labels come precomputed from the graph instead of being re-derived
//! here (the old renderer re-looked-up every access via
//! `pairs::access_of`).

use std::fmt::Write as _;

use crate::dep::DepKind;
use crate::graph::{DepGraph, Edge};

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Include anti dependences.
    pub antis: bool,
    /// Include output dependences.
    pub outputs: bool,
    /// Include dead (killed/covered) dependences of any kind, rendered
    /// dashed; off renders the surviving graph only.
    pub dead: bool,
}

/// Renders the dependence graph in DOT format.
pub fn to_dot(graph: &DepGraph<'_>, opts: &DotOptions) -> String {
    let mut out = String::from("digraph dependences {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for n in graph.nodes() {
        let loops: Vec<&str> = n.loop_vars.iter().map(String::as_str).collect();
        let _ = writeln!(
            out,
            "  s{} [label=\"{}: {} :=\\n[{}]\"];",
            n.label,
            n.label,
            escape(&n.write),
            loops.join(",")
        );
    }
    let mut edge = |e: &Edge<'_>| {
        let (color, style) = match (e.kind(), e.is_live()) {
            (_, false) => ("gray", "dashed"),
            (DepKind::Flow, true) => ("black", "solid"),
            (DepKind::Anti, true) => ("blue", "solid"),
            (DepKind::Output, true) => ("red", "solid"),
        };
        let mut label = e.dir.clone();
        if !e.tag.is_empty() {
            if !label.is_empty() {
                label.push(' ');
            }
            label.push_str(&e.tag);
        }
        let tooltip = format!("{} -> {}", e.src_access, e.dst_access);
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\", color={}, style={}, tooltip=\"{}\"];",
            e.src_label(),
            e.dst_label(),
            escape(&label),
            color,
            style,
            escape(&tooltip)
        );
    };
    for e in graph.edges_of_kind(DepKind::Flow) {
        if e.is_live() || opts.dead {
            edge(e);
        }
    }
    if opts.antis {
        for e in graph.edges_of_kind(DepKind::Anti) {
            if e.is_live() || opts.dead {
                edge(e);
            }
        }
    }
    if opts.outputs {
        for e in graph.edges_of_kind(DepKind::Output) {
            if e.is_live() || opts.dead {
                edge(e);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    fn render(src: &str, opts: &DotOptions) -> String {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = analyze_program(&info, &Config::extended()).unwrap();
        to_dot(&DepGraph::new(&info, &analysis), opts)
    }

    #[test]
    fn renders_nodes_and_flow_edges() {
        let dot = render(tiny::corpus::EXAMPLE_3, &DotOptions::default());
        assert!(dot.starts_with("digraph dependences {"));
        assert!(dot.contains("s1 ["), "{dot}");
        assert!(dot.contains("s1 -> s1"), "self flow edge:\n{dot}");
        assert!(dot.contains("(0,1)"), "refined label:\n{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dead_edges_render_dashed_when_requested() {
        let opts = DotOptions {
            dead: true,
            ..DotOptions::default()
        };
        let dot = render(tiny::corpus::EXAMPLE_1, &opts);
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("[ k]"), "{dot}");
        // Without the flag, dead edges are suppressed.
        let dot2 = render(tiny::corpus::EXAMPLE_1, &DotOptions::default());
        assert!(!dot2.contains("dashed"), "{dot2}");
    }

    #[test]
    fn storage_edges_are_color_coded() {
        let opts = DotOptions {
            antis: true,
            outputs: true,
            dead: false,
        };
        let dot = render(tiny::corpus::SEIDEL, &opts);
        assert!(dot.contains("color=blue"), "anti edge:\n{dot}");
        assert!(dot.contains("color=red"), "output edge:\n{dot}");
    }

    #[test]
    fn quotes_are_escaped() {
        // No quotes in the language today, but the escaper must be total.
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
