//! Graphviz (DOT) export of the dependence graph: statements as nodes,
//! dependences as edges labeled with their distance vectors. Dead
//! dependences render dashed gray — the visual counterpart of Figure 4.

use std::fmt::Write as _;

use tiny::ProgramInfo;

use crate::analysis::Analysis;
use crate::dep::{DepKind, Dependence};
use crate::pairs::access_of;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Include anti dependences.
    pub antis: bool,
    /// Include output dependences.
    pub outputs: bool,
    /// Include dead (killed/covered) flow dependences, rendered dashed.
    pub dead: bool,
}

/// Renders the dependence graph in DOT format.
pub fn to_dot(info: &ProgramInfo, analysis: &Analysis, opts: &DotOptions) -> String {
    let mut out = String::from("digraph dependences {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for s in &info.stmts {
        let loops: Vec<&str> = s.loops.iter().map(|l| l.var.as_str()).collect();
        let _ = writeln!(
            out,
            "  s{} [label=\"{}: {} :=\\n[{}]\"];",
            s.label,
            s.label,
            escape(&s.write.to_string()),
            loops.join(",")
        );
    }
    let mut edge = |d: &Dependence| {
        let (color, style) = match (d.kind, d.is_live()) {
            (_, false) => ("gray", "dashed"),
            (DepKind::Flow, true) => ("black", "solid"),
            (DepKind::Anti, true) => ("blue", "solid"),
            (DepKind::Output, true) => ("red", "solid"),
        };
        let mut label = if d.common > 0 {
            d.summary().to_string()
        } else {
            String::new()
        };
        let tag = d.status_tag();
        if !tag.is_empty() {
            if !label.is_empty() {
                label.push(' ');
            }
            label.push_str(&tag);
        }
        let src_acc = access_of(info.stmt(d.src.label), d.src.site);
        let dst_acc = access_of(info.stmt(d.dst.label), d.dst.site);
        let tooltip = format!("{} -> {}", src_acc, dst_acc);
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\", color={}, style={}, tooltip=\"{}\"];",
            d.src.label,
            d.dst.label,
            escape(&label),
            color,
            style,
            escape(&tooltip)
        );
    };
    for d in &analysis.flows {
        if d.is_live() || opts.dead {
            edge(d);
        }
    }
    if opts.antis {
        for d in &analysis.antis {
            edge(d);
        }
    }
    if opts.outputs {
        for d in &analysis.outputs {
            edge(d);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;

    fn render(src: &str, opts: &DotOptions) -> String {
        let program = tiny::Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = analyze_program(&info, &Config::extended()).unwrap();
        to_dot(&info, &analysis, opts)
    }

    #[test]
    fn renders_nodes_and_flow_edges() {
        let dot = render(tiny::corpus::EXAMPLE_3, &DotOptions::default());
        assert!(dot.starts_with("digraph dependences {"));
        assert!(dot.contains("s1 ["), "{dot}");
        assert!(dot.contains("s1 -> s1"), "self flow edge:\n{dot}");
        assert!(dot.contains("(0,1)"), "refined label:\n{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dead_edges_render_dashed_when_requested() {
        let opts = DotOptions {
            dead: true,
            ..DotOptions::default()
        };
        let dot = render(tiny::corpus::EXAMPLE_1, &opts);
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("[ k]"), "{dot}");
        // Without the flag, dead edges are suppressed.
        let dot2 = render(tiny::corpus::EXAMPLE_1, &DotOptions::default());
        assert!(!dot2.contains("dashed"), "{dot2}");
    }

    #[test]
    fn storage_edges_are_color_coded() {
        let opts = DotOptions {
            antis: true,
            outputs: true,
            dead: false,
        };
        let dot = render(tiny::corpus::SEIDEL, &opts);
        assert!(dot.contains("color=blue"), "anti edge:\n{dot}");
        assert!(dot.contains("color=red"), "output edge:\n{dot}");
    }

    #[test]
    fn quotes_are_escaped() {
        // No quotes in the language today, but the escaper must be total.
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
