//! The parallelization decision engine behind `tinydep --parallelize`.
//!
//! For every loop of a program this module computes two verdicts from
//! one [`DepGraph`]: the *post-kill* verdict (extended analysis, dead
//! dependences discounted) and the *pre-kill* verdict (every dependence
//! taken at face value, as standard analysis would). A loop is
//! **parallelizable** when it carries no dependence at all, or when
//! every carried dependence is a storage (anti/output) dependence on an
//! array that can be privatized — i.e. no loop-carried flow on that
//! array. A loop that is parallelizable post-kill but not pre-kill is
//! **newly parallelizable**: the headline payoff of the paper's kill
//! analysis, since the false flow dependence that blocked privatization
//! is exactly what §4.3 eliminates.
//!
//! [`render_parallelize_report`] turns the decisions into the report the
//! CLI, corpus batch mode and server `parallelize` op all print: the
//! program source annotated with `!$` verdict comments per loop, a DOT
//! graph of the surviving dependences, and a one-line summary.

use std::fmt;

use tiny::pretty::{render_annotated, Annotations};
use tiny::Program;

use crate::dot::{to_dot, DotOptions};
use crate::graph::{DepGraph, KillView, LoopVerdict};
use crate::transform::{program_loops, LoopRef};

/// How many blocking dependences a `sequential:` annotation lists before
/// collapsing the tail into `+N more`.
const MAX_BLOCKERS_SHOWN: usize = 4;

/// The decision for one loop: its verdict with and without kill
/// analysis.
#[derive(Debug, Clone)]
pub struct LoopDecision {
    /// The loop.
    pub l: LoopRef,
    /// Verdict with kill/cover analysis applied (live edges only).
    pub post: LoopVerdict,
    /// Verdict as standard analysis would give it (every edge live).
    pub pre: LoopVerdict,
}

impl LoopDecision {
    /// Parallelizable only thanks to kill analysis.
    pub fn newly_parallelizable(&self) -> bool {
        self.post.parallelizable() && !self.pre.parallelizable()
    }
}

/// Decides every loop of the graph's program, in [`program_loops`]
/// order (source order, outer before inner).
pub fn decide_loops<'a>(graph: &DepGraph<'a>) -> Vec<LoopDecision> {
    program_loops(graph.info())
        .into_iter()
        .map(|l| {
            let post = graph.loop_verdict(&l, KillView::PostKill);
            let pre = graph.loop_verdict(&l, KillView::PreKill);
            LoopDecision { l, post, pre }
        })
        .collect()
}

/// Aggregate counts over one program's loop decisions — also the unit
/// the corpus-level table sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelizeSummary {
    /// Total loops examined.
    pub loops: usize,
    /// Loops parallelizable with kill analysis (outright or after
    /// privatization).
    pub parallel: usize,
    /// Of those, loops parallel as written (no carried dependence).
    pub outright: usize,
    /// Loops parallelizable even without kill analysis.
    pub pre_parallel: usize,
    /// Loops parallelizable *only* with kill analysis — the delta the
    /// paper is about.
    pub newly: usize,
}

impl ParallelizeSummary {
    /// Tallies a slice of decisions.
    pub fn of(decisions: &[LoopDecision]) -> ParallelizeSummary {
        let mut s = ParallelizeSummary::default();
        for d in decisions {
            s.loops += 1;
            if d.post.parallelizable() {
                s.parallel += 1;
            }
            if d.post.outright_parallel() {
                s.outright += 1;
            }
            if d.pre.parallelizable() {
                s.pre_parallel += 1;
            }
            if d.newly_parallelizable() {
                s.newly += 1;
            }
        }
        s
    }

    /// Adds another summary's counts (for corpus totals).
    pub fn add(&mut self, other: &ParallelizeSummary) {
        self.loops += other.loops;
        self.parallel += other.parallel;
        self.outright += other.outright;
        self.pre_parallel += other.pre_parallel;
        self.newly += other.newly;
    }
}

impl fmt::Display for ParallelizeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loops={} parallelizable={} (outright={}, privatized={}) \
             without-kills={} newly-parallelizable={}",
            self.loops,
            self.parallel,
            self.outright,
            self.parallel - self.outright,
            self.pre_parallel,
            self.newly
        )
    }
}

/// The annotation line for one decision (without the `!$ ` marker).
fn verdict_line(graph: &DepGraph<'_>, d: &LoopDecision) -> String {
    if d.post.parallelizable() {
        let mut line = String::from("PARALLELIZABLE");
        let arrays = d.post.privatize.as_ref().expect("parallelizable");
        if !arrays.is_empty() {
            let names: Vec<String> = arrays.iter().map(|a| a.to_uppercase()).collect();
            line.push_str(" after privatizing ");
            line.push_str(&names.join(", "));
        }
        if d.newly_parallelizable() {
            line.push_str(" (unlocked by kill analysis)");
        }
        line
    } else {
        let blockers = graph.blockers(&d.post, &d.l, KillView::PostKill);
        let mut parts: Vec<String> = blockers
            .iter()
            .take(MAX_BLOCKERS_SHOWN)
            .map(|&i| graph.edges()[i].describe())
            .collect();
        if blockers.len() > MAX_BLOCKERS_SHOWN {
            parts.push(format!("+{} more", blockers.len() - MAX_BLOCKERS_SHOWN));
        }
        format!("sequential: blocked by {}", parts.join("; "))
    }
}

/// Renders the full `--parallelize` report for one program: annotated
/// source, surviving-dependence DOT graph, and summary line. The exact
/// same string is produced by the one-shot CLI, each `--corpus` section
/// and the server `parallelize` op — byte-identity across the three is
/// regression-gated in CI.
pub fn render_parallelize_report(program: &Program, graph: &DepGraph<'_>) -> String {
    let decisions = decide_loops(graph);
    let mut ann = Annotations::new();
    for d in &decisions {
        ann.push(&d.l.path, verdict_line(graph, d));
    }
    let mut out = render_annotated(program, &ann);
    out.push_str("\ndependence graph (surviving dependences):\n");
    out.push_str(&to_dot(
        graph,
        &DotOptions {
            antis: true,
            outputs: true,
            dead: false,
        },
    ));
    let summary = ParallelizeSummary::of(&decisions);
    out.push_str(&format!("\nparallelize summary: {summary}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_program;
    use crate::config::Config;
    use tiny::ProgramInfo;

    fn run(src: &str) -> (Program, ProgramInfo, crate::Analysis) {
        let program = Program::parse(src).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let analysis = analyze_program(&info, &Config::extended()).unwrap();
        (program, info, analysis)
    }

    #[test]
    fn example_2_inner_loop_is_newly_parallelizable() {
        // Example 2 of the paper: standard analysis sees a carried flow
        // on A in the L2 loop; kill analysis proves it dead.
        let (_, info, a) = run(tiny::corpus::EXAMPLE_2);
        let g = DepGraph::new(&info, &a);
        let decisions = decide_loops(&g);
        let s = ParallelizeSummary::of(&decisions);
        assert_eq!(s.newly, 1, "{decisions:?}");
        let newly: Vec<&LoopDecision> = decisions
            .iter()
            .filter(|d| d.newly_parallelizable())
            .collect();
        assert_eq!(newly[0].l.var, "L1");
    }

    #[test]
    fn summary_counts_are_consistent() {
        for entry in tiny::corpus::all() {
            let (_, info, a) = run(entry.source);
            let g = DepGraph::new(&info, &a);
            let s = ParallelizeSummary::of(&decide_loops(&g));
            assert!(s.outright <= s.parallel, "{}", entry.name);
            assert!(s.pre_parallel <= s.parallel, "{}: kills only help", entry.name);
            assert_eq!(s.newly, s.parallel - s.pre_parallel, "{}", entry.name);
            assert!(s.parallel <= s.loops, "{}", entry.name);
        }
    }

    #[test]
    fn report_sections_render() {
        let (p, info, a) = run(tiny::corpus::EXAMPLE_2);
        let g = DepGraph::new(&info, &a);
        let report = render_parallelize_report(&p, &g);
        assert!(report.contains("!$ PARALLELIZABLE"), "{report}");
        assert!(report.contains("(unlocked by kill analysis)"), "{report}");
        assert!(
            report.contains("dependence graph (surviving dependences):\ndigraph"),
            "{report}"
        );
        assert!(report.contains("\nparallelize summary: loops="), "{report}");
    }

    #[test]
    fn sequential_loops_name_their_blockers() {
        let (p, info, a) = run(tiny::corpus::SEIDEL);
        let g = DepGraph::new(&info, &a);
        let report = render_parallelize_report(&p, &g);
        assert!(report.contains("!$ sequential: blocked by"), "{report}");
        assert!(report.contains(" on A"), "{report}");
    }

    #[test]
    fn blocker_list_is_capped() {
        // Craft a loop with many carried flows on distinct arrays.
        let mut body = String::new();
        for c in ["a", "b", "c", "d", "e", "f"] {
            body.push_str(&format!("{c}(i) := {c}(i - 1);\n"));
        }
        let src = format!("sym n;\nfor i := 2 to n do\n{body}endfor\n");
        let (p, info, a) = run(&src);
        let g = DepGraph::new(&info, &a);
        let report = render_parallelize_report(&p, &g);
        assert!(report.contains("+2 more"), "{report}");
    }
}
