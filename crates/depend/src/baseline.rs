//! Baseline dependence tests: the GCD test and a Banerjee-style bounds
//! test, the "methods currently in use" the paper improves on. These are
//! *approximate*: they answer "maybe" unless they can prove independence,
//! and they cannot express the kill/cover/refinement questions at all —
//! which is precisely the paper's point.

use omega::int::{self, Coef};
use tiny::ast::{name_key, Affine};
use tiny::sema::StmtInfo;
use tiny::Access;

use crate::dep::AccessSite;
use crate::pairs::access_of;

/// A baseline test's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The accesses can never reference the same element.
    Independent,
    /// A dependence may exist (the test could not disprove it).
    Maybe,
}

/// The classic GCD test on one subscript pair: `Σ aᵢ·iᵢ − Σ bⱼ·jⱼ = c` has
/// integer solutions only if `gcd(aᵢ, bⱼ) | c`. Symbolic terms make the
/// test inapplicable for that dimension (returns `Maybe`).
pub fn gcd_test(src_sub: &Affine, dst_sub: &Affine, loop_vars: &[String]) -> Verdict {
    let diff = src_sub.sub(dst_sub);
    let mut g: Coef = 0;
    for (name, coef) in &diff.terms {
        if loop_vars.iter().any(|v| v == name) {
            g = int::gcd(g, *coef);
        } else {
            // Symbolic coefficient: cannot conclude.
            return Verdict::Maybe;
        }
    }
    if g == 0 {
        return if diff.constant != 0 {
            Verdict::Independent
        } else {
            Verdict::Maybe
        };
    }
    if diff.constant % g != 0 {
        Verdict::Independent
    } else {
        Verdict::Maybe
    }
}

/// A Banerjee-style bounds test: evaluates the minimum and maximum of
/// `src_sub − dst_sub` over the (rectangular, constant-bounded hull of
/// the) iteration spaces; if 0 lies outside, the accesses are independent.
/// Loops with symbolic or non-rectangular bounds contribute `(-∞, +∞)`.
pub fn banerjee_test(
    src_sub: &Affine,
    dst_sub: &Affine,
    src: &StmtInfo,
    dst: &StmtInfo,
) -> Verdict {
    let mut lo: i128 = 0;
    let mut hi: i128 = 0;
    let mut unbounded = false;

    let mut contribute = |coef: i64, bounds: Option<(i64, i64)>| match bounds {
        Some((l, h)) => {
            if coef >= 0 {
                lo += coef as i128 * l as i128;
                hi += coef as i128 * h as i128;
            } else {
                lo += coef as i128 * h as i128;
                hi += coef as i128 * l as i128;
            }
        }
        None => unbounded = true,
    };

    let diff_const = src_sub.constant - dst_sub.constant;
    for (name, &coef) in &src_sub.terms {
        if let Some(b) = const_bounds(src, name) {
            contribute(coef, Some(b));
        } else if src
            .loops
            .iter()
            .any(|l| name_key(&l.var) == *name)
        {
            contribute(coef, None);
        } else {
            // Symbolic constant: unknown value.
            contribute(coef, None);
        }
    }
    for (name, &coef) in &dst_sub.terms {
        let base = name.trim_end_matches('\'');
        if let Some(b) = const_bounds(dst, base) {
            contribute(-coef, Some(b));
        } else {
            contribute(-coef, None);
        }
    }
    if unbounded {
        return Verdict::Maybe;
    }
    if (lo + diff_const as i128) > 0 || (hi + diff_const as i128) < 0 {
        Verdict::Independent
    } else {
        Verdict::Maybe
    }
}

/// Constant rectangular bounds of a loop variable, when both bound pieces
/// are single constants.
fn const_bounds(stmt: &StmtInfo, var_key: &str) -> Option<(i64, i64)> {
    let l = stmt.loops.iter().find(|l| name_key(&l.var) == var_key)?;
    let lows = l.lower.as_ref()?;
    let ups = l.upper.as_ref()?;
    if lows.len() != 1 || ups.len() != 1 || !lows[0].is_constant() || !ups[0].is_constant() {
        return None;
    }
    Some((lows[0].constant, ups[0].constant))
}

/// Runs both baseline tests on every affine dimension of an access pair.
/// `Independent` when any dimension is proven independent.
pub fn baseline_pair_test(
    src: &StmtInfo,
    src_site: AccessSite,
    dst: &StmtInfo,
    dst_site: AccessSite,
) -> Verdict {
    let a = access_of(src, src_site);
    let b = access_of(dst, dst_site);
    if name_key(&a.array) != name_key(&b.array) {
        return Verdict::Independent;
    }
    // The two sides are distinct statement instances: rename the
    // destination's loop variables so `a(i)` vs `a(i-1)` compares
    // `i_src` against `i_dst - 1`, not `i` against itself.
    let mut loop_vars: Vec<String> = src.loops.iter().map(|l| name_key(&l.var)).collect();
    loop_vars.extend(dst.loops.iter().map(|l| format!("{}'", name_key(&l.var))));
    let rename = |aff: &Affine, stmt: &StmtInfo| -> Affine {
        let mut out = Affine::constant(aff.constant);
        for (name, coef) in &aff.terms {
            if stmt.loops.iter().any(|l| name_key(&l.var) == *name) {
                out.add_term(&format!("{name}'"), *coef);
            } else {
                out.add_term(name, *coef);
            }
        }
        out
    };
    for (sa, sb) in subscript_affines(a, src).iter().zip(subscript_affines(b, dst)) {
        let (Some(sa), Some(sb)) = (sa, &sb) else { continue };
        let sb = &rename(sb, dst);
        if gcd_test(sa, sb, &loop_vars) == Verdict::Independent {
            return Verdict::Independent;
        }
        if banerjee_test(sa, sb, src, dst) == Verdict::Independent {
            return Verdict::Independent;
        }
    }
    Verdict::Maybe
}

fn subscript_affines(acc: &Access, stmt: &StmtInfo) -> Vec<Option<Affine>> {
    let _ = stmt;
    // Loop variables and free scalars (assumed symbolic) are both
    // acceptable in a baseline subscript expression.
    let is_scalar = |_: &str| true;
    acc.subs
        .iter()
        .map(|s| tiny::sema::affine_of(s, &is_scalar))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn stmts(src: &str) -> tiny::ProgramInfo {
        analyze(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn gcd_disproves_odd_even() {
        // a(2i) vs a(2i+1): gcd 2 does not divide 1.
        let info = stmts(
            "sym n;
             for i := 1 to n do a(2*i) := a(2*i+1); endfor",
        );
        let s = &info.stmts[0];
        let v = baseline_pair_test(s, AccessSite::Write, s, AccessSite::Read(0));
        assert_eq!(v, Verdict::Independent);
    }

    #[test]
    fn gcd_cannot_disprove_unit_stride() {
        let info = stmts("sym n; for i := 1 to n do a(i) := a(i-1); endfor");
        let s = &info.stmts[0];
        let v = baseline_pair_test(s, AccessSite::Write, s, AccessSite::Read(0));
        assert_eq!(v, Verdict::Maybe);
    }

    #[test]
    fn banerjee_disproves_disjoint_constant_ranges() {
        // a(i) for i in 1..10 vs a(i+100): difference range excludes 0.
        let info = stmts("for i := 1 to 10 do a(i) := a(i+100); endfor");
        let s = &info.stmts[0];
        let v = baseline_pair_test(s, AccessSite::Write, s, AccessSite::Read(0));
        assert_eq!(v, Verdict::Independent);
    }

    #[test]
    fn banerjee_gives_up_on_symbolic_bounds() {
        // The Omega test proves this independent (write 1..n, read
        // n+1..2n); the baseline cannot.
        let info = stmts(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := n+1 to 2*n do x := a(i); endfor",
        );
        let v = baseline_pair_test(
            info.stmt(1),
            AccessSite::Write,
            info.stmt(2),
            AccessSite::Read(0),
        );
        assert_eq!(v, Verdict::Maybe, "baseline is conservative here");
    }

    #[test]
    fn different_arrays_are_independent() {
        let info = stmts("for i := 1 to 10 do a(i) := b(i); endfor");
        let s = &info.stmts[0];
        let v = baseline_pair_test(s, AccessSite::Write, s, AccessSite::Read(0));
        assert_eq!(v, Verdict::Independent);
    }
}
