//! Building Omega problems from tiny programs: iteration spaces,
//! subscript equality, and execution-order constraints.

use std::collections::{BTreeMap, BTreeSet};

use omega::{LinExpr, Problem, VarId, VarKind};
use tiny::ast::{name_key, Affine, Expr, RelOp};
use tiny::sema::StmtInfo;
use tiny::Access;

use crate::error::{Error, Result};

/// A constraint space for one analysis question: symbolic constants plus
/// one iteration-variable vector per participating statement.
///
/// All problems built from one `Space` share a variable table, so the
/// Omega test's [`implies`](omega::implies) and [`gist`](omega::gist) can
/// combine them directly.
#[derive(Debug, Clone)]
pub struct Space {
    template: Problem,
    sym_vars: BTreeMap<String, VarId>,
}

/// The iteration variables bound for one statement within a [`Space`].
#[derive(Debug, Clone)]
pub struct StmtVars {
    /// One variable per enclosing loop, outermost first.
    pub iters: Vec<VarId>,
    /// Canonical loop-variable name → space variable.
    pub bindings: BTreeMap<String, VarId>,
}

impl Space {
    /// Creates a space with one symbolic variable per program symbol.
    pub fn new(syms: &BTreeSet<String>) -> Space {
        let mut template = Problem::new();
        let mut sym_vars = BTreeMap::new();
        for s in syms {
            let v = template.add_var(s.clone(), VarKind::Symbolic);
            sym_vars.insert(s.clone(), v);
        }
        Space {
            template,
            sym_vars,
        }
    }

    /// Binds iteration variables for `stmt`, named `prefix1..prefixN`
    /// (matching the paper's `i`, `j`, `k` vectors).
    pub fn bind_stmt(&mut self, prefix: &str, stmt: &StmtInfo) -> StmtVars {
        let mut iters = Vec::with_capacity(stmt.loops.len());
        let mut bindings = BTreeMap::new();
        for (idx, l) in stmt.loops.iter().enumerate() {
            let v = self
                .template
                .add_var(format!("{prefix}{}", idx + 1), VarKind::Input);
            iters.push(v);
            bindings.insert(name_key(&l.var), v);
        }
        StmtVars { iters, bindings }
    }

    /// Adds an extra scalar variable (used by the symbolic analysis for
    /// occurrence variables).
    pub fn add_symbolic(&mut self, name: impl Into<String>) -> VarId {
        let name = name.into();
        let v = self.template.add_var(name.clone(), VarKind::Symbolic);
        self.sym_vars.insert(name, v);
        v
    }

    /// A fresh, constraint-free problem over this space.
    pub fn problem(&self) -> Problem {
        self.template.clone()
    }

    /// The variable for a symbolic constant, if present.
    pub fn sym(&self, name: &str) -> Option<VarId> {
        self.sym_vars.get(&name_key(name)).copied()
    }

    /// All symbolic variables.
    pub fn sym_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.sym_vars.values().copied()
    }

    /// Translates a frontend affine expression into a [`LinExpr`], given a
    /// statement's loop-variable bindings. Returns `None` if some name is
    /// neither a bound loop variable nor a symbolic constant (an opaque
    /// term leaked through).
    pub fn linexpr(&self, aff: &Affine, vars: &StmtVars) -> Option<LinExpr> {
        let mut e = LinExpr::constant_expr(aff.constant);
        for (name, coef) in &aff.terms {
            let v = vars
                .bindings
                .get(name)
                .copied()
                .or_else(|| self.sym_vars.get(name).copied())?;
            e.add_coef(v, *coef).ok()?;
        }
        Some(e)
    }

    /// Adds the iteration-space constraints of `stmt` to `p` over the
    /// bound variables `vars`: every affine lower/upper bound piece plus
    /// stride constraints for non-unit steps. Opaque bound pieces are
    /// skipped (a sound over-approximation of the iteration space).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn add_iteration_space(
        &self,
        p: &mut Problem,
        stmt: &StmtInfo,
        vars: &StmtVars,
    ) -> Result<()> {
        for (idx, l) in stmt.loops.iter().enumerate() {
            let iv = vars.iters[idx];
            if let Some(lowers) = &l.lower {
                for piece in lowers {
                    if let Some(e) = self.linexpr(piece, vars) {
                        p.constrain_ge(&LinExpr::var(iv), &e)
                            .map_err(Error::Solver)?;
                    }
                }
                // Stride: i = lower + step·α, α >= 0 (single-piece lower
                // bounds only; for max() bounds the base is data-dependent).
                if l.step > 1 && lowers.len() == 1 {
                    if let Some(lo) = self.linexpr(&lowers[0], vars) {
                        let alpha = p.add_var(
                            format!("step_{}_{}", idx, p.num_vars()),
                            VarKind::Wildcard,
                        );
                        // i - lo - step*alpha = 0
                        let mut eq = LinExpr::var(iv);
                        eq.add_scaled(-1, &lo).map_err(Error::Solver)?;
                        eq.add_coef(alpha, -l.step).map_err(Error::Solver)?;
                        p.add_eq(eq);
                        p.add_geq(LinExpr::var(alpha));
                    }
                }
            }
            if let Some(uppers) = &l.upper {
                for piece in uppers {
                    if let Some(e) = self.linexpr(piece, vars) {
                        p.constrain_le(&LinExpr::var(iv), &e)
                            .map_err(Error::Solver)?;
                    }
                }
            }
        }
        // Enclosing `if` guards restrict the iteration space further.
        for g in &stmt.guards {
            self.add_guard(p, g, vars)?;
        }
        Ok(())
    }

    /// Adds one `if` guard's constraint when it is affine and conjunctive;
    /// opaque or disjunctive guards (e.g. a negated equality) are skipped,
    /// a sound over-approximation.
    fn add_guard(
        &self,
        p: &mut Problem,
        guard: &tiny::sema::Guard,
        vars: &StmtVars,
    ) -> Result<bool> {
        let (Some(l), Some(r)) = (
            affine_in(&guard.relation.lhs, vars, self),
            affine_in(&guard.relation.rhs, vars, self),
        ) else {
            return Ok(false);
        };
        let op = if guard.negated {
            guard.relation.op.negated()
        } else {
            guard.relation.op
        };
        match op {
            RelOp::Le => p.constrain_le(&l, &r).map_err(Error::Solver)?,
            RelOp::Lt => p.constrain_lt(&l, &r).map_err(Error::Solver)?,
            RelOp::Ge => p.constrain_ge(&l, &r).map_err(Error::Solver)?,
            RelOp::Gt => p.constrain_lt(&r, &l).map_err(Error::Solver)?,
            RelOp::Eq => p.constrain_eq(&l, &r).map_err(Error::Solver)?,
            RelOp::Ne => return Ok(false),
        }
        Ok(true)
    }

    /// Adds `A(i) =ₛᵤᵦ B(j)`: dimension-wise equality of the affine
    /// subscripts. Returns `true` when every dimension was affine; opaque
    /// dimensions are skipped (conservatively treated as possibly equal)
    /// and reported via `false` so the symbolic machinery can follow up.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn add_subscript_equality(
        &self,
        p: &mut Problem,
        a: &Access,
        a_vars: &StmtVars,
        b: &Access,
        b_vars: &StmtVars,
    ) -> Result<bool> {
        let mut all_affine = true;
        for (sa, sb) in a.subs.iter().zip(&b.subs) {
            let fa = affine_in(sa, a_vars, self);
            let fb = affine_in(sb, b_vars, self);
            match (fa, fb) {
                (Some(ea), Some(eb)) => {
                    p.constrain_eq(&ea, &eb).map_err(Error::Solver)?;
                }
                _ => all_affine = false,
            }
        }
        if a.subs.len() != b.subs.len() {
            all_affine = false;
        }
        Ok(all_affine)
    }

    /// Adds an `assume` relation over symbolic constants. Relations that
    /// mention unknown names or use `!=` are skipped (they cannot be added
    /// to a conjunction); returns whether the relation was added.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn add_assumption(
        &self,
        p: &mut Problem,
        rel: &tiny::Relation,
    ) -> Result<bool> {
        let empty = StmtVars {
            iters: vec![],
            bindings: BTreeMap::new(),
        };
        let (Some(l), Some(r)) = (
            affine_in(&rel.lhs, &empty, self),
            affine_in(&rel.rhs, &empty, self),
        ) else {
            return Ok(false);
        };
        match rel.op {
            RelOp::Le => p.constrain_le(&l, &r).map_err(Error::Solver)?,
            RelOp::Lt => p.constrain_lt(&l, &r).map_err(Error::Solver)?,
            RelOp::Ge => p.constrain_ge(&l, &r).map_err(Error::Solver)?,
            RelOp::Gt => p.constrain_lt(&r, &l).map_err(Error::Solver)?,
            RelOp::Eq => p.constrain_eq(&l, &r).map_err(Error::Solver)?,
            RelOp::Ne => return Ok(false),
        }
        Ok(true)
    }

    /// Adds every usable program assumption.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn add_assumptions(
        &self,
        p: &mut Problem,
        assumptions: &[tiny::Relation],
    ) -> Result<()> {
        for rel in assumptions {
            self.add_assumption(p, rel)?;
        }
        Ok(())
    }
}

/// Converts an arbitrary expression to a [`LinExpr`] under a statement's
/// bindings, returning `None` for opaque expressions.
pub fn affine_in(e: &Expr, vars: &StmtVars, space: &Space) -> Option<LinExpr> {
    let is_scalar = |name: &str| {
        let k = name_key(name);
        vars.bindings.contains_key(&k) || space.sym(&k).is_some()
    };
    let aff = tiny::sema::affine_of(e, &is_scalar)?;
    space.linexpr(&aff, vars)
}

/// One conjunctive case of the execution-order predicate `A(i) ≪ B(j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderCase {
    /// Carried at common loop `level` (1-based): equal on levels
    /// `1..level`, strictly increasing at `level`.
    CarriedAt(usize),
    /// Equal on all common loops; valid only when the source is lexically
    /// before the destination.
    LoopIndependent,
}

impl std::fmt::Display for OrderCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderCase::CarriedAt(l) => write!(f, "carried at level {l}"),
            OrderCase::LoopIndependent => write!(f, "loop independent"),
        }
    }
}

/// Enumerates the conjunctive cases of `A(i) ≪ B(j)` for statements with
/// `common` shared loops. `lex_before` states whether A precedes B
/// syntactically.
pub fn order_cases(common: usize, lex_before: bool) -> Vec<OrderCase> {
    let mut cases: Vec<OrderCase> = (1..=common).map(OrderCase::CarriedAt).collect();
    if lex_before {
        cases.push(OrderCase::LoopIndependent);
    }
    cases
}

/// Adds the constraints of one order case over the iteration vectors.
///
/// Generic over [`ProblemLike`](omega::ProblemLike): the analysis applies
/// order cases as deltas over a pair's shared
/// [`PairContext`](omega::PairContext) base.
///
/// # Errors
///
/// Propagates solver errors.
pub fn add_order<P: omega::ProblemLike>(
    p: &mut P,
    case: OrderCase,
    src: &StmtVars,
    dst: &StmtVars,
    common: usize,
) -> Result<()> {
    match case {
        OrderCase::CarriedAt(level) => {
            debug_assert!(level >= 1 && level <= common);
            for l in 0..level - 1 {
                p.constrain_eq(&LinExpr::var(src.iters[l]), &LinExpr::var(dst.iters[l]))
                    .map_err(Error::Solver)?;
            }
            p.constrain_lt(
                &LinExpr::var(src.iters[level - 1]),
                &LinExpr::var(dst.iters[level - 1]),
            )
            .map_err(Error::Solver)?;
        }
        OrderCase::LoopIndependent => {
            for l in 0..common {
                p.constrain_eq(&LinExpr::var(src.iters[l]), &LinExpr::var(dst.iters[l]))
                    .map_err(Error::Solver)?;
            }
        }
    }
    Ok(())
}

/// Common-loop count and lexical order for two statements.
pub fn common_and_order(a: &StmtInfo, b: &StmtInfo) -> (usize, bool) {
    (a.common_loops(b), a.lexically_before(b))
}

/// Convenience: builds the loop contexts needed to check whether a
/// statement's loops are a prefix of another's shared nest (used by the
/// cover-kill shortcut).
pub fn loops_are_common_prefix(inner: &StmtInfo, a: &StmtInfo, b: &StmtInfo) -> bool {
    let c = a.common_loops(b);
    inner.loops.len() <= c && inner.common_loops(a) == inner.loops.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn setup(src: &str) -> (tiny::ProgramInfo, Space) {
        let p = Program::parse(src).unwrap();
        let info = analyze(&p).unwrap();
        let space = Space::new(&info.syms);
        (info, space)
    }

    #[test]
    fn iteration_space_triangular() {
        let (info, mut space) =
            setup("for i := 1 to n do for j := i to m do a(i,j) := 0; endfor endfor");
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut p = space.problem();
        space.add_iteration_space(&mut p, stmt, &vars).unwrap();
        // Constraints: i >= 1, i <= n, j >= i, j <= m.
        assert_eq!(p.geqs().len(), 4);
        // n=5, m=5: (i,j) = (2,3) ok; (3,2) not.
        let n = space.sym("n").unwrap();
        let m = space.sym("m").unwrap();
        let mut vals = vec![0i64; p.num_vars()];
        vals[n.index()] = 5;
        vals[m.index()] = 5;
        vals[vars.iters[0].index()] = 2;
        vals[vars.iters[1].index()] = 3;
        assert!(p.satisfies(&vals));
        vals[vars.iters[0].index()] = 3;
        vals[vars.iters[1].index()] = 2;
        assert!(!p.satisfies(&vals));
    }

    #[test]
    fn max_bounds_become_two_constraints() {
        let (info, mut space) = setup(
            "for j := 0 to n do for i := max(-m, -j) to -1 do a(i,j) := 0; endfor endfor",
        );
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut p = space.problem();
        space.add_iteration_space(&mut p, stmt, &vars).unwrap();
        // j: 2 constraints; i: 2 lower pieces + 1 upper = 3.
        assert_eq!(p.geqs().len(), 5);
    }

    #[test]
    fn subscript_equality_affine() {
        let (info, mut space) = setup(
            "for i := 2 to n do a(i) := a(i-1); endfor",
        );
        let stmt = &info.stmts[0];
        let wv = space.bind_stmt("i", stmt);
        let rv = space.bind_stmt("j", stmt);
        let mut p = space.problem();
        let exact = space
            .add_subscript_equality(&mut p, &stmt.write, &wv, &stmt.reads[0], &rv)
            .unwrap();
        assert!(exact);
        assert_eq!(p.eqs().len(), 1);
        // i = j - 1 is the equality.
        let e = p.eqs()[0].expr();
        assert_eq!(e.coef(wv.iters[0]) + e.coef(rv.iters[0]), 0);
    }

    #[test]
    fn opaque_subscripts_flagged() {
        let (info, mut space) = setup("for i := 1 to n do a(q(i)) := a(i); endfor");
        let stmt = &info.stmts[0];
        let wv = space.bind_stmt("i", stmt);
        let rv = space.bind_stmt("j", stmt);
        let mut p = space.problem();
        let exact = space
            .add_subscript_equality(&mut p, &stmt.write, &wv, &stmt.reads[1], &rv)
            .unwrap();
        assert!(!exact, "q(i) is opaque");
        assert!(p.eqs().is_empty());
    }

    #[test]
    fn order_cases_enumeration() {
        assert_eq!(
            order_cases(2, true),
            vec![
                OrderCase::CarriedAt(1),
                OrderCase::CarriedAt(2),
                OrderCase::LoopIndependent
            ]
        );
        assert_eq!(order_cases(0, false), vec![]);
        assert_eq!(order_cases(0, true), vec![OrderCase::LoopIndependent]);
    }

    #[test]
    fn order_constraints_carried() {
        let (info, mut space) = setup(
            "for i := 1 to n do for j := 1 to n do a(i,j) := a(i,j); endfor endfor",
        );
        let stmt = &info.stmts[0];
        let sv = space.bind_stmt("i", stmt);
        let dv = space.bind_stmt("j", stmt);
        let mut p = space.problem();
        add_order(&mut p, OrderCase::CarriedAt(2), &sv, &dv, 2).unwrap();
        // i1 = j1 and i2 < j2.
        let mut vals = vec![0i64; p.num_vars()];
        vals[sv.iters[0].index()] = 3;
        vals[sv.iters[1].index()] = 4;
        vals[dv.iters[0].index()] = 3;
        vals[dv.iters[1].index()] = 5;
        assert!(p.satisfies(&vals));
        vals[dv.iters[1].index()] = 4;
        assert!(!p.satisfies(&vals));
        vals[dv.iters[0].index()] = 4;
        assert!(!p.satisfies(&vals));
    }

    #[test]
    fn assumptions_added() {
        let (info, space) = setup("sym n, m; assume 50 <= n <= 100; a(n) := a(m);");
        let mut p = space.problem();
        space.add_assumptions(&mut p, &info.assumptions).unwrap();
        assert_eq!(p.geqs().len(), 2);
        let n = space.sym("n").unwrap();
        let mut vals = vec![0i64; p.num_vars()];
        vals[n.index()] = 75;
        assert!(p.satisfies(&vals));
        vals[n.index()] = 101;
        assert!(!p.satisfies(&vals));
    }

    #[test]
    fn stride_constraints_for_stepped_loops() {
        let (info, mut space) = setup("for i := 1 to n step 3 do a(i) := 0; endfor");
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut p = space.problem();
        space.add_iteration_space(&mut p, stmt, &vars).unwrap();
        // i ∈ {1, 4, 7, …}: pin i and check satisfiability.
        let n = space.sym("n").unwrap();
        for (iv, expect) in [(1, true), (2, false), (4, true), (6, false), (7, true)] {
            let mut q = p.clone();
            q.add_eq(LinExpr::var(vars.iters[0]).plus_const(-iv));
            q.add_eq(LinExpr::var(n).plus_const(-10));
            assert_eq!(q.is_satisfiable().unwrap(), expect, "i = {iv}");
        }
    }
}
