//! Refining dependence distances (§4.4).
//!
//! A flow dependence's distance vector can be *refined* to a subset `D`
//! when every destination iteration that receives the dependence also
//! receives it from a source within `D`; flows outside `D` are then dead
//! (an intervening `D`-write overwrites the value first). `D` is generated
//! by fixing the distance to its minimum, loop by loop from the outermost
//! (the minimum distance selects the *most recent* source, which is what
//! makes the simplified test of §4.4 sound).
//!
//! As an extension beyond the paper's generator (which, as the paper
//! notes, "will not automatically find the partial refinement in
//! Example 5"), a failed exact fix optionally retries with the width-2
//! range `[min, min+1]`, verified through the exact disjunctive test.

use omega::{Budget, DeltaProblem, LinExpr, PairContext, Problem, ProblemLike};
use tiny::ProgramInfo;

use crate::config::Config;
use crate::dep::{DepCase, Dependence};
use crate::dir::{range_of, DirEntry};
use crate::error::Result;
use crate::logic::implies_union;
use crate::pairs::{access_of, executes_before};
use crate::space::{add_order, OrderCase, Space, StmtVars};

/// What refinement did, for the statistics of Figure 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineOutcome {
    /// Whether the dependence vector changed.
    pub changed: bool,
    /// Whether the Omega test ran a general (implication) test.
    pub consulted_omega: bool,
    /// Whether the dependence was split into several vectors during
    /// testing (more than one restraint-vector case examined).
    pub split: bool,
}

/// Attempts to refine `dep` in place. `src_has_self_output` feeds the
/// §4.5 quick test: without a self-output dependence on the source there
/// is at most one write per element, so refinement is impossible.
///
/// # Errors
///
/// Propagates solver errors.
pub fn refine_dependence(
    info: &ProgramInfo,
    dep: &mut Dependence,
    src_has_self_output: bool,
    config: &Config,
    budget: &mut Budget,
) -> Result<RefineOutcome> {
    let mut out = RefineOutcome::default();
    if !config.refine
        || dep.common == 0
        || dep.cases.is_empty()
        || dep.cases.iter().any(|c| !c.exact_subscripts)
    {
        return Ok(out);
    }
    if config.quick_tests && !src_has_self_output {
        return Ok(out);
    }
    out.split = dep.cases.len() > 1;

    let src = info.stmt(dep.src.label);
    let dst = info.stmt(dep.dst.label);
    let src_acc = access_of(src, dep.src.site);
    let dst_acc = access_of(dst, dep.dst.site);

    // Test space: i = original source instance, k = destination,
    // j = candidate more-recent source instance.
    let mut space = Space::new(&syms_of(info));
    let i_vars = space.bind_stmt("i", src);
    let k_vars = space.bind_stmt("k", dst);
    let j_vars = space.bind_stmt("j", src);

    // Premises: one conjunction per live order case, projected onto
    // (k, Sym).
    let keep: Vec<omega::VarId> = k_vars
        .iters
        .iter()
        .copied()
        .chain(space.sym_vars())
        .collect();
    // The premise base (everything but the order case) is shared by all
    // cases: canonicalize it once and add each order as a delta.
    let mut pbase = space.problem();
    space.add_iteration_space(&mut pbase, src, &i_vars)?;
    space.add_iteration_space(&mut pbase, dst, &k_vars)?;
    space.add_subscript_equality(&mut pbase, src_acc, &i_vars, dst_acc, &k_vars)?;
    space.add_assumptions(&mut pbase, &info.assumptions)?;
    let pctx = PairContext::new(pbase, budget);
    let mut premises = Vec::new();
    for case in &dep.cases {
        let mut p = pctx.derive();
        add_order(&mut p, case.order, &i_vars, &k_vars, dep.common)?;
        let proj = p.project_with(&keep, budget)?;
        if !proj.is_exact() {
            // A splintered premise cannot be handled conjunctively; give
            // up on refinement for this dependence (conservative).
            return Ok(out);
        }
        premises.push((case.order, p, proj.dark().clone()));
    }

    // Witness base for the refinement test: j ∈ [A] with subscripts
    // matching B(k); candidate distances and order are added per query.
    let mut wbase = space.problem();
    space.add_iteration_space(&mut wbase, src, &j_vars)?;
    space.add_subscript_equality(&mut wbase, src_acc, &j_vars, dst_acc, &k_vars)?;
    let wctx = PairContext::new(wbase, budget);

    // Generate D by fixing minimum distances, outermost first.
    let mut prefix: Vec<DirEntry> = Vec::new();
    'levels: for level in 0..dep.common {
        // Minimum possible distance at `level` given the fixed prefix.
        let mut min_d: Option<i64> = None;
        for (_, full, _) in &premises {
            let mut q = full.clone();
            add_prefix_constraints(&mut q, &prefix, &i_vars, &k_vars)?;
            let mut d_expr = LinExpr::var(k_vars.iters[level]);
            d_expr
                .add_coef(i_vars.iters[level], -1)?;
            if let Some(entry) = range_of(&q, &d_expr, budget)? {
                match entry.lo {
                    None => break 'levels, // unbounded below: cannot fix
                    Some(lo) => min_d = Some(min_d.map_or(lo, |m: i64| m.min(lo))),
                }
            }
        }
        let Some(min_d) = min_d else { break };

        // Candidate: exact fix at this level.
        let mut candidate = prefix.clone();
        candidate.push(DirEntry::exact(min_d));
        out.consulted_omega = true;
        if refinement_holds(
            &wctx, src, dst, &j_vars, &k_vars, dep, &candidate, &keep, &premises, config, budget,
        )? {
            prefix = candidate;
            continue;
        }
        // Extension: widen to [min, min+1] and stop on success.
        if config.widen_refinement {
            let mut widened = prefix.clone();
            widened.push(DirEntry {
                lo: Some(min_d),
                hi: Some(min_d + 1),
            });
            if refinement_holds(
                &wctx, src, dst, &j_vars, &k_vars, dep, &widened, &keep, &premises, config,
                budget,
            )? {
                prefix = widened;
            }
        }
        break;
    }

    if prefix.is_empty() {
        return Ok(out);
    }

    // Apply: restrict every case to the refined distances; drop cases
    // that become infeasible; recompute summaries.
    let before = dep.summary();
    let mut new_cases: Vec<DepCase> = Vec::new();
    for case in dep.cases.drain(..) {
        let mut dp = case.delta.clone();
        add_distance_constraints(&mut dp, &prefix, &case.src_vars, &case.dst_vars)?;
        if !dp.is_satisfiable_with(budget)? {
            continue; // refined away
        }
        let summary = crate::dir::distance_summary(
            &dp,
            &case.src_vars.iters,
            &case.dst_vars.iters,
            dep.common,
            budget,
        )?;
        let Some(summary) = summary else { continue };
        new_cases.push(DepCase {
            summary,
            problem: dp.to_problem(),
            delta: dp,
            ..case
        });
    }
    dep.cases = new_cases;
    let after = dep.summary();
    if before != after {
        dep.refined = true;
        out.changed = true;
    }
    Ok(out)
}

/// Tests the (simplified) refinement condition of §4.4 for a candidate
/// distance prefix `d`: every premise implies
/// `∃j. j ∈ [A] ∧ A(j) ≪_D B(k) ∧ A(j) =ₛᵤᵦ B(k)`.
#[allow(clippy::too_many_arguments)]
fn refinement_holds(
    wctx: &PairContext,
    src: &tiny::StmtInfo,
    dst: &tiny::StmtInfo,
    j_vars: &StmtVars,
    k_vars: &StmtVars,
    dep: &Dependence,
    d: &[DirEntry],
    keep: &[omega::VarId],
    premises: &[(OrderCase, DeltaProblem, Problem)],
    config: &Config,
    budget: &mut Budget,
) -> Result<bool> {
    // Base of the witness: j ∈ [A], subscripts match, distances fixed.
    let mut base = wctx.derive();
    add_distance_constraints(&mut base, d, j_vars, k_vars)?;

    // Execution order A(j) ≪_D B(k): implied by the distances when the
    // first constrained level is strictly positive; otherwise the
    // remaining levels must carry the order (a union of cases).
    let forward_forced = d
        .iter()
        .find(|e| !(e.lo == Some(0) && e.hi == Some(0)))
        .is_some_and(|e| e.lo.unwrap_or(i64::MIN) >= 1);
    let mut witnesses: Vec<DeltaProblem> = Vec::new();
    if forward_forced {
        witnesses.push(base);
    } else {
        // Remaining carriers: levels below the fixed prefix, plus the
        // loop-independent case when the source executes first.
        for level in d.len() + 1..=dep.common {
            let mut q = base.clone();
            add_order(&mut q, OrderCase::CarriedAt(level), j_vars, k_vars, dep.common)?;
            witnesses.push(q);
        }
        // A width-2 first entry `[0, 1]` can also carry the dependence at
        // its own level with distance exactly 1.
        if let Some(last) = d.last() {
            if last.lo == Some(0) && last.hi == Some(1) {
                let mut q = base.clone();
                let level = d.len(); // 1-based level of the widened entry
                add_order(&mut q, OrderCase::CarriedAt(level), j_vars, k_vars, dep.common)?;
                witnesses.push(q);
            }
        }
        if executes_before(src, dep.src.site, dst, dep.dst.site) {
            let mut q = base.clone();
            add_order(&mut q, OrderCase::LoopIndependent, j_vars, k_vars, dep.common)?;
            witnesses.push(q);
        }
    }

    // Project each witness onto (k, Sym).
    let mut q_projected = Vec::new();
    for w in witnesses {
        let proj = w.project_with(keep, budget)?;
        for piece in proj.into_problems() {
            if !piece.is_known_infeasible() {
                q_projected.push(piece);
            }
        }
    }

    for (_, _, premise) in premises {
        if !implies_union(premise, &q_projected, config.formula_fallback, budget)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Adds `dst_t − src_t = d_t` (or the range form) for every entry of `d`.
fn add_distance_constraints<P: ProblemLike>(
    p: &mut P,
    d: &[DirEntry],
    src_vars: &StmtVars,
    dst_vars: &StmtVars,
) -> Result<()> {
    for (t, entry) in d.iter().enumerate() {
        let mut expr = LinExpr::var(dst_vars.iters[t]);
        expr.add_coef(src_vars.iters[t], -1)?;
        match (entry.lo, entry.hi) {
            (Some(lo), Some(hi)) if lo == hi => {
                p.constrain_eq(&expr, &LinExpr::constant_expr(lo))?;
            }
            (lo, hi) => {
                if let Some(lo) = lo {
                    p.constrain_ge(&expr, &LinExpr::constant_expr(lo))?;
                }
                if let Some(hi) = hi {
                    p.constrain_le(&expr, &LinExpr::constant_expr(hi))?;
                }
            }
        }
    }
    Ok(())
}

/// Prefix constraints during D generation (always exact entries).
fn add_prefix_constraints<P: ProblemLike>(
    p: &mut P,
    prefix: &[DirEntry],
    src_vars: &StmtVars,
    dst_vars: &StmtVars,
) -> Result<()> {
    add_distance_constraints(p, prefix, src_vars, dst_vars)
}

fn syms_of(info: &ProgramInfo) -> std::collections::BTreeSet<String> {
    info.syms.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{AccessSite, DepKind};
    use crate::pairs::build_dependence;
    use tiny::{analyze, Program};

    fn refined_flow(src: &str) -> (Dependence, RefineOutcome) {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let s = &info.stmts[0];
        let mut budget = Budget::default();
        let mut dep = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap()
        .expect("flow dependence");
        let cfg = Config::default();
        let out = refine_dependence(&info, &mut dep, true, &cfg, &mut budget).unwrap();
        (dep, out)
    }

    #[test]
    fn example3_refines_to_0_1() {
        let (dep, out) = refined_flow(tiny::corpus::EXAMPLE_3);
        assert!(out.changed);
        assert!(dep.refined);
        assert_eq!(dep.summary().to_string(), "(0,1)");
        assert_eq!(dep.cases.len(), 1);
    }

    #[test]
    fn example4_trapezoidal_refines_to_0_1() {
        let (dep, _) = refined_flow(tiny::corpus::EXAMPLE_4);
        assert_eq!(dep.summary().to_string(), "(0,1)");
    }

    #[test]
    fn example5_partial_refinement_to_0_1_range() {
        let (dep, _) = refined_flow(tiny::corpus::EXAMPLE_5);
        assert_eq!(dep.summary().to_string(), "(0:1,1)");
    }

    #[test]
    fn example6_coupled_refines_to_1_1() {
        let (dep, _) = refined_flow(tiny::corpus::EXAMPLE_6);
        assert_eq!(dep.summary().to_string(), "(1,1)");
    }

    #[test]
    fn seidel_sweep_refines() {
        // a(i) := a(i-1) + a(i) + a(i+1) under a time loop: the flow from
        // a(i) (same element) refines to the previous time step (1,0).
        let info = analyze(&Program::parse(tiny::corpus::SEIDEL).unwrap()).unwrap();
        let s = &info.stmts[0];
        let mut budget = Budget::default();
        // reads: a(i-1), a(i), a(i+1): index 1 is a(i).
        let mut dep = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(1),
            &mut budget,
        )
        .unwrap()
        .unwrap();
        assert_eq!(dep.summary().to_string(), "(+,0)");
        let cfg = Config::default();
        refine_dependence(&info, &mut dep, true, &cfg, &mut budget).unwrap();
        assert_eq!(dep.summary().to_string(), "(1,0)");
    }

    #[test]
    fn quick_test_skips_single_assignment() {
        // Each element written once: no self-output dep -> refinement
        // skipped without consulting the Omega test.
        let info = analyze(
            &Program::parse("sym n; for i := 2 to n do a(i) := a(i-1); endfor").unwrap(),
        )
        .unwrap();
        let s = &info.stmts[0];
        let mut budget = Budget::default();
        let mut dep = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap()
        .unwrap();
        let cfg = Config::default();
        let out = refine_dependence(&info, &mut dep, false, &cfg, &mut budget).unwrap();
        assert!(!out.consulted_omega);
        assert!(!out.changed);
        assert_eq!(dep.summary().to_string(), "(1)");
    }

    #[test]
    fn disabled_refinement_is_a_no_op() {
        let info = analyze(&Program::parse(tiny::corpus::EXAMPLE_3).unwrap()).unwrap();
        let s = &info.stmts[0];
        let mut budget = Budget::default();
        let mut dep = build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap()
        .unwrap();
        let cfg = Config {
            refine: false,
            ..Config::default()
        };
        let out = refine_dependence(&info, &mut dep, true, &cfg, &mut budget).unwrap();
        assert!(!out.changed);
        assert_eq!(dep.summary().to_string(), "(0+,1)");
    }
}
