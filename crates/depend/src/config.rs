//! Analysis configuration (and ablation switches for the benchmarks).

/// Switches controlling which parts of the extended analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Attempt dependence-distance refinement (§4.4).
    pub refine: bool,
    /// Check for covering dependences (§4.2).
    pub cover: bool,
    /// Run pairwise kill tests (§4.1).
    pub kill: bool,
    /// Apply the quick pre-tests of §4.5 before the general tests.
    pub quick_tests: bool,
    /// Try the range-widening extension that discovers partial
    /// refinements such as Example 5's `(0:1,1)` (the paper's generator
    /// stops where this one widens).
    pub widen_refinement: bool,
    /// Fall back to the exact Presburger-formula test when an implication
    /// with a disjunctive right-hand side fails case-by-case.
    pub formula_fallback: bool,
    /// Also run kill/refinement analysis on output dependences (the
    /// paper notes the techniques apply but its implementation analyzed
    /// flows only — see §4.7: "our changes have no effect on the output
    /// or anti dependences computed").
    pub storage_kills: bool,
    /// Work budget (elementary Omega-test steps) per query.
    pub budget: usize,
    /// Run Omega-test queries on the dense scratch-tableau kernel
    /// ([`omega::SolverOptions::dense_kernel`]). Off runs the
    /// interned-row pipeline instead; reports are byte-identical either
    /// way — the switch exists for the `ablation/tableau_vs_rows`
    /// benchmarks.
    pub dense_kernel: bool,
    /// Resume delta-query memo misses from a checkpointed base tableau
    /// ([`omega::SolverOptions::base_checkpoint`]) instead of re-solving
    /// `base ∧ delta` from scratch. Requires [`Config::dense_kernel`];
    /// reports are byte-identical either way — the switch exists for the
    /// `ablation/checkpoint_vs_scratch` benchmarks and byte-identity CI.
    pub base_checkpoint: bool,
    /// Worker threads for the pair-analysis fan-out; `0` means one per
    /// available core, `1` runs the plain sequential loop. In
    /// [`analyze_corpus`](crate::analyze_corpus) this sizes the shared
    /// two-level pool: programs and their pair batches compete for the
    /// same `threads` workers, never `programs × threads`. Results are
    /// byte-identical at every setting.
    pub threads: usize,
    /// Share a canonical-form memo cache across all Omega queries of one
    /// analysis (see [`omega::SolverCache`]).
    pub memo_cache: bool,
    /// Persist the memo cache to this file: loaded (if present and
    /// readable) before the analysis and saved back after it, so repeat
    /// runs over the same program skip the solves entirely. Corrupt,
    /// stale or version-mismatched files are ignored (the run is simply
    /// cold). Saves are atomic — written to a sibling temp file and
    /// renamed into place — so a crash or a concurrent writer can never
    /// leave a torn file behind. Only meaningful when
    /// [`Config::memo_cache`] is on, and ignored entirely by
    /// [`analyze_program_with_cache`](crate::analyze_program_with_cache),
    /// where the caller (e.g. the `tinydep --serve` daemon) owns the
    /// cache and decides when to load and save it.
    pub cache_file: Option<std::path::PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            refine: true,
            cover: true,
            kill: true,
            quick_tests: true,
            widen_refinement: true,
            formula_fallback: true,
            storage_kills: false,
            budget: omega::DEFAULT_BUDGET,
            dense_kernel: true,
            base_checkpoint: true,
            threads: 1,
            memo_cache: true,
            cache_file: None,
        }
    }
}

impl Config {
    /// The extended analysis of the paper (everything on).
    pub fn extended() -> Config {
        Config::default()
    }

    /// The worker count after resolving `threads == 0` to the number of
    /// available cores.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// "Standard analysis" as benchmarked in Figure 6: dependence
    /// construction and direction vectors only — no refinement, covering
    /// or killing.
    pub fn standard() -> Config {
        Config {
            refine: false,
            cover: false,
            kill: false,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let e = Config::extended();
        assert!(e.refine && e.cover && e.kill);
        let s = Config::standard();
        assert!(!s.refine && !s.cover && !s.kill);
        assert!(s.quick_tests);
    }
}
