//! Terminating dependences (§4.3): a dependence from A to a write B
//! *terminates* A when every location A accesses is subsequently
//! overwritten by B — dependences from A past B are then dead.
//!
//! (Like the paper's implementation, the Figure 3/4 driver does not use
//! termination for flow analysis; it is provided as a first-class API.)

use omega::{Budget, ProblemLike};
use tiny::ProgramInfo;

use crate::config::Config;
use crate::dep::Dependence;
use crate::error::Result;
use crate::logic::implies_union;

/// Checks whether `dep` (from access A to write B) terminates A:
///
/// ```text
/// ∀ i, Sym:  i ∈ [A]  ⇒  ∃ j. j ∈ [B] ∧ A(i) ≪ B(j) ∧ A(i) =ₛᵤᵦ B(j)
/// ```
///
/// # Errors
///
/// Propagates solver errors.
pub fn check_terminating(
    info: &ProgramInfo,
    dep: &Dependence,
    config: &Config,
    budget: &mut Budget,
) -> Result<bool> {
    if dep.cases.is_empty() || dep.cases.iter().any(|c| !c.exact_subscripts) {
        return Ok(false);
    }
    let src = info.stmt(dep.src.label);
    let space = &dep.cases[0].space;
    let src_vars = &dep.cases[0].src_vars;

    let mut premise = space.problem();
    space.add_iteration_space(&mut premise, src, src_vars)?;
    space.add_assumptions(&mut premise, &info.assumptions)?;

    let keep: Vec<omega::VarId> = src_vars
        .iters
        .iter()
        .copied()
        .chain(space.sym_vars())
        .collect();
    let mut witnesses = Vec::new();
    for case in &dep.cases {
        let proj = case.delta.project_with(&keep, budget)?;
        for piece in proj.into_problems() {
            if !piece.is_known_infeasible() {
                witnesses.push(piece);
            }
        }
    }
    implies_union(&premise, &witnesses, config.formula_fallback, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{AccessSite, DepKind};
    use crate::pairs::build_dependence;
    use tiny::{analyze, Program};

    fn terminates(src: &str, a: usize, a_site: AccessSite, b: usize) -> bool {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let mut budget = Budget::default();
        let kind = match a_site {
            AccessSite::Write => DepKind::Output,
            AccessSite::Read(_) => DepKind::Anti,
        };
        let Some(dep) = build_dependence(
            &info,
            kind,
            info.stmt(a),
            a_site,
            info.stmt(b),
            AccessSite::Write,
            &mut budget,
        )
        .unwrap() else {
            return false;
        };
        let cfg = Config::default();
        check_terminating(&info, &dep, &cfg, &mut budget).unwrap()
    }

    #[test]
    fn full_overwrite_terminates() {
        // Write a(1..n), then overwrite a(1..n): output dep terminates
        // the first write.
        assert!(terminates(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := 1 to n do a(i) := 1; endfor",
            1,
            AccessSite::Write,
            2
        ));
    }

    #[test]
    fn partial_overwrite_does_not_terminate() {
        assert!(!terminates(
            "sym n;
             for i := 1 to 2*n do a(i) := 0; endfor
             for i := 1 to n do a(i) := 1; endfor",
            1,
            AccessSite::Write,
            2
        ));
    }

    #[test]
    fn read_terminated_by_later_write() {
        // Every element read is later overwritten (anti dependence
        // terminates the read).
        assert!(terminates(
            "sym n;
             for i := 1 to n do x := a(i); endfor
             for i := 1 to n do a(i) := 0; endfor",
            1,
            AccessSite::Read(0),
            2
        ));
    }
}
