//! Covering dependences (§4.2): a write A covers a read (or write) B when
//! every location B accesses was previously written by A. A covering
//! dependence kills every dependence into B from accesses that must
//! precede A's writes.

use omega::{Budget, ProblemLike};
use tiny::ProgramInfo;

use crate::config::Config;
use crate::dep::Dependence;
use crate::error::Result;
use crate::logic::implies_union;

/// What the covering check did (for Figure 6 statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverOutcome {
    /// Whether the dependence covers its destination.
    pub covering: bool,
    /// Whether a general Omega-test query ran.
    pub consulted_omega: bool,
    /// Whether multiple dependence vectors were examined.
    pub split: bool,
}

/// Checks whether `dep` (from write A to access B) is covering:
///
/// ```text
/// ∀ j, Sym:  j ∈ [B]  ⇒  ∃ i. i ∈ [A] ∧ A(i) ≪ B(j) ∧ A(i) =ₛᵤᵦ B(j)
/// ```
///
/// Sets [`Dependence::covering`] on success.
///
/// # Errors
///
/// Propagates solver errors.
pub fn check_covering(
    info: &ProgramInfo,
    dep: &mut Dependence,
    config: &Config,
    budget: &mut Budget,
) -> Result<CoverOutcome> {
    let mut out = CoverOutcome::default();
    if !config.cover || dep.cases.is_empty() || dep.cases.iter().any(|c| !c.exact_subscripts)
    {
        return Ok(out);
    }
    // §4.5 quick test: a dependence that cannot have distance 0 in some
    // common loop cannot cover the first trip through that loop.
    if config.quick_tests {
        let s = dep.summary();
        if s.0.iter().any(|e| !e.contains_zero()) {
            return Ok(out);
        }
        // The destination's loops below the common nest must also be
        // reachable; a non-common destination loop is fine (the write can
        // still cover all of them), so no further gate here.
    }
    out.consulted_omega = true;
    out.split = dep.cases.len() > 1;

    let dst = info.stmt(dep.dst.label);
    let space = &dep.cases[0].space;
    let dst_vars = &dep.cases[0].dst_vars;

    // Premise: j ∈ [B] plus the user assumptions.
    let mut premise = space.problem();
    space.add_iteration_space(&mut premise, dst, dst_vars)?;
    space.add_assumptions(&mut premise, &info.assumptions)?;

    // Witnesses: each order case of the dependence, with the source
    // instance projected away.
    let keep: Vec<omega::VarId> = dst_vars
        .iters
        .iter()
        .copied()
        .chain(space.sym_vars())
        .collect();
    let mut witnesses = Vec::new();
    for case in &dep.cases {
        // Project through the pair's delta handle: the shared base was
        // canonicalized once when the case was built.
        let proj = case.delta.project_with(&keep, budget)?;
        for piece in proj.into_problems() {
            if !piece.is_known_infeasible() {
                witnesses.push(piece);
            }
        }
    }

    if implies_union(&premise, &witnesses, config.formula_fallback, budget)? {
        dep.covering = true;
        out.covering = true;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::{AccessSite, DepKind};
    use crate::pairs::build_dependence;
    use tiny::{analyze, Program};

    fn cover_of(src: &str, w: usize, r: usize, ridx: usize) -> bool {
        let info = analyze(&Program::parse(src).unwrap()).unwrap();
        let wst = info.stmt(w);
        let rst = info.stmt(r);
        let mut budget = Budget::default();
        let Some(mut dep) = build_dependence(
            &info,
            DepKind::Flow,
            wst,
            AccessSite::Write,
            rst,
            AccessSite::Read(ridx),
            &mut budget,
        )
        .unwrap() else {
            return false;
        };
        let cfg = Config::default();
        check_covering(&info, &mut dep, &cfg, &mut budget)
            .unwrap()
            .covering
    }

    #[test]
    fn example2_write_covers_read() {
        // Paper §4.2: the read of a(L2) (stmt 5) is covered by the write
        // to a(L2-1) (stmt 4).
        assert!(cover_of(tiny::corpus::EXAMPLE_2, 4, 5, 0));
    }

    #[test]
    fn example2_other_writes_do_not_cover() {
        // a(m) (stmt 1) writes one element: no cover.
        assert!(!cover_of(tiny::corpus::EXAMPLE_2, 1, 5, 0));
        // a(L2) (stmt 3) writes 1..n but executes before the read only for
        // iterations with L2 ordering; it does cover? Writes 1..n in the
        // same L1 iteration before the read of 2..n-1: covered range
        // includes all read elements, so it IS covering.
        assert!(cover_of(tiny::corpus::EXAMPLE_2, 3, 5, 0));
    }

    #[test]
    fn full_initialization_covers() {
        assert!(cover_of(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := 1 to n do x := a(i); endfor",
            1,
            2,
            0
        ));
    }

    #[test]
    fn partial_initialization_does_not_cover() {
        assert!(!cover_of(
            "sym n;
             for i := 1 to n do a(2*i) := 0; endfor
             for i := 1 to 2*n do x := a(i); endfor",
            1,
            2,
            0
        ));
    }

    #[test]
    fn carried_writes_do_not_cover_first_iteration() {
        // a(i-1) written before read of a(i): first read iteration sees
        // nothing.
        assert!(!cover_of(
            "sym n;
             for i := 1 to n do
               a(i-1) := 0;
               x := a(i);
             endfor",
            1,
            2,
            0
        ));
    }

    #[test]
    fn cover_disabled_by_config() {
        let info = analyze(
            &Program::parse(
                "sym n;
                 for i := 1 to n do a(i) := 0; endfor
                 for i := 1 to n do x := a(i); endfor",
            )
            .unwrap(),
        )
        .unwrap();
        let mut budget = Budget::default();
        let mut dep = build_dependence(
            &info,
            DepKind::Flow,
            info.stmt(1),
            AccessSite::Write,
            info.stmt(2),
            AccessSite::Read(0),
            &mut budget,
        )
        .unwrap()
        .unwrap();
        let cfg = Config {
            cover: false,
            ..Config::default()
        };
        let out = check_covering(&info, &mut dep, &cfg, &mut budget).unwrap();
        assert!(!out.covering && !out.consulted_omega);
    }
}
