//! Occurrence variables for opaque terms (§5).
//!
//! Index-array references (`Q[L1]`), non-linear terms (`i*j`) and written
//! scalars appearing in subscripts or bounds are modeled by introducing a
//! fresh symbolic variable per *occurrence* of the term, exactly as the
//! paper prescribes: `A[Q[L1]]` contributes a subscript variable `s = L1`
//! and a value variable `Q_s`, and queries are phrased over those.

use omega::{LinExpr, Problem, VarId};
use tiny::ast::{name_key, BinOp, Expr};

use crate::error::Result;
use crate::space::{affine_in, Space, StmtVars};

/// One uninterpreted occurrence introduced while translating an
/// expression.
#[derive(Debug, Clone)]
pub struct Occurrence {
    /// The occurrence's value variable in the space.
    pub var: VarId,
    /// Canonical name of the uninterpreted "array" (index arrays keep
    /// their name; a product `i*j` becomes the pseudo-array `mul`).
    pub array: String,
    /// Argument expressions (affine), one per dimension of the term.
    pub args: Vec<LinExpr>,
    /// Display text, e.g. `Q(i1)` or `i1*j1`.
    pub text: String,
    /// Which side of the pair introduced it (the statement's variable
    /// prefix, e.g. `"i"` or `"j"`).
    pub side: String,
}

/// Collects the occurrences produced by translating expressions for one
/// access pair.
#[derive(Debug, Clone, Default)]
pub struct OccurrenceTable {
    /// All occurrences, in introduction order.
    pub occurrences: Vec<Occurrence>,
}

impl OccurrenceTable {
    /// Occurrences of a given uninterpreted array.
    pub fn of_array<'a>(&'a self, array: &str) -> impl Iterator<Item = &'a Occurrence> {
        let key = name_key(array);
        self.occurrences.iter().filter(move |o| o.array == key)
    }
}

/// Translates an arbitrary expression to a [`LinExpr`] over loop
/// variables, symbolic constants **and occurrence variables**: every
/// opaque subterm (array access, written scalar, product of variables,
/// division) becomes a fresh occurrence.
///
/// `prefix` namespaces the generated variable names (use the statement's
/// iteration-vector prefix so the two sides of a pair stay distinct).
///
/// # Errors
///
/// Propagates solver errors.
pub fn to_linexpr_with_occurrences(
    e: &Expr,
    vars: &StmtVars,
    space: &mut Space,
    table: &mut OccurrenceTable,
    prefix: &str,
) -> Result<LinExpr> {
    // Fast path: fully affine.
    if let Some(l) = affine_in(e, vars, space) {
        return Ok(l);
    }
    match e {
        Expr::Int(n) => Ok(LinExpr::constant_expr(*n)),
        Expr::Var(name) => {
            // A written scalar: an occurrence of the 0-dim "array".
            Ok(LinExpr::var(occurrence(
                space,
                table,
                name,
                Vec::new(),
                name.to_string(),
                prefix,
            )))
        }
        Expr::Call(name, args) => {
            let mut lin_args = Vec::with_capacity(args.len());
            let mut texts = Vec::with_capacity(args.len());
            for a in args {
                lin_args.push(to_linexpr_with_occurrences(a, vars, space, table, prefix)?);
                texts.push(rename_for_display(a, vars));
            }
            let text = format!("{}({})", name, texts.join(","));
            Ok(LinExpr::var(occurrence(
                space, table, name, lin_args, text, prefix,
            )))
        }
        Expr::Neg(inner) => {
            let mut l = to_linexpr_with_occurrences(inner, vars, space, table, prefix)?;
            l.negate();
            Ok(l)
        }
        Expr::Bin(op, l, r) => {
            match op {
                BinOp::Add | BinOp::Sub => {
                    let a = to_linexpr_with_occurrences(l, vars, space, table, prefix)?;
                    let b = to_linexpr_with_occurrences(r, vars, space, table, prefix)?;
                    let sign = if *op == BinOp::Sub { -1 } else { 1 };
                    a.combine(1, sign, &b).map_err(Into::into)
                }
                BinOp::Mul => {
                    // Constant × opaque distributes; variable × variable
                    // becomes the pseudo-array `mul(x, y)` (the paper's
                    // `Q[i, j]` treatment of `i*j`).
                    let ca = affine_in(l, vars, space).filter(|x| x.is_constant());
                    let cb = affine_in(r, vars, space).filter(|x| x.is_constant());
                    if let Some(c) = ca {
                        let mut b =
                            to_linexpr_with_occurrences(r, vars, space, table, prefix)?;
                        b.scale(c.constant())?;
                        return Ok(b);
                    }
                    if let Some(c) = cb {
                        let mut a =
                            to_linexpr_with_occurrences(l, vars, space, table, prefix)?;
                        a.scale(c.constant())?;
                        return Ok(a);
                    }
                    let la = to_linexpr_with_occurrences(l, vars, space, table, prefix)?;
                    let lb = to_linexpr_with_occurrences(r, vars, space, table, prefix)?;
                    let text = format!(
                        "{}*{}",
                        rename_for_display(l, vars),
                        rename_for_display(r, vars)
                    );
                    Ok(LinExpr::var(occurrence(
                        space,
                        table,
                        "mul",
                        vec![la, lb],
                        text,
                        prefix,
                    )))
                }
                BinOp::Div => {
                    let la = to_linexpr_with_occurrences(l, vars, space, table, prefix)?;
                    let lb = to_linexpr_with_occurrences(r, vars, space, table, prefix)?;
                    let text = format!(
                        "{}/{}",
                        rename_for_display(l, vars),
                        rename_for_display(r, vars)
                    );
                    Ok(LinExpr::var(occurrence(
                        space,
                        table,
                        "div",
                        vec![la, lb],
                        text,
                        prefix,
                    )))
                }
            }
        }
    }
}

fn occurrence(
    space: &mut Space,
    table: &mut OccurrenceTable,
    array: &str,
    args: Vec<LinExpr>,
    text: String,
    prefix: &str,
) -> VarId {
    // Reuse an identical occurrence (same array, same argument
    // expressions, same side): a term denotes one value per instance.
    for o in &table.occurrences {
        if o.array == name_key(array) && o.args == args && o.text == text && o.side == prefix
        {
            return o.var;
        }
    }
    let var = space.add_symbolic(format!(
        "{prefix}_{}{}",
        name_key(array),
        table.occurrences.len()
    ));
    table.occurrences.push(Occurrence {
        var,
        array: name_key(array),
        args,
        text,
        side: prefix.to_string(),
    });
    var
}

/// Renders an argument expression for query display. The two sides of a
/// pair are namespaced by the occurrence variable's own prefixed name, so
/// the source text is kept as written.
fn rename_for_display(e: &Expr, _vars: &StmtVars) -> String {
    format!("{e}")
}

/// Known properties of an uninterpreted array that the user may assert in
/// the §5 dialog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayProperty {
    /// Distinct subscripts hold distinct values (e.g. a permutation
    /// array).
    Injective,
    /// Strictly increasing in its (single) argument.
    StrictlyIncreasing,
    /// Strictly decreasing in its (single) argument.
    StrictlyDecreasing,
}

/// Decides whether `problem` remains satisfiable once `property` is
/// assumed for the uninterpreted array behind `occs` — i.e. whether the
/// dependence can still exist after the user's answer.
///
/// The property relates each pair of occurrences through a case split on
/// the order of their arguments; the dependence survives iff some branch
/// is satisfiable.
///
/// # Errors
///
/// Propagates solver errors.
pub fn exists_under_property(
    problem: &Problem,
    occs: &[&Occurrence],
    property: ArrayProperty,
    budget: &mut omega::Budget,
) -> Result<bool> {
    // Build the branch constraints for every unordered pair.
    let mut branches: Vec<Problem> = vec![problem.clone()];
    for a in 0..occs.len() {
        for b in a + 1..occs.len() {
            let (oa, ob) = (occs[a], occs[b]);
            if oa.args.len() != 1 || ob.args.len() != 1 {
                continue; // multi-dim properties not modeled
            }
            let arg_a = &oa.args[0];
            let arg_b = &ob.args[0];
            let mut next = Vec::new();
            for base in &branches {
                for rel in [-1i64, 0, 1] {
                    let mut p = base.clone();
                    // Argument order: arg_a <rel> arg_b.
                    let diff = arg_a.combine(1, -1, arg_b)?;
                    match rel {
                        -1 => p.add_geq(negated_plus(&diff, -1)), // arg_a < arg_b
                        0 => p.add_eq(diff.clone()),
                        _ => {
                            let mut d = diff.clone();
                            d.add_constant(-1)?;
                            p.add_geq(d); // arg_a > arg_b
                        }
                    }
                    // Value consequence of the property.
                    let vdiff = LinExpr::var(oa.var)
                        .combine(1, -1, &LinExpr::var(ob.var))?;
                    match (property, rel) {
                        (_, 0) => p.add_eq(vdiff), // functional consistency
                        (ArrayProperty::Injective, _) => {
                            // v_a != v_b: two sub-branches.
                            let mut lt = p.clone();
                            lt.add_geq(negated_plus(&vdiff, -1)); // v_a < v_b
                            let mut gt = p;
                            let mut d = vdiff.clone();
                            d.add_constant(-1)?;
                            gt.add_geq(d); // v_a > v_b
                            next.push(lt);
                            next.push(gt);
                            continue;
                        }
                        (ArrayProperty::StrictlyIncreasing, -1) => {
                            p.add_geq(negated_plus(&vdiff, -1)); // v_a < v_b
                        }
                        (ArrayProperty::StrictlyIncreasing, _) => {
                            let mut d = vdiff.clone();
                            d.add_constant(-1)?;
                            p.add_geq(d); // v_a > v_b
                        }
                        (ArrayProperty::StrictlyDecreasing, -1) => {
                            let mut d = vdiff.clone();
                            d.add_constant(-1)?;
                            p.add_geq(d);
                        }
                        (ArrayProperty::StrictlyDecreasing, _) => {
                            p.add_geq(negated_plus(&vdiff, -1));
                        }
                    }
                    next.push(p);
                }
            }
            branches = next;
            if branches.len() > 256 {
                // Too many occurrence pairs: stay conservative.
                return Ok(true);
            }
        }
    }
    for b in &branches {
        if b.is_satisfiable_with(budget)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// `-(e) + k`, used to build strict inequalities.
fn negated_plus(e: &LinExpr, k: i64) -> LinExpr {
    let mut n = e.negated();
    n.add_constant(k).expect("small constant");
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn setup(src: &str) -> (tiny::ProgramInfo, Space) {
        let p = Program::parse(src).unwrap();
        let info = analyze(&p).unwrap();
        let space = Space::new(&info.syms);
        (info, space)
    }

    #[test]
    fn index_array_subscript_gets_occurrence() {
        let (info, mut space) = setup("sym n; for i := 1 to n do a(q(i)) := 0; endfor");
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut table = OccurrenceTable::default();
        let lin = to_linexpr_with_occurrences(
            &stmt.write.subs[0],
            &vars,
            &mut space,
            &mut table,
            "i",
        )
        .unwrap();
        assert_eq!(table.occurrences.len(), 1);
        let occ = &table.occurrences[0];
        assert_eq!(occ.array, "q");
        assert_eq!(occ.args.len(), 1);
        assert_eq!(lin.coef(occ.var), 1);
        assert_eq!(occ.text, "q(i)");
    }

    #[test]
    fn affine_combination_of_occurrences() {
        // q(i+1) - 1: one occurrence, result = occ - 1.
        let (info, mut space) =
            setup("sym n; for i := 1 to n do a(q(i+1) - 1) := 0; endfor");
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut table = OccurrenceTable::default();
        let lin = to_linexpr_with_occurrences(
            &stmt.write.subs[0],
            &vars,
            &mut space,
            &mut table,
            "i",
        )
        .unwrap();
        assert_eq!(table.occurrences.len(), 1);
        assert_eq!(lin.constant(), -1);
    }

    #[test]
    fn product_becomes_mul_occurrence() {
        let (info, mut space) = setup(
            "sym n; for i := 1 to n do for j := i to n do a(i*j) := 0; endfor endfor",
        );
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut table = OccurrenceTable::default();
        to_linexpr_with_occurrences(&stmt.write.subs[0], &vars, &mut space, &mut table, "i")
            .unwrap();
        assert_eq!(table.occurrences.len(), 1);
        assert_eq!(table.occurrences[0].array, "mul");
        assert_eq!(table.occurrences[0].args.len(), 2);
    }

    #[test]
    fn identical_occurrences_are_shared() {
        let (info, mut space) =
            setup("sym n; for i := 1 to n do a(q(i) + q(i)) := 0; endfor");
        let stmt = &info.stmts[0];
        let vars = space.bind_stmt("i", stmt);
        let mut table = OccurrenceTable::default();
        let lin = to_linexpr_with_occurrences(
            &stmt.write.subs[0],
            &vars,
            &mut space,
            &mut table,
            "i",
        )
        .unwrap();
        assert_eq!(table.occurrences.len(), 1, "q(i) reused");
        assert_eq!(lin.coef(table.occurrences[0].var), 2);
    }

    #[test]
    fn injective_property_refutes_equal_values_at_distinct_args() {
        // Problem: v1 = v2 (via equality), args s1 = i, s2 = j with i < j.
        let mut space = Space::new(&Default::default());
        let i = space.add_symbolic("i");
        let j = space.add_symbolic("j");
        let v1 = space.add_symbolic("v1");
        let v2 = space.add_symbolic("v2");
        let mut p = space.problem();
        p.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        p.constrain_eq(&LinExpr::var(v1), &LinExpr::var(v2)).unwrap();
        let occ1 = Occurrence {
            var: v1,
            array: "q".into(),
            args: vec![LinExpr::var(i)],
            text: "q(i)".into(),
            side: "i".into(),
        };
        let occ2 = Occurrence {
            var: v2,
            array: "q".into(),
            args: vec![LinExpr::var(j)],
            text: "q(j)".into(),
            side: "j".into(),
        };
        let mut b = omega::Budget::default();
        assert!(!exists_under_property(
            &p,
            &[&occ1, &occ2],
            ArrayProperty::Injective,
            &mut b
        )
        .unwrap());
        // Without the argument-order constraint the equal-args branch
        // survives.
        let mut q = space.problem();
        q.constrain_eq(&LinExpr::var(v1), &LinExpr::var(v2)).unwrap();
        assert!(exists_under_property(
            &q,
            &[&occ1, &occ2],
            ArrayProperty::Injective,
            &mut b
        )
        .unwrap());
    }

    #[test]
    fn strictly_increasing_refutes_offset_equalities() {
        // v1 = v2 with args i < j and Q strictly increasing -> v1 < v2:
        // contradiction.
        let mut space = Space::new(&Default::default());
        let i = space.add_symbolic("i");
        let j = space.add_symbolic("j");
        let v1 = space.add_symbolic("v1");
        let v2 = space.add_symbolic("v2");
        let mut p = space.problem();
        p.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        p.constrain_eq(&LinExpr::var(v1), &LinExpr::var(v2)).unwrap();
        let occ1 = Occurrence {
            var: v1,
            array: "q".into(),
            args: vec![LinExpr::var(i)],
            text: "q(i)".into(),
            side: "i".into(),
        };
        let occ2 = Occurrence {
            var: v2,
            array: "q".into(),
            args: vec![LinExpr::var(j)],
            text: "q(j)".into(),
            side: "j".into(),
        };
        let mut b = omega::Budget::default();
        assert!(!exists_under_property(
            &p,
            &[&occ1, &occ2],
            ArrayProperty::StrictlyIncreasing,
            &mut b
        )
        .unwrap());
        // v1 = v2 - 3 is compatible with strict increase.
        let mut q = space.problem();
        q.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        let mut e = LinExpr::var(v1);
        e.add_coef(v2, -1).unwrap();
        e.add_constant(3).unwrap();
        q.add_eq(e);
        assert!(exists_under_property(
            &q,
            &[&occ1, &occ2],
            ArrayProperty::StrictlyIncreasing,
            &mut b
        )
        .unwrap());
    }
}
