//! Constructing dependences for access pairs: the "standard analysis" of
//! the paper — one conjunctive dependence case per restraint vector
//! (carrier level or loop-independent).

use omega::{Budget, PairContext, ProblemLike};
use tiny::ast::name_key;
use tiny::sema::StmtInfo;
use tiny::Access;

use crate::dep::{AccessRef, AccessSite, DepCase, DepKind, Dependence};
use crate::dir::distance_summary;
use crate::error::Result;
use crate::space::{add_order, order_cases, Space};

/// Whether `src` executes before `dst` within one shared iteration: for
/// distinct statements this is lexical order; within one statement the
/// reads execute before the write.
pub fn executes_before(
    src: &StmtInfo,
    src_site: AccessSite,
    dst: &StmtInfo,
    dst_site: AccessSite,
) -> bool {
    if src.label != dst.label {
        src.lexically_before(dst)
    } else {
        matches!(src_site, AccessSite::Read(_)) && matches!(dst_site, AccessSite::Write)
    }
}

/// Resolves an access site on a statement.
pub fn access_of(stmt: &StmtInfo, site: AccessSite) -> &Access {
    match site {
        AccessSite::Write => &stmt.write,
        AccessSite::Read(i) => &stmt.reads[i],
    }
}

/// Builds the dependence (if any) from `(src, src_site)` to
/// `(dst, dst_site)`, split per restraint vector. Returns `None` when the
/// accesses cannot be to the same memory location in the required order.
///
/// # Errors
///
/// Propagates solver errors.
#[allow(clippy::too_many_arguments)]
pub fn build_dependence(
    info: &tiny::ProgramInfo,
    kind: DepKind,
    src: &StmtInfo,
    src_site: AccessSite,
    dst: &StmtInfo,
    dst_site: AccessSite,
    budget: &mut Budget,
) -> Result<Option<Dependence>> {
    let src_acc = access_of(src, src_site);
    let dst_acc = access_of(dst, dst_site);
    if name_key(&src_acc.array) != name_key(&dst_acc.array) {
        return Ok(None);
    }

    let common = src.common_loops(dst);
    let lex = executes_before(src, src_site, dst, dst_site);

    let mut space = Space::new(&info.syms);
    let src_vars = space.bind_stmt("i", src);
    let dst_vars = space.bind_stmt("j", dst);

    // Base conjunction: iteration spaces, subscript equality, assumptions.
    let mut base = space.problem();
    space.add_iteration_space(&mut base, src, &src_vars)?;
    space.add_iteration_space(&mut base, dst, &dst_vars)?;
    let exact_subscripts =
        space.add_subscript_equality(&mut base, src_acc, &src_vars, dst_acc, &dst_vars)?;
    space.add_assumptions(&mut base, &info.assumptions)?;

    // Canonicalize the shared base once; every order case and every later
    // pass (§4.1–4.4) derives from this context as a constraint delta.
    let ctx = PairContext::new(base, budget);

    match ctx.derive().is_satisfiable_with(budget) {
        Ok(false) => return Ok(None),
        Ok(true) => {}
        // Conservative: keep analyzing as if a dependence may exist.
        Err(omega::Error::TooComplex { .. }) => {}
        Err(e) => return Err(e.into()),
    }

    let mut cases = Vec::new();
    for case in order_cases(common, lex) {
        let mut dp = ctx.derive();
        add_order(&mut dp, case, &src_vars, &dst_vars, common)?;
        // Budget exhaustion inside a summary degrades to the
        // all-unknown vector: the dependence is conservatively assumed
        // with no direction information, as a production compiler must.
        let summary = match distance_summary(&dp, &src_vars.iters, &dst_vars.iters, common, budget)
        {
            Ok(None) => continue, // this order case is infeasible
            Ok(Some(s)) => s,
            Err(crate::Error::Solver(omega::Error::TooComplex { .. })) => {
                crate::dir::DirectionVector(vec![crate::dir::DirEntry::star(); common])
            }
            Err(e) => return Err(e),
        };
        cases.push(DepCase {
            order: case,
            summary,
            space: space.clone(),
            problem: dp.to_problem(),
            delta: dp,
            src_vars: src_vars.clone(),
            dst_vars: dst_vars.clone(),
            exact_subscripts,
        });
    }

    if cases.is_empty() {
        return Ok(None);
    }
    Ok(Some(Dependence {
        kind,
        src: AccessRef {
            label: src.label,
            site: src_site,
        },
        dst: AccessRef {
            label: dst.label,
            site: dst_site,
        },
        common,
        cases,
        refined: false,
        covering: false,
        dead: None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny::{analyze, Program};

    fn info(src: &str) -> tiny::ProgramInfo {
        analyze(&Program::parse(src).unwrap()).unwrap()
    }

    fn flow_self(src: &str) -> Option<Dependence> {
        let info = info(src);
        let s = &info.stmts[0];
        build_dependence(
            &info,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap()
    }

    #[test]
    fn example3_unrefined_vector() {
        // Paper Example 3: unrefined flow dependence (0+,1).
        let d = flow_self(
            "sym n, m;
             for L1 := 1 to n do
               for L2 := 2 to m do
                 a(L2) := a(L2-1);
               endfor
             endfor",
        )
        .expect("flow dependence exists");
        assert_eq!(d.cases.len(), 2, "carried at L1 and at L2");
        assert_eq!(d.summary().to_string(), "(0+,1)");
    }

    #[test]
    fn example6_coupled_vector() {
        // Paper Example 6: distances (α,α), α >= 1 — carried at L1 only.
        let d = flow_self(
            "sym n, m;
             for L1 := 1 to n do
               for L2 := 2 to m do
                 a(L1-L2) := a(L1-L2);
               endfor
             endfor",
        )
        .expect("flow dependence exists");
        assert_eq!(d.cases.len(), 1, "only the outer loop can carry it");
        let s = d.summary();
        assert_eq!(s.0[0].lo, Some(1));
        assert_eq!(s.0[1].lo, Some(1));
    }

    #[test]
    fn wavefront_distances() {
        let src = "sym n, m;
            for i := 2 to n do
              for j := 2 to m do
                a(i, j) := a(i-1, j) + a(i, j-1);
              endfor
            endfor";
        let pi = info(src);
        let s = &pi.stmts[0];
        let mut b = Budget::default();
        let d1 = build_dependence(&pi, DepKind::Flow, s, AccessSite::Write, s, AccessSite::Read(0), &mut b)
            .unwrap()
            .unwrap();
        assert_eq!(d1.summary().to_string(), "(1,0)");
        let d2 = build_dependence(&pi, DepKind::Flow, s, AccessSite::Write, s, AccessSite::Read(1), &mut b)
            .unwrap()
            .unwrap();
        assert_eq!(d2.summary().to_string(), "(0,1)");
    }

    #[test]
    fn no_dependence_between_different_arrays() {
        let pi = info("for i := 1 to n do a(i) := b(i); endfor");
        let s = &pi.stmts[0];
        let d = build_dependence(
            &pi,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn no_dependence_when_ranges_disjoint() {
        let pi = info(
            "sym n;
             for i := 1 to n do a(i) := 0; endfor
             for i := n+1 to 2*n do x := a(i); endfor",
        );
        let w = &pi.stmts[0];
        let r = &pi.stmts[1];
        let d = build_dependence(
            &pi,
            DepKind::Flow,
            w,
            AccessSite::Write,
            r,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap();
        assert!(d.is_none(), "write range 1..n, read range n+1..2n");
    }

    #[test]
    fn anti_dependence_same_statement_is_loop_independent() {
        // a(i) := a(i) + 1: read happens before write in the same
        // iteration -> anti dependence with distance (0).
        let pi = info("sym n; for i := 1 to n do a(i) := a(i) + 1; endfor");
        let s = &pi.stmts[0];
        let d = build_dependence(
            &pi,
            DepKind::Anti,
            s,
            AccessSite::Read(0),
            s,
            AccessSite::Write,
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.summary().to_string(), "(0)");
        // ... and the flow dependence the other way does not exist.
        let f = build_dependence(
            &pi,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap();
        assert!(f.is_none());
    }

    #[test]
    fn output_dependence_self() {
        // a(i) := …; writes distinct elements: no self output dependence.
        let pi = info("sym n; for i := 1 to n do a(i) := 0; endfor");
        let s = &pi.stmts[0];
        let d = build_dependence(
            &pi,
            DepKind::Output,
            s,
            AccessSite::Write,
            s,
            AccessSite::Write,
            &mut Budget::default(),
        )
        .unwrap();
        assert!(d.is_none());

        // a(1) := … rewrites the same element every iteration.
        let pi = info("sym n; for i := 1 to n do a(1) := i; endfor");
        let s = &pi.stmts[0];
        let d = build_dependence(
            &pi,
            DepKind::Output,
            s,
            AccessSite::Write,
            s,
            AccessSite::Write,
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.summary().to_string(), "(+)");
    }

    #[test]
    fn assumptions_rule_out_dependences() {
        // Without the assumption x >= 1 there may be a loop-independent
        // dependence (x = 0); with it the write a(i-x) is always to an
        // earlier element, so only the carried case remains.
        let with = info(
            "sym n, x;
             assume x >= 1;
             for i := 1 to n do a(i) := a(i-x); endfor",
        );
        let s = &with.stmts[0];
        let d = build_dependence(
            &with,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.cases.len(), 1);
        assert_eq!(d.summary().0[0].lo, Some(1));
    }

    #[test]
    fn scalar_dependences() {
        // s := s + a(i): scalar flow dependence carried by the loop.
        let pi = info("sym n; for i := 1 to n do s := s + a(i); endfor");
        let s = &pi.stmts[0];
        let d = build_dependence(
            &pi,
            DepKind::Flow,
            s,
            AccessSite::Write,
            s,
            AccessSite::Read(0),
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.summary().to_string(), "(+)");
    }

    #[test]
    fn opaque_subscripts_are_conservative() {
        // a(q(i)) := a(q(i)): cannot disprove, marked inexact.
        let pi = info("sym n; for i := 1 to n do a(q(i)) := a(q(i)) + 1; endfor");
        let s = &pi.stmts[0];
        let read_idx = s
            .reads
            .iter()
            .position(|r| name_key(&r.array) == "a")
            .unwrap();
        let d = build_dependence(
            &pi,
            DepKind::Anti,
            s,
            AccessSite::Read(read_idx),
            s,
            AccessSite::Write,
            &mut Budget::default(),
        )
        .unwrap()
        .unwrap();
        assert!(!d.cases[0].exact_subscripts);
    }
}
