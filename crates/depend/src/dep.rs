//! Dependence records.

use std::fmt;

use omega::{DeltaProblem, Problem};

use crate::dir::DirectionVector;
use crate::space::{OrderCase, Space, StmtVars};

/// The kind of a data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write (storage dependence).
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        })
    }
}

/// Which access of a statement participates in a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSite {
    /// The left-hand-side write.
    Write,
    /// The `idx`-th read (source order).
    Read(usize),
}

/// A reference to one access: statement label plus site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRef {
    /// Statement label.
    pub label: usize,
    /// Which access within the statement.
    pub site: AccessSite,
}

/// One conjunctive dependence case: a specific carrier level (or the
/// loop-independent case) of an access pair.
#[derive(Debug, Clone)]
pub struct DepCase {
    /// The execution-order case this dependence is restricted to; this is
    /// the case's *restraint vector* in the paper's terminology (§2.1.2).
    pub order: OrderCase,
    /// Per-common-loop distance summary.
    pub summary: DirectionVector,
    /// The constraint space (variables `i*` for the source, `j*` for the
    /// destination, plus symbolic constants).
    pub space: Space,
    /// The conjunction: `i ∈ [A] ∧ j ∈ [B] ∧ A(i) =ₛᵤᵦ B(j) ∧ order ∧
    /// assumptions`.
    pub problem: Problem,
    /// The same conjunction expressed as a delta over the pair's shared
    /// [`PairContext`](omega::PairContext) base (`problem` is its
    /// materialization). Later passes (§4.1–4.3) project and re-constrain
    /// through this handle so the base is canonicalized once per pair.
    pub delta: DeltaProblem,
    /// Source iteration variables.
    pub src_vars: StmtVars,
    /// Destination iteration variables.
    pub dst_vars: StmtVars,
    /// Whether every subscript dimension was affine (false means the
    /// dependence is assumed conservatively and §5 machinery applies).
    pub exact_subscripts: bool,
}

/// Why a dependence is dead (eliminated by the extended analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadReason {
    /// Eliminated by a pairwise kill test (`[k]` in Figure 4).
    Killed,
    /// Eliminated by a covering dependence (`[c]` in Figure 4).
    Covered,
}

/// A dependence between two accesses, possibly split into several
/// conjunctive cases (one per restraint vector).
#[derive(Debug, Clone)]
pub struct Dependence {
    /// Kind of dependence.
    pub kind: DepKind,
    /// Source access.
    pub src: AccessRef,
    /// Destination access.
    pub dst: AccessRef,
    /// Number of loops common to the two statements.
    pub common: usize,
    /// Live conjunctive cases.
    pub cases: Vec<DepCase>,
    /// Whether refinement (§4.4) changed the dependence (`[r]`).
    pub refined: bool,
    /// Whether this dependence covers its destination (§4.2, `[C]`).
    pub covering: bool,
    /// Set when the dependence is dead (`[k]`/`[c]`).
    pub dead: Option<DeadReason>,
}

impl Dependence {
    /// The merged per-loop distance summary over live cases (interval
    /// hull), or an empty vector when there are no common loops.
    pub fn summary(&self) -> DirectionVector {
        let mut it = self.cases.iter().map(|c| c.summary.clone());
        let Some(first) = it.next() else {
            return DirectionVector(vec![]);
        };
        it.fold(first, |acc, s| acc.hull(&s))
    }

    /// Whether the dependence is still live.
    pub fn is_live(&self) -> bool {
        self.dead.is_none() && !self.cases.is_empty()
    }

    /// Enumerates the exact distance vectors of the live cases, merged and
    /// sorted, when the set is finite and no larger than `limit`. Returns
    /// `None` for symbolic (unbounded) distance sets.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn enumerate_distances(
        &self,
        limit: usize,
        budget: &mut omega::Budget,
    ) -> crate::Result<Option<Vec<Vec<i64>>>> {
        let mut all = Vec::new();
        for case in &self.cases {
            match crate::dir::enumerate_distances(
                &case.problem,
                &case.src_vars.iters,
                &case.dst_vars.iters,
                self.common,
                limit,
                budget,
            )? {
                None => return Ok(None),
                Some(v) => all.extend(v),
            }
        }
        all.sort();
        all.dedup();
        if all.len() > limit {
            return Ok(None);
        }
        Ok(Some(all))
    }

    /// The status tag in the format of Figures 3 and 4: live tags `[Cr]`,
    /// dead tags `[k]`, `[c]`.
    pub fn status_tag(&self) -> String {
        match self.dead {
            Some(DeadReason::Killed) if self.refined => "[kr]".to_string(),
            Some(DeadReason::Killed) => "[ k]".to_string(),
            Some(DeadReason::Covered) if self.refined => "[cr]".to_string(),
            Some(DeadReason::Covered) => "[ c]".to_string(),
            None => {
                let c = if self.covering { "C" } else { " " };
                let r = if self.refined { "r" } else { " " };
                let tag = format!("[{c}{r}]");
                if tag == "[  ]" {
                    String::new()
                } else {
                    tag
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::DirEntry;

    fn dummy_dep(cases: Vec<DirectionVector>) -> Dependence {
        let space = Space::new(&Default::default());
        let problem = space.problem();
        let ctx = omega::PairContext::new(problem.clone(), &omega::Budget::default());
        Dependence {
            kind: DepKind::Flow,
            src: AccessRef {
                label: 1,
                site: AccessSite::Write,
            },
            dst: AccessRef {
                label: 2,
                site: AccessSite::Read(0),
            },
            common: cases.first().map_or(0, |v| v.len()),
            cases: cases
                .into_iter()
                .map(|summary| DepCase {
                    order: OrderCase::LoopIndependent,
                    summary,
                    space: space.clone(),
                    problem: problem.clone(),
                    delta: ctx.derive(),
                    src_vars: StmtVars {
                        iters: vec![],
                        bindings: Default::default(),
                    },
                    dst_vars: StmtVars {
                        iters: vec![],
                        bindings: Default::default(),
                    },
                    exact_subscripts: true,
                })
                .collect(),
            refined: false,
            covering: false,
            dead: None,
        }
    }

    #[test]
    fn merged_summary_hull() {
        let d = dummy_dep(vec![
            DirectionVector(vec![DirEntry::exact(0), DirEntry::exact(1)]),
            DirectionVector(vec![
                DirEntry { lo: Some(1), hi: None },
                DirEntry::exact(1),
            ]),
        ]);
        assert_eq!(d.summary().to_string(), "(0+,1)");
    }

    #[test]
    fn status_tags() {
        let mut d = dummy_dep(vec![]);
        assert_eq!(d.status_tag(), "");
        d.refined = true;
        assert_eq!(d.status_tag(), "[ r]");
        d.covering = true;
        assert_eq!(d.status_tag(), "[Cr]");
        d.dead = Some(DeadReason::Killed);
        assert_eq!(d.status_tag(), "[kr]", "refined dead deps show r");
        d.dead = Some(DeadReason::Covered);
        assert_eq!(d.status_tag(), "[cr]");
        d.refined = false;
        d.dead = Some(DeadReason::Killed);
        assert_eq!(d.status_tag(), "[ k]");
        d.dead = Some(DeadReason::Covered);
        assert_eq!(d.status_tag(), "[ c]");
    }
}
