//! A zero-dependency scoped-thread work pool for the pair-analysis
//! fan-out.
//!
//! [`parallel_map`] runs one closure per item across a fixed number of
//! workers pulling from a shared atomic work index, then collects the
//! results **in item order** — so callers merge per-pair results exactly
//! as the sequential loop would have produced them, independent of which
//! worker ran which item. Built on [`std::thread::scope`]; no external
//! crates, per the hermetic-build policy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::Result;

/// Applies `f` to every item of `work`, fanning out over `threads`
/// workers, and returns the results in the original item order.
///
/// `f` receives `(index, item)` so callers can reuse precomputed
/// per-index context. With `threads <= 1` (or one item) this is a plain
/// sequential loop with no pool overhead and sequential error
/// short-circuiting. In the parallel case every item runs to completion
/// and the error of the **smallest** failing index is reported, matching
/// what the sequential loop would have surfaced.
///
/// # Errors
///
/// Propagates the first (lowest-index) error returned by `f`.
pub fn parallel_map<T, R, F>(threads: usize, work: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> Result<R> + Sync,
{
    if threads <= 1 || work.len() <= 1 {
        return work
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Workers claim runs of CHUNK consecutive indices per fetch_add so
    // the shared counter is touched once per chunk rather than once per
    // item. Adjacent pairs also tend to share canonical sub-problems, so
    // keeping them on one worker improves memo-cache locality. Result
    // placement is by index, so chunking cannot affect the output.
    const CHUNK: usize = 8;
    let n = work.len();
    let items: Vec<Mutex<Option<T>>> = work.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<Result<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + CHUNK).min(n) {
                    let item = items[i]
                        .lock()
                        .expect("work item lock poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let out = f(i, item);
                    *slots[i].lock().expect("result slot lock poisoned") = Some(out);
                }
            });
        }
    });

    // Deterministic merge: walk the slots in item order; the first error
    // encountered is the one the sequential loop would have hit first.
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        let out = slot
            .into_inner()
            .expect("result slot lock poisoned")
            .expect("worker pool exited with an unfilled slot");
        results.push(out?);
    }
    Ok(results)
}

/// [`parallel_map`] for closures that cannot fail — the analysis-server
/// batch fan-out, where every request produces a response (errors are
/// encoded *in* the response rather than aborting the batch).
///
/// Same ordering and pooling guarantees as [`parallel_map`]; the
/// `Result` plumbing is simply hidden.
pub fn parallel_map_infallible<T, R, F>(threads: usize, work: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map(threads, work, |i, item| Ok(f(i, item)))
        .expect("infallible closure returned an error")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;

    #[test]
    fn preserves_item_order_at_every_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let work: Vec<usize> = (0..100).collect();
            let out = parallel_map(threads, work, |i, x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reports_the_lowest_index_error() {
        for threads in [1, 4] {
            let work: Vec<usize> = (0..64).collect();
            let err = parallel_map(threads, work, |_, x| {
                if x == 7 || x == 40 {
                    Err(Error::Solver(omega::Error::TooComplex { budget: x }))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert!(
                matches!(err, Error::Solver(omega::Error::TooComplex { budget: 7 })),
                "threads={threads}: {err:?}"
            );
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(16, vec![1, 2, 3], |_, x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn infallible_variant_preserves_order() {
        for threads in [1, 4] {
            let out = parallel_map_infallible(threads, (0..50).collect(), |i, x: usize| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_work_list() {
        let out: Vec<i32> = parallel_map(4, Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }
}
