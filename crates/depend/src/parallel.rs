//! A zero-dependency work pool for the analysis fan-outs, in two
//! flavors: the one-shot [`parallel_map`] (scoped threads, one batch)
//! and the shared two-level [`Pool`] (long-lived workers, many batches).
//!
//! Both run one closure per item and collect the results **in item
//! order** — callers merge per-pair results exactly as the sequential
//! loop would have produced them, independent of which worker ran which
//! item. No external crates, per the hermetic-build policy.
//!
//! # The two-level scheme
//!
//! A [`Pool`] holds one FIFO queue of *batches*. Every [`Pool::map`]
//! call enqueues its batch and then **helps**: the submitting thread
//! claims chunks of its own batch alongside the pool workers, and only
//! sleeps once every chunk is claimed. Because workers pull from the
//! shared queue regardless of which `map` call enqueued a batch, an
//! outer batch of whole programs and the inner batches of one program's
//! analysis stages interleave on the same workers — a lone heavy
//! program (or a lone heavy server request) fans its pair chunks out to
//! every idle core instead of monopolizing one. Nesting cannot
//! deadlock: a `map` call only blocks after all of its chunks are
//! claimed, and a claimed chunk is by definition being executed by some
//! live thread.
//!
//! # Panic containment
//!
//! A panicking closure does not abort the batch or poison the pool:
//! every item runs under [`std::panic::catch_unwind`], the remaining
//! items complete, and the merge re-raises the panic of the smallest
//! failing index (after errors at smaller indices, matching the
//! sequential loop's ordering). Long-lived callers that must survive a
//! panic — the analysis server — catch it at their own boundary
//! instead.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::Result;

/// Poison-proof lock: a panic in some closure must not wedge the pool,
/// and every critical section here is a plain read/write with no
/// invariant that a mid-section panic could break.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Chunk size for a batch of `n` items on `executors` threads: small
/// batches split fine enough that every executor gets work (a 12-item
/// stage on 8 threads runs 12 chunks, not 2), while large batches keep
/// runs of up to 8 adjacent items per claim — adjacent pairs tend to
/// share canonical sub-problems, so locality helps the memo cache, and
/// the shared counter is touched once per chunk rather than once per
/// item. Result placement is by index, so chunking cannot affect the
/// output.
fn chunk_size(n: usize, executors: usize) -> usize {
    n.div_ceil(executors.saturating_mul(4).max(1)).clamp(1, 8)
}

/// How one item ended: the closure's result, or the payload of its
/// panic (re-raised by the merge).
enum Outcome<R> {
    Done(Result<R>),
    Panicked(Box<dyn Any + Send>),
}

/// One batch of work: the items, their result slots, and a shared claim
/// counter. Chunks of consecutive indices are claimed with one
/// `fetch_add`; a completion count under a mutex lets the submitting
/// thread sleep until the last chunk (possibly run by a pool worker)
/// finishes.
struct Batch<T, R, F> {
    items: Vec<Mutex<Option<T>>>,
    slots: Vec<Mutex<Option<Outcome<R>>>>,
    next: AtomicUsize,
    chunk: usize,
    done: Mutex<usize>,
    done_cv: Condvar,
    f: F,
}

impl<T, R, F> Batch<T, R, F>
where
    F: Fn(usize, T) -> Result<R>,
{
    fn new(work: Vec<T>, chunk: usize, f: F) -> Batch<T, R, F> {
        let n = work.len();
        Batch {
            items: work.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            chunk,
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            f,
        }
    }

    /// Claims and runs one chunk. Returns `false` when no unclaimed
    /// chunk remained (claimed chunks may still be *running* on other
    /// threads — see [`Batch::wait_done`]).
    fn run_chunk(&self) -> bool {
        let n = self.items.len();
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= n {
            return false;
        }
        let end = (start + self.chunk).min(n);
        for i in start..end {
            let item = lock(&self.items[i]).take().expect("work item claimed twice");
            let out = catch_unwind(AssertUnwindSafe(|| (self.f)(i, item)));
            *lock(&self.slots[i]) = Some(match out {
                Ok(r) => Outcome::Done(r),
                Err(payload) => Outcome::Panicked(payload),
            });
        }
        let mut done = lock(&self.done);
        *done += end - start;
        if *done == n {
            self.done_cv.notify_all();
        }
        true
    }

    /// Blocks until every item of the batch has completed.
    fn wait_done(&self) {
        let mut done = lock(&self.done);
        while *done < self.items.len() {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Deterministic merge: walk the slots in item order; the first
    /// error or panic encountered is the one the sequential loop would
    /// have surfaced first.
    fn merge(self) -> Result<Vec<R>> {
        let mut results = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            let out = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker pool exited with an unfilled slot");
            match out {
                Outcome::Done(Ok(r)) => results.push(r),
                Outcome::Done(Err(e)) => return Err(e),
                Outcome::Panicked(payload) => resume_unwind(payload),
            }
        }
        Ok(results)
    }
}

/// The worker-facing view of a [`Batch`], type-erased so batches with
/// different `(T, R, F)` share one queue.
trait Chunked: Send + Sync {
    /// Claims and runs one chunk; `false` when nothing was left to
    /// claim.
    fn run_chunk(&self) -> bool;
    /// Whether an unclaimed chunk remains.
    fn has_work(&self) -> bool;
}

impl<T, R, F> Chunked for Batch<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> Result<R> + Send + Sync,
{
    fn run_chunk(&self) -> bool {
        Batch::run_chunk(self)
    }

    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.items.len()
    }
}

/// The queue shared by all workers of one [`Pool`].
struct PoolQueue {
    batches: VecDeque<Arc<dyn Chunked>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                // Exhausted batches at the front are done with the
                // queue (their submitter holds the results); drop our
                // reference so the submitting `map` can reclaim sole
                // ownership and return.
                while q.batches.front().is_some_and(|b| !b.has_work()) {
                    q.batches.pop_front();
                }
                if let Some(b) = q.batches.iter().find(|b| b.has_work()) {
                    break Arc::clone(b);
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        while batch.run_chunk() {}
    }
}

/// A shared work pool with helping submitters: the two-level scheduler
/// behind [`analyze_corpus`](crate::analyze_corpus) and the analysis
/// server. See the module docs for the scheme.
///
/// A `Pool::new(threads)` pool executes up to `threads` chunks
/// concurrently: `threads - 1` long-lived workers plus the thread
/// calling [`Pool::map`], which always helps with its own batch. The
/// pool is cheap to share (`map` takes `&self`) and joins its workers
/// on drop.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool executing up to `threads` chunks concurrently (`0` means
    /// one per available core). `threads <= 1` spawns no workers at
    /// all: every [`Pool::map`] then runs its batch sequentially on the
    /// calling thread.
    pub fn new(threads: usize) -> Pool {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            threads,
            workers,
        }
    }

    /// The concurrency this pool was built for (workers + one helping
    /// submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, fanning chunks out across the pool's
    /// workers *and* the calling thread, and returns the results in the
    /// original item order. Nested calls are the point: a task running
    /// on a pool worker may itself call `map`, and idle workers (or
    /// other submitters) steal its chunks.
    ///
    /// Same semantics as [`parallel_map`]: with one item (or a
    /// single-threaded pool) this is the plain sequential loop with
    /// short-circuiting; otherwise every item runs to completion and
    /// the error of the smallest failing index is reported. A panicking
    /// closure is re-raised after the batch completes, smallest index
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-index) error returned by `f`.
    pub fn map<T, R, F>(&self, work: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Send + Sync,
    {
        let n = work.len();
        if self.threads <= 1 || n <= 1 {
            return work.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let batch = Arc::new(Batch::new(work, chunk_size(n, self.threads), f));

        // Type-erase the batch for the shared queue. The batch borrows
        // caller-stack data (`f`'s captures, the items), so the erased
        // handle must not outlive this call.
        //
        // SAFETY: the `'static` here is a promise that no other thread
        // touches the batch after `map` returns, upheld below:
        // * `wait_done` blocks until every item has run, after which
        //   `run_chunk`/`has_work` on this batch only read the atomic
        //   claim counter and the (owned, alive) item vector's length —
        //   never `f` or an item;
        // * the queue's reference is removed, and we then wait until
        //   this `Arc` is the *sole* owner, so by the time `map`
        //   returns no worker holds even a dangling-capable handle;
        // * no code between the enqueue and that wait can unwind: the
        //   closure's panics are caught inside `run_chunk`, and every
        //   lock here is poison-proof.
        let erased: Arc<dyn Chunked + '_> = Arc::clone(&batch) as _;
        let erased: Arc<dyn Chunked + 'static> = unsafe { std::mem::transmute(erased) };
        {
            let mut q = lock(&self.shared.queue);
            q.batches.push_back(erased);
        }
        self.shared.available.notify_all();

        // Help with our own batch, then sleep until chunks claimed by
        // workers finish.
        while batch.run_chunk() {}
        batch.wait_done();

        // Reclaim sole ownership (see SAFETY above). Workers drop their
        // clone right after the final `run_chunk` returns, so this spin
        // is a few scheduler ticks at most.
        {
            let mut q = lock(&self.shared.queue);
            let ours = Arc::as_ptr(&batch) as *const ();
            q.batches.retain(|b| Arc::as_ptr(b) as *const () != ours);
        }
        let mut batch = batch;
        let batch = loop {
            match Arc::try_unwrap(batch) {
                Ok(owned) => break owned,
                Err(still_shared) => {
                    batch = still_shared;
                    std::thread::yield_now();
                }
            }
        };
        batch.merge()
    }

    /// [`Pool::map`] for closures that cannot fail — the analysis
    /// server's batch fan-out, where every request produces a response.
    pub fn map_infallible<T, R, F>(&self, work: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Send + Sync,
    {
        self.map(work, |i, item| Ok(f(i, item)))
            .expect("infallible closure returned an error")
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Applies `f` to every item of `work`, fanning out over `threads`
/// scoped workers (the calling thread helps too), and returns the
/// results in the original item order.
///
/// `f` receives `(index, item)` so callers can reuse precomputed
/// per-index context. With `threads <= 1` (or one item) this is a plain
/// sequential loop with no pool overhead and sequential error
/// short-circuiting. In the parallel case every item runs to completion
/// and the error of the **smallest** failing index is reported, matching
/// what the sequential loop would have surfaced; a panicking closure is
/// re-raised after the rest of the batch completes.
///
/// # Errors
///
/// Propagates the first (lowest-index) error returned by `f`.
pub fn parallel_map<T, R, F>(threads: usize, work: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> Result<R> + Sync,
{
    let n = work.len();
    if threads <= 1 || n <= 1 {
        return work
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let batch = Batch::new(work, chunk_size(n, threads), f);
    std::thread::scope(|scope| {
        // threads - 1 spawned workers; the calling thread is the last
        // executor. The scope joins them all, so every claimed chunk
        // has finished when it exits.
        for _ in 0..(threads - 1).min(n - 1) {
            scope.spawn(|| while batch.run_chunk() {});
        }
        while batch.run_chunk() {}
    });
    batch.merge()
}

/// [`parallel_map`] for closures that cannot fail.
///
/// Same ordering and pooling guarantees as [`parallel_map`]; the
/// `Result` plumbing is simply hidden.
pub fn parallel_map_infallible<T, R, F>(threads: usize, work: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map(threads, work, |i, item| Ok(f(i, item)))
        .expect("infallible closure returned an error")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Error;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order_at_every_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let work: Vec<usize> = (0..100).collect();
            let out = parallel_map(threads, work, |i, x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reports_the_lowest_index_error() {
        for threads in [1, 4] {
            let work: Vec<usize> = (0..64).collect();
            let err = parallel_map(threads, work, |_, x| {
                if x == 7 || x == 40 {
                    Err(Error::Solver(omega::Error::TooComplex { budget: x }))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert!(
                matches!(err, Error::Solver(omega::Error::TooComplex { budget: 7 })),
                "threads={threads}: {err:?}"
            );
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(16, vec![1, 2, 3], |_, x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn infallible_variant_preserves_order() {
        for threads in [1, 4] {
            let out = parallel_map_infallible(threads, (0..50).collect(), |i, x: usize| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_work_list() {
        let out: Vec<i32> = parallel_map(4, Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn small_batches_use_every_worker() {
        // The adaptive chunk size must split a 12-item batch on 8
        // threads into single-item chunks (the old fixed CHUNK=8 gave
        // only two workers anything to do).
        assert_eq!(chunk_size(12, 8), 1);
        assert_eq!(chunk_size(1000, 4), 8);
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(64, 2), 8);
    }

    #[test]
    fn panicking_item_completes_the_batch_then_reraises() {
        let completed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, (0..64).collect::<Vec<usize>>(), |_, x| {
                if x == 13 {
                    panic!("injected panic at 13");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok(x)
            })
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected panic at 13");
        // Every other item ran to completion before the re-raise.
        assert_eq!(completed.load(Ordering::Relaxed), 63);
    }

    #[test]
    fn pool_map_preserves_order_and_errors() {
        let pool = Pool::new(4);
        let out = pool
            .map((0..100).collect::<Vec<usize>>(), |i, x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());

        let err = pool
            .map((0..64).collect::<Vec<usize>>(), |_, x| {
                if x == 9 || x == 50 {
                    Err(Error::Solver(omega::Error::TooComplex { budget: x }))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Solver(omega::Error::TooComplex { budget: 9 })
        ));
    }

    #[test]
    fn pool_map_nests() {
        // The two-level shape: an outer batch whose tasks each run an
        // inner batch on the same pool. Results must be deterministic
        // and correctly ordered at both levels.
        let pool = Pool::new(8);
        let out = pool
            .map((0..6).collect::<Vec<usize>>(), |_, outer| {
                let inner = pool.map((0..20).collect::<Vec<usize>>(), |_, x| {
                    Ok(outer * 100 + x)
                })?;
                Ok(inner.iter().sum::<usize>())
            })
            .unwrap();
        let expect: Vec<usize> = (0..6).map(|o| (0..20).map(|x| o * 100 + x).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_panic_is_contained_to_its_item() {
        let pool = Pool::new(4);
        let completed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..32).collect::<Vec<usize>>(), |_, x| {
                if x == 5 {
                    panic!("pool panic at 5");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok(x)
            })
        }));
        assert!(caught.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 31);
        // The pool survives for the next batch.
        let out = pool.map(vec![1, 2, 3], |_, x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_threaded_pool_is_sequential() {
        let pool = Pool::new(1);
        let out = pool.map((0..10).collect::<Vec<usize>>(), |i, x| {
            assert_eq!(i, x);
            Ok(x)
        });
        assert_eq!(out.unwrap(), (0..10).collect::<Vec<_>>());
    }
}
