//! Property test: the §4.5 pre-filter is *conservative*. Whenever
//! [`depend::prefilter_pair`] rejects an access pair, the full Omega
//! analysis ([`depend::build_dependence`]) must agree that no dependence
//! exists — for every dependence kind and in both pair orientations.
//!
//! The generator aims squarely at the pre-filter's blind spots: strided
//! subscripts (`a(2*i+c)`), strided loops (`step 2`/`step 3`), and
//! constant loop bounds that make the range test decisive.

use harness::prop::{check, Config as PropConfig, Shrink};
use harness::{prop_assert, Rng};

use depend::{build_dependence, prefilter_pair, AccessSite, DepKind};
use tiny::sema::StmtInfo;

/// One statement: `arr(stride*i + off) := arr(rstride*i + roff) + 1`
/// inside its own loop with the given bounds and step.
#[derive(Debug, Clone)]
struct StmtSpec {
    array: usize,
    write: (i64, i64),
    read: (i64, i64),
    lo: i64,
    hi: i64,
    step: i64,
}

#[derive(Debug, Clone)]
struct ProgSpec {
    stmts: Vec<StmtSpec>,
}

impl Shrink for StmtSpec {
    fn shrink(&self) -> Vec<Self> {
        let tuple = (self.array, self.write, self.read, (self.lo, self.hi, self.step));
        tuple
            .shrink()
            .into_iter()
            .filter(|&(_, (ws, _), (rs, _), (lo, hi, step))| {
                ws != 0 && rs != 0 && step >= 1 && lo <= hi
            })
            .map(|(array, write, read, (lo, hi, step))| StmtSpec {
                array,
                write,
                read,
                lo,
                hi,
                step,
            })
            .collect()
    }
}

impl Shrink for ProgSpec {
    fn shrink(&self) -> Vec<Self> {
        harness::prop::shrink_vec(&self.stmts, StmtSpec::shrink, 1)
            .into_iter()
            .map(|stmts| ProgSpec { stmts })
            .collect()
    }
}

fn gen_stmt(rng: &mut Rng) -> StmtSpec {
    let lo = rng.gen_range_i64(-3..=8);
    StmtSpec {
        array: rng.gen_range_usize(0..2),
        write: (rng.gen_range_i64(1..=4), rng.gen_range_i64(-6..=6)),
        read: (rng.gen_range_i64(1..=4), rng.gen_range_i64(-6..=6)),
        lo,
        hi: lo + rng.gen_range_i64(0..=12),
        step: rng.gen_range_i64(1..=3),
    }
}

fn gen_spec(rng: &mut Rng) -> ProgSpec {
    ProgSpec {
        stmts: (0..rng.gen_range_usize(1..=3)).map(|_| gen_stmt(rng)).collect(),
    }
}

fn render(spec: &ProgSpec) -> String {
    let arrays = ["aa", "bb"];
    let mut out = String::new();
    for st in &spec.stmts {
        out.push_str(&format!(
            "for i := {} to {} step {} do\n  {}({}*i + {}) := {}({}*i + {}) + 1;\nendfor\n",
            st.lo,
            st.hi,
            st.step,
            arrays[st.array % 2],
            st.write.0,
            st.write.1,
            arrays[st.array % 2],
            st.read.0,
            st.read.1,
        ));
    }
    out
}

/// Every same-array pair the analysis driver would pre-filter, with the
/// dependence kind the driver would build for it.
fn pairs_of(stmts: &[StmtInfo]) -> Vec<(usize, AccessSite, usize, AccessSite, DepKind)> {
    let mut out = Vec::new();
    for (a, sa) in stmts.iter().enumerate() {
        for (b, sb) in stmts.iter().enumerate() {
            if tiny::ast::name_key(&sa.write.array) == tiny::ast::name_key(&sb.write.array) {
                out.push((a, AccessSite::Write, b, AccessSite::Write, DepKind::Output));
            }
            for (ri, read) in sb.reads.iter().enumerate() {
                if tiny::ast::name_key(&sa.write.array) == tiny::ast::name_key(&read.array) {
                    out.push((a, AccessSite::Write, b, AccessSite::Read(ri), DepKind::Flow));
                    out.push((b, AccessSite::Read(ri), a, AccessSite::Write, DepKind::Anti));
                }
            }
        }
    }
    out
}

fn prop_prefilter_is_conservative(spec: &ProgSpec) -> Result<(), String> {
    let src = render(spec);
    let program = tiny::Program::parse(&src)
        .map_err(|e| format!("generated program failed to parse: {e}\n{src}"))?;
    let info = tiny::analyze(&program).map_err(|e| format!("analysis failed: {e}\n{src}"))?;

    for (a, sa, b, sb, kind) in pairs_of(&info.stmts) {
        let Some(reason) = prefilter_pair(&info.stmts[a], sa, &info.stmts[b], sb) else {
            continue;
        };
        let mut budget = omega::Budget::default();
        let dep = build_dependence(
            &info,
            kind,
            &info.stmts[a],
            sa,
            &info.stmts[b],
            sb,
            &mut budget,
        )
        .map_err(|e| format!("exact analysis failed: {e}\n{src}"))?;
        prop_assert!(
            dep.is_none(),
            "prefilter rejected ({reason:?}) a pair the Omega test proves \
             dependent: {kind:?} stmt {} -> stmt {}\n{}",
            a + 1,
            b + 1,
            &src
        );
    }
    Ok(())
}

#[test]
fn prefilter_rejections_agree_with_the_omega_test() {
    check(
        &PropConfig::with_cases(400),
        gen_spec,
        prop_prefilter_is_conservative,
    );
}

#[test]
fn prefilter_fires_on_the_generated_family_at_all() {
    // Guard against the property passing vacuously: over a fixed sample
    // of generated programs, at least one pair must actually be rejected.
    let mut fired = false;
    for seed in 0..64 {
        let spec = gen_spec(&mut Rng::from_seed(seed));
        let program = tiny::Program::parse(&render(&spec)).unwrap();
        let info = tiny::analyze(&program).unwrap();
        for (a, sa, b, sb, _) in pairs_of(&info.stmts) {
            fired |= prefilter_pair(&info.stmts[a], sa, &info.stmts[b], sb).is_some();
        }
    }
    assert!(fired, "no generated pair was ever pre-filtered");
}
