//! Property test: the §4.5 pre-filter is *conservative*. Whenever
//! [`depend::prefilter_pair`] rejects an access pair, the full Omega
//! analysis ([`depend::build_dependence`]) must agree that no dependence
//! exists — for every dependence kind and in both pair orientations.
//!
//! Two generator families: one aims at the strided tests (subscripts
//! `a(2*i+c)`, `step 2`/`step 3` loops, constant bounds for the range
//! test), the other at the symbolic range test (bounds and subscript
//! offsets affine in a symbolic `n` whose sign is pinned by an `assume`).

use harness::prop::{check, Config as PropConfig, Shrink};
use harness::{prop_assert, Rng};

use depend::{build_dependence, prefilter_pair, AccessSite, DepKind};
use tiny::sema::StmtInfo;

/// One statement: `arr(stride*i + off) := arr(rstride*i + roff) + 1`
/// inside its own loop with the given bounds and step.
#[derive(Debug, Clone)]
struct StmtSpec {
    array: usize,
    write: (i64, i64),
    read: (i64, i64),
    lo: i64,
    hi: i64,
    step: i64,
}

#[derive(Debug, Clone)]
struct ProgSpec {
    stmts: Vec<StmtSpec>,
}

impl Shrink for StmtSpec {
    fn shrink(&self) -> Vec<Self> {
        let tuple = (self.array, self.write, self.read, (self.lo, self.hi, self.step));
        tuple
            .shrink()
            .into_iter()
            .filter(|&(_, (ws, _), (rs, _), (lo, hi, step))| {
                ws != 0 && rs != 0 && step >= 1 && lo <= hi
            })
            .map(|(array, write, read, (lo, hi, step))| StmtSpec {
                array,
                write,
                read,
                lo,
                hi,
                step,
            })
            .collect()
    }
}

impl Shrink for ProgSpec {
    fn shrink(&self) -> Vec<Self> {
        harness::prop::shrink_vec(&self.stmts, StmtSpec::shrink, 1)
            .into_iter()
            .map(|stmts| ProgSpec { stmts })
            .collect()
    }
}

fn gen_stmt(rng: &mut Rng) -> StmtSpec {
    let lo = rng.gen_range_i64(-3..=8);
    StmtSpec {
        array: rng.gen_range_usize(0..2),
        write: (rng.gen_range_i64(1..=4), rng.gen_range_i64(-6..=6)),
        read: (rng.gen_range_i64(1..=4), rng.gen_range_i64(-6..=6)),
        lo,
        hi: lo + rng.gen_range_i64(0..=12),
        step: rng.gen_range_i64(1..=3),
    }
}

fn gen_spec(rng: &mut Rng) -> ProgSpec {
    ProgSpec {
        stmts: (0..rng.gen_range_usize(1..=3)).map(|_| gen_stmt(rng)).collect(),
    }
}

fn render(spec: &ProgSpec) -> String {
    let arrays = ["aa", "bb"];
    let mut out = String::new();
    for st in &spec.stmts {
        out.push_str(&format!(
            "for i := {} to {} step {} do\n  {}({}*i + {}) := {}({}*i + {}) + 1;\nendfor\n",
            st.lo,
            st.hi,
            st.step,
            arrays[st.array % 2],
            st.write.0,
            st.write.1,
            arrays[st.array % 2],
            st.read.0,
            st.read.1,
        ));
    }
    out
}

/// Every same-array pair the analysis driver would pre-filter, with the
/// dependence kind the driver would build for it.
fn pairs_of(stmts: &[StmtInfo]) -> Vec<(usize, AccessSite, usize, AccessSite, DepKind)> {
    let mut out = Vec::new();
    for (a, sa) in stmts.iter().enumerate() {
        for (b, sb) in stmts.iter().enumerate() {
            if tiny::ast::name_key(&sa.write.array) == tiny::ast::name_key(&sb.write.array) {
                out.push((a, AccessSite::Write, b, AccessSite::Write, DepKind::Output));
            }
            for (ri, read) in sb.reads.iter().enumerate() {
                if tiny::ast::name_key(&sa.write.array) == tiny::ast::name_key(&read.array) {
                    out.push((a, AccessSite::Write, b, AccessSite::Read(ri), DepKind::Flow));
                    out.push((b, AccessSite::Read(ri), a, AccessSite::Write, DepKind::Anti));
                }
            }
        }
    }
    out
}

/// The property body shared by both generator families: whenever the
/// pre-filter rejects a pair of `src`, the exact analysis must find no
/// dependence for it either.
fn check_conservative(src: &str) -> Result<(), String> {
    let program = tiny::Program::parse(src)
        .map_err(|e| format!("generated program failed to parse: {e}\n{src}"))?;
    let info = tiny::analyze(&program).map_err(|e| format!("analysis failed: {e}\n{src}"))?;

    for (a, sa, b, sb, kind) in pairs_of(&info.stmts) {
        let Some(reason) =
            prefilter_pair(&info.stmts[a], sa, &info.stmts[b], sb, &info.assumptions)
        else {
            continue;
        };
        let mut budget = omega::Budget::default();
        let dep = build_dependence(
            &info,
            kind,
            &info.stmts[a],
            sa,
            &info.stmts[b],
            sb,
            &mut budget,
        )
        .map_err(|e| format!("exact analysis failed: {e}\n{src}"))?;
        prop_assert!(
            dep.is_none(),
            "prefilter rejected ({reason:?}) a pair the Omega test proves \
             dependent: {kind:?} stmt {} -> stmt {}\n{}",
            a + 1,
            b + 1,
            src
        );
    }
    Ok(())
}

fn prop_prefilter_is_conservative(spec: &ProgSpec) -> Result<(), String> {
    check_conservative(&render(spec))
}

#[test]
fn prefilter_rejections_agree_with_the_omega_test() {
    check(
        &PropConfig::with_cases(400),
        gen_spec,
        prop_prefilter_is_conservative,
    );
}

#[test]
fn prefilter_fires_on_the_generated_family_at_all() {
    // Guard against the property passing vacuously: over a fixed sample
    // of generated programs, at least one pair must actually be rejected.
    let mut fired = false;
    for seed in 0..64 {
        let spec = gen_spec(&mut Rng::from_seed(seed));
        let program = tiny::Program::parse(&render(&spec)).unwrap();
        let info = tiny::analyze(&program).unwrap();
        for (a, sa, b, sb, _) in pairs_of(&info.stmts) {
            fired |= prefilter_pair(&info.stmts[a], sa, &info.stmts[b], sb, &info.assumptions)
                .is_some();
        }
    }
    assert!(fired, "no generated pair was ever pre-filtered");
}

/// One statement of the symbolic family:
/// `for i := lo.0*n+lo.1 to hi.0*n+hi.1 do aa(i + w.0*n+w.1) := aa(i + r.0*n+r.1) + 1`.
#[derive(Debug, Clone)]
struct SymStmtSpec {
    lo: (i64, i64),
    hi: (i64, i64),
    w: (i64, i64),
    r: (i64, i64),
}

#[derive(Debug, Clone)]
struct SymProgSpec {
    /// Rendered as `assume n >= min_n`.
    min_n: i64,
    stmts: Vec<SymStmtSpec>,
}

impl Shrink for SymProgSpec {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.stmts.len() > 1 {
            for i in 0..self.stmts.len() {
                let mut stmts = self.stmts.clone();
                stmts.remove(i);
                out.push(SymProgSpec {
                    min_n: self.min_n,
                    stmts,
                });
            }
        }
        out
    }
}

fn gen_sym_spec(rng: &mut Rng) -> SymProgSpec {
    let pair = |rng: &mut Rng| (rng.gen_range_i64(0..=2), rng.gen_range_i64(-4..=4));
    let stmts = (0..rng.gen_range_usize(1..=3))
        .map(|_| SymStmtSpec {
            lo: pair(rng),
            hi: pair(rng),
            w: pair(rng),
            r: pair(rng),
        })
        .collect();
    SymProgSpec {
        min_n: rng.gen_range_i64(1..=3),
        stmts,
    }
}

fn render_sym(spec: &SymProgSpec) -> String {
    let term = |(cn, c): (i64, i64)| {
        let sign = if c < 0 { '-' } else { '+' };
        format!("{}*n {} {}", cn, sign, c.abs())
    };
    let mut out = format!("sym n;\nassume n >= {};\n", spec.min_n);
    for st in &spec.stmts {
        out.push_str(&format!(
            "for i := {} to {} do\n  aa(i + {}) := aa(i + {}) + 1;\nendfor\n",
            term(st.lo),
            term(st.hi),
            term(st.w),
            term(st.r),
        ));
    }
    out
}

fn prop_symbolic_prefilter_is_conservative(spec: &SymProgSpec) -> Result<(), String> {
    check_conservative(&render_sym(spec))
}

#[test]
fn symbolic_prefilter_rejections_agree_with_the_omega_test() {
    check(
        &PropConfig::with_cases(400),
        gen_sym_spec,
        prop_symbolic_prefilter_is_conservative,
    );
}

#[test]
fn symbolic_prefilter_fires_on_the_generated_family_at_all() {
    // Guard against the symbolic property passing vacuously: the family
    // must produce SymbolicRange rejections specifically (a zero `n`
    // coefficient degenerates a bound to a constant, so plain Range
    // rejections also occur — they don't count).
    let mut symbolic = 0u64;
    for seed in 0..64 {
        let spec = gen_sym_spec(&mut Rng::from_seed(seed));
        let program = tiny::Program::parse(&render_sym(&spec)).unwrap();
        let info = tiny::analyze(&program).unwrap();
        for (a, sa, b, sb, _) in pairs_of(&info.stmts) {
            let reason =
                prefilter_pair(&info.stmts[a], sa, &info.stmts[b], sb, &info.assumptions);
            if reason == Some(depend::SkipReason::SymbolicRange) {
                symbolic += 1;
            }
        }
    }
    assert!(symbolic > 0, "the symbolic range test never fired");
}
