//! Property test: random programs generated from the AST print to source
//! that parses back to the same AST (modulo statement labels, which are
//! assigned in source order and therefore preserved).

use proptest::prelude::*;
use tiny::ast::{Access, Assign, BinOp, Expr, ForLoop, IfStmt, Program, RelOp, Relation, Stmt};

fn ident_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords; single letters with an index are safe.
    (0usize..6, 0usize..4).prop_map(|(a, b)| {
        let letters = ["aa", "bb", "cc", "ii", "jj2", "kk"];
        format!("{}{}", letters[a], b)
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-9i64..=9).prop_map(Expr::Int),
        ident_strategy().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            // Mirror the parser: negated literals fold into the literal.
            inner.clone().prop_map(|e| match e {
                Expr::Int(n) => Expr::Int(-n),
                other => Expr::Neg(Box::new(other)),
            }),
            (ident_strategy(), proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, args)| Expr::Call(n, args)),
        ]
    })
}

fn access_strategy() -> impl Strategy<Value = Access> {
    (
        ident_strategy(),
        proptest::collection::vec(expr_strategy(), 0..3),
    )
        .prop_map(|(array, subs)| Access { array, subs })
}

fn relop_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Le),
        Just(RelOp::Lt),
        Just(RelOp::Ge),
        Just(RelOp::Gt),
        Just(RelOp::Eq),
        Just(RelOp::Ne),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let assign = (access_strategy(), expr_strategy()).prop_map(|(lhs, rhs)| {
        Stmt::Assign(Assign { label: 0, lhs, rhs })
    });
    assign.prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            (
                ident_strategy(),
                expr_strategy(),
                expr_strategy(),
                1i64..=3,
                proptest::collection::vec(inner.clone(), 1..3),
            )
                .prop_map(|(var, lower, upper, step, body)| {
                    Stmt::For(ForLoop {
                        var,
                        lower,
                        upper,
                        step,
                        body,
                    })
                }),
            (
                (expr_strategy(), relop_strategy(), expr_strategy()),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner, 0..2),
            )
                .prop_map(|((lhs, op, rhs), then_body, else_body)| {
                    Stmt::If(IfStmt {
                        conds: vec![Relation { lhs, op, rhs }],
                        then_body,
                        else_body,
                    })
                }),
        ]
    })
}

/// Renumbers labels in source order, mirroring what the parser does.
fn renumber(stmts: &mut [Stmt], next: &mut usize) {
    for s in stmts {
        match s {
            Stmt::For(f) => renumber(&mut f.body, next),
            Stmt::If(i) => {
                renumber(&mut i.then_body, next);
                renumber(&mut i.else_body, next);
            }
            Stmt::Assign(a) => {
                a.label = *next;
                *next += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(stmts in proptest::collection::vec(stmt_strategy(), 1..4)) {
        let mut program = Program {
            stmts,
            ..Program::default()
        };
        let mut next = 1;
        renumber(&mut program.stmts, &mut next);
        let printed = program.to_string();
        let reparsed = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&program.stmts, &reparsed.stmts, "\n{}", printed);
    }
}
