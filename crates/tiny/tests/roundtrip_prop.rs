//! Property test: random programs generated from the AST print to source
//! that parses back to the same AST (modulo statement labels, which are
//! assigned in source order and therefore preserved). Runs on the
//! in-repo `harness` property framework with hand-written AST shrinkers
//! (identifiers are never shrunk — that would minimize into parse
//! errors instead of the original bug).

use harness::prop::{check_value, check_with, Config};
use harness::{prop_assert_eq, Rng};
use tiny::ast::{Access, Assign, BinOp, Expr, ForLoop, IfStmt, Program, RelOp, Relation, Stmt};

fn gen_ident(rng: &mut Rng) -> String {
    // Avoid keywords; single letters with an index are safe.
    let letters = ["aa", "bb", "cc", "ii", "jj2", "kk"];
    format!(
        "{}{}",
        rng.choose(&letters),
        rng.gen_range_usize(0..4)
    )
}

/// Mirrors the old `prop_recursive(3, …)` expression distribution.
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return if rng.flip() {
            Expr::Int(rng.gen_range_i64(-9..=9))
        } else {
            Expr::Var(gen_ident(rng))
        };
    }
    match rng.gen_range_usize(0..=4) {
        0 => Expr::bin(BinOp::Add, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)),
        1 => Expr::bin(BinOp::Sub, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)),
        2 => Expr::bin(BinOp::Mul, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)),
        // Mirror the parser: negated literals fold into the literal.
        3 => match gen_expr(rng, depth - 1) {
            Expr::Int(n) => Expr::Int(-n),
            other => Expr::Neg(Box::new(other)),
        },
        _ => {
            let n = rng.gen_range_usize(1..=2);
            Expr::Call(
                gen_ident(rng),
                (0..n).map(|_| gen_expr(rng, depth - 1)).collect(),
            )
        }
    }
}

fn gen_access(rng: &mut Rng) -> Access {
    let n = rng.gen_range_usize(0..=2);
    Access {
        array: gen_ident(rng),
        subs: (0..n).map(|_| gen_expr(rng, 3)).collect(),
    }
}

fn gen_relop(rng: &mut Rng) -> RelOp {
    *rng.choose(&[
        RelOp::Le,
        RelOp::Lt,
        RelOp::Ge,
        RelOp::Gt,
        RelOp::Eq,
        RelOp::Ne,
    ])
}

fn gen_assign(rng: &mut Rng) -> Stmt {
    Stmt::Assign(Assign {
        label: 0,
        lhs: gen_access(rng),
        rhs: gen_expr(rng, 3),
    })
}

/// Mirrors the old `prop_recursive(3, …)` statement distribution.
fn gen_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    if depth == 0 || rng.gen_bool(0.4) {
        return gen_assign(rng);
    }
    if rng.flip() {
        let n = rng.gen_range_usize(1..=2);
        Stmt::For(ForLoop {
            var: gen_ident(rng),
            lower: gen_expr(rng, 2),
            upper: gen_expr(rng, 2),
            step: rng.gen_range_i64(1..=3),
            body: (0..n).map(|_| gen_stmt(rng, depth - 1)).collect(),
        })
    } else {
        let nt = rng.gen_range_usize(1..=2);
        let ne = rng.gen_range_usize(0..=1);
        Stmt::If(IfStmt {
            conds: vec![Relation {
                lhs: gen_expr(rng, 2),
                op: gen_relop(rng),
                rhs: gen_expr(rng, 2),
            }],
            then_body: (0..nt).map(|_| gen_stmt(rng, depth - 1)).collect(),
            else_body: (0..ne).map(|_| gen_stmt(rng, depth - 1)).collect(),
        })
    }
}

// ---- shrinkers (never touch identifiers) ----

fn shrink_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Int(n) => {
            if *n == 0 {
                vec![]
            } else {
                vec![Expr::Int(0), Expr::Int(n / 2)]
            }
        }
        Expr::Var(_) => vec![Expr::Int(0)],
        Expr::Bin(_, a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            out.extend(
                shrink_expr(a)
                    .into_iter()
                    .map(|s| Expr::Bin(binop_of(e), Box::new(s), b.clone())),
            );
            out.extend(
                shrink_expr(b)
                    .into_iter()
                    .map(|s| Expr::Bin(binop_of(e), a.clone(), Box::new(s))),
            );
            out
        }
        Expr::Neg(inner) => {
            let mut out = vec![(**inner).clone()];
            out.extend(shrink_expr(inner).into_iter().map(|s| match s {
                Expr::Int(n) => Expr::Int(-n),
                other => Expr::Neg(Box::new(other)),
            }));
            out
        }
        Expr::Call(name, args) => {
            let mut out: Vec<Expr> = args.to_vec();
            out.extend(
                harness::prop::shrink_vec(args, shrink_expr, 1)
                    .into_iter()
                    .map(|a| Expr::Call(name.clone(), a)),
            );
            out
        }
    }
}

fn binop_of(e: &Expr) -> BinOp {
    match e {
        Expr::Bin(op, _, _) => *op,
        _ => unreachable!("binop_of on non-binary expression"),
    }
}

fn shrink_stmt(s: &Stmt) -> Vec<Stmt> {
    match s {
        Stmt::Assign(a) => {
            let mut out = Vec::new();
            out.extend(
                harness::prop::shrink_vec(&a.lhs.subs, shrink_expr, 0)
                    .into_iter()
                    .map(|subs| {
                        Stmt::Assign(Assign {
                            label: a.label,
                            lhs: Access {
                                array: a.lhs.array.clone(),
                                subs,
                            },
                            rhs: a.rhs.clone(),
                        })
                    }),
            );
            out.extend(shrink_expr(&a.rhs).into_iter().map(|rhs| {
                Stmt::Assign(Assign {
                    label: a.label,
                    lhs: a.lhs.clone(),
                    rhs,
                })
            }));
            out
        }
        Stmt::For(f) => {
            let mut out: Vec<Stmt> = f.body.to_vec();
            out.extend(
                harness::prop::shrink_vec(&f.body, shrink_stmt, 1)
                    .into_iter()
                    .map(|body| Stmt::For(ForLoop { body, ..f.clone() })),
            );
            out.extend(
                shrink_expr(&f.lower)
                    .into_iter()
                    .map(|lower| Stmt::For(ForLoop { lower, ..f.clone() })),
            );
            out.extend(
                shrink_expr(&f.upper)
                    .into_iter()
                    .map(|upper| Stmt::For(ForLoop { upper, ..f.clone() })),
            );
            out
        }
        Stmt::If(i) => {
            let mut out: Vec<Stmt> = i.then_body.iter().chain(&i.else_body).cloned().collect();
            out.extend(
                harness::prop::shrink_vec(&i.then_body, shrink_stmt, 1)
                    .into_iter()
                    .map(|then_body| {
                        Stmt::If(IfStmt {
                            then_body,
                            ..i.clone()
                        })
                    }),
            );
            out.extend(
                harness::prop::shrink_vec(&i.else_body, shrink_stmt, 0)
                    .into_iter()
                    .map(|else_body| {
                        Stmt::If(IfStmt {
                            else_body,
                            ..i.clone()
                        })
                    }),
            );
            out
        }
    }
}

/// Renumbers labels in source order, mirroring what the parser does.
fn renumber(stmts: &mut [Stmt], next: &mut usize) {
    for s in stmts {
        match s {
            Stmt::For(f) => renumber(&mut f.body, next),
            Stmt::If(i) => {
                renumber(&mut i.then_body, next);
                renumber(&mut i.else_body, next);
            }
            Stmt::Assign(a) => {
                a.label = *next;
                *next += 1;
            }
        }
    }
}

/// The property: printing then reparsing reproduces the statement list.
fn prop_roundtrip(stmts: &Vec<Stmt>) -> Result<(), String> {
    let mut program = Program {
        stmts: stmts.clone(),
        ..Program::default()
    };
    let mut next = 1;
    renumber(&mut program.stmts, &mut next);
    let printed = program.to_string();
    let reparsed = Program::parse(&printed)
        .map_err(|e| format!("reparse failed: {e}\n{printed}"))?;
    prop_assert_eq!(&program.stmts, &reparsed.stmts, "\n{}", printed);
    Ok(())
}

#[test]
fn print_parse_roundtrip() {
    check_with(
        &Config::with_cases(256),
        |rng| {
            let n = rng.gen_range_usize(1..=3);
            (0..n).map(|_| gen_stmt(rng, 3)).collect::<Vec<_>>()
        },
        |stmts| harness::prop::shrink_vec(stmts, shrink_stmt, 1),
        prop_roundtrip,
    );
}

// ---- named regressions, ported from the historical proptest seed file
// (`roundtrip_prop.proptest-regressions`) before it was deleted. ----

/// `cc c958e809…`: a subscript-free assignment whose right-hand side
/// folds `-1 + 0`; shrank to
/// `aa0 := (-1) + 0` (printing once lost the parenthesized literal).
#[test]
fn regression_negative_literal_in_addition() {
    let stmts = vec![Stmt::Assign(Assign {
        label: 0,
        lhs: Access {
            array: "aa0".to_string(),
            subs: vec![],
        },
        rhs: Expr::bin(BinOp::Add, Expr::Int(-1), Expr::Int(0)),
    })];
    check_value(&stmts, prop_roundtrip);
}

/// `cc 19312929…`: a `for` whose body assigns through a
/// nested-parenthesized zero subscript; shrank to
/// `for aa0 := 0 to 0 do aa0(0 + (0 + 0)) := 0`.
#[test]
fn regression_nested_zero_subscript_in_loop() {
    let stmts = vec![Stmt::For(ForLoop {
        var: "aa0".to_string(),
        lower: Expr::Int(0),
        upper: Expr::Int(0),
        step: 1,
        body: vec![Stmt::Assign(Assign {
            label: 0,
            lhs: Access {
                array: "aa0".to_string(),
                subs: vec![Expr::bin(
                    BinOp::Add,
                    Expr::Int(0),
                    Expr::bin(BinOp::Add, Expr::Int(0), Expr::Int(0)),
                )],
            },
            rhs: Expr::Int(0),
        })],
    })];
    check_value(&stmts, prop_roundtrip);
}
