//! Semantic analysis: flattens the loop tree into per-statement records,
//! classifies expressions as affine or opaque, and distributes `min`/`max`
//! loop bounds into conjunctions of affine pieces.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{name_key, Access, Affine, BinOp, Expr, Program, Stmt};
use crate::error::{Error, Result};

/// One enclosing loop of a statement, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopCtx {
    /// The loop variable (as written).
    pub var: String,
    /// Lower-bound pieces: the loop starts at `max(pieces)`. `None` when
    /// the bound is not affine (e.g. contains an array element).
    pub lower: Option<Vec<Affine>>,
    /// Upper-bound pieces: the loop ends at `min(pieces)`; `None` if
    /// opaque.
    pub upper: Option<Vec<Affine>>,
    /// Original bound expressions, for display and for the symbolic
    /// analysis of opaque bounds.
    pub lower_expr: Expr,
    /// Original upper bound expression.
    pub upper_expr: Expr,
    /// The loop step (>= 1).
    pub step: i64,
}

/// One `if` guard enclosing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Guard {
    /// The relation tested.
    pub relation: crate::ast::Relation,
    /// True for statements in an `else` branch (the relation is falsified).
    pub negated: bool,
}

/// A flattened statement: an assignment plus its loop context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtInfo {
    /// 1-based statement label (source order).
    pub label: usize,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopCtx>,
    /// Tree path: the statement's index chain through nested bodies;
    /// `path[j]` for `j < loops.len()` selects the `j`-th enclosing loop,
    /// and the final entry the statement itself.
    pub path: Vec<usize>,
    /// The written access.
    pub write: Access,
    /// All read accesses (right-hand side plus reads nested inside
    /// subscripts on either side), in source order.
    pub reads: Vec<Access>,
    /// The assignment's right-hand side expression.
    pub rhs: crate::ast::Expr,
    /// Enclosing `if` guards, outermost first.
    pub guards: Vec<Guard>,
    /// For each enclosing loop, the index within [`StmtInfo::path`] of the
    /// loop's own entry (loops and `if` branches interleave in the path).
    pub loop_path_idx: Vec<usize>,
}

impl StmtInfo {
    /// Number of loops shared with `other` (identical loop instances).
    /// Loops and `if` branches interleave in the tree path, so the check
    /// compares full path prefixes up to each loop's own entry.
    pub fn common_loops(&self, other: &StmtInfo) -> usize {
        let mut n = 0;
        while n < self.loops.len() && n < other.loops.len() {
            let ia = self.loop_path_idx[n];
            let ib = other.loop_path_idx[n];
            if ia != ib || self.path[..=ia] != other.path[..=ia] {
                break;
            }
            n += 1;
        }
        n
    }

    /// Whether this statement lexically precedes `other` (strict source
    /// order of the statement bodies; a statement never precedes itself).
    pub fn lexically_before(&self, other: &StmtInfo) -> bool {
        self.path < other.path
    }
}

/// The analyzed program: flattened statements plus symbol classification.
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Flattened statements in source order.
    pub stmts: Vec<StmtInfo>,
    /// Canonical names of symbolic constants (declared plus inferred).
    pub syms: BTreeSet<String>,
    /// Canonical names of everything written (arrays and scalars).
    pub written: BTreeSet<String>,
    /// User assumptions carried over from the program.
    pub assumptions: Vec<crate::ast::Relation>,
    /// Declared arrays (canonical name -> decl), for bounds information.
    pub arrays: BTreeMap<String, crate::ast::ArrayDecl>,
}

impl ProgramInfo {
    /// Looks up a statement by label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist.
    pub fn stmt(&self, label: usize) -> &StmtInfo {
        self.stmts
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("no statement labeled {label}"))
    }
}

/// Analyzes a parsed program.
///
/// # Errors
///
/// Returns [`Error::Sema`] for duplicate loop variables in a nest or a
/// write to a loop variable.
///
/// # Examples
///
/// ```
/// let p = tiny::Program::parse("for i := 1 to n do a(i) := a(i-1); endfor")?;
/// let info = tiny::analyze(&p)?;
/// assert_eq!(info.stmts.len(), 1);
/// assert_eq!(info.stmts[0].reads.len(), 1);
/// assert!(info.syms.contains("n"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(program: &Program) -> Result<ProgramInfo> {
    // Pass 1: collect every written name (scalars written become 0-dim
    // arrays, not symbolic constants).
    let mut written = BTreeSet::new();
    collect_written(&program.stmts, &mut written);

    let mut info = ProgramInfo {
        stmts: Vec::new(),
        syms: program.syms.iter().map(|s| name_key(s)).collect(),
        written,
        assumptions: program.assumptions.clone(),
        arrays: program.arrays.clone(),
    };
    let mut loops: Vec<LoopCtx> = Vec::new();
    let mut loop_vars: Vec<String> = Vec::new();
    let mut path = Vec::new();
    let mut guards = Vec::new();
    let mut loop_path_idx = Vec::new();
    flatten(
        &program.stmts,
        &mut loops,
        &mut loop_vars,
        &mut path,
        &mut guards,
        &mut loop_path_idx,
        &mut info,
    )?;
    Ok(info)
}

fn collect_written(stmts: &[Stmt], written: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::For(f) => collect_written(&f.body, written),
            Stmt::If(i) => {
                collect_written(&i.then_body, written);
                collect_written(&i.else_body, written);
            }
            Stmt::Assign(a) => {
                written.insert(name_key(&a.lhs.array));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn flatten(
    stmts: &[Stmt],
    loops: &mut Vec<LoopCtx>,
    loop_vars: &mut Vec<String>,
    path: &mut Vec<usize>,
    guards: &mut Vec<Guard>,
    loop_path_idx: &mut Vec<usize>,
    info: &mut ProgramInfo,
) -> Result<()> {
    for (i, s) in stmts.iter().enumerate() {
        path.push(i);
        match s {
            Stmt::For(f) => {
                let key = name_key(&f.var);
                if loop_vars.contains(&key) {
                    return Err(Error::Sema {
                        message: format!("duplicate loop variable `{}` in nest", f.var),
                    });
                }
                if info.written.contains(&key) {
                    return Err(Error::Sema {
                        message: format!("loop variable `{}` is assigned in the program", f.var),
                    });
                }
                if f.step < 1 {
                    return Err(Error::Sema {
                        message: format!(
                            "loop `{}` has step {}: run \
                             loop_normalize::normalize_steps first",
                            f.var, f.step
                        ),
                    });
                }
                // Loop variables in scope for the bounds are the OUTER ones.
                let scalar_env = |name: &str| {
                    let k = name_key(name);
                    !info.written.contains(&k)
                };
                let lower = bound_pieces(&f.lower, Dir::Lower, &scalar_env);
                let upper = bound_pieces(&f.upper, Dir::Upper, &scalar_env);
                // Record symbolic constants appearing in the bounds.
                record_syms(&f.lower, loop_vars, info);
                record_syms(&f.upper, loop_vars, info);
                loops.push(LoopCtx {
                    var: f.var.clone(),
                    lower,
                    upper,
                    lower_expr: f.lower.clone(),
                    upper_expr: f.upper.clone(),
                    step: f.step,
                });
                loop_vars.push(key);
                loop_path_idx.push(path.len() - 1);
                flatten(&f.body, loops, loop_vars, path, guards, loop_path_idx, info)?;
                loop_path_idx.pop();
                loop_vars.pop();
                loops.pop();
            }
            Stmt::If(cond) => {
                for r in &cond.conds {
                    record_syms(&r.lhs, loop_vars, info);
                    record_syms(&r.rhs, loop_vars, info);
                }
                // Then branch: all relations hold.
                let depth = guards.len();
                for r in &cond.conds {
                    guards.push(Guard {
                        relation: r.clone(),
                        negated: false,
                    });
                }
                path.push(0);
                flatten(
                    &cond.then_body,
                    loops,
                    loop_vars,
                    path,
                    guards,
                    loop_path_idx,
                    info,
                )?;
                path.pop();
                guards.truncate(depth);
                // Else branch: a single relation negates conjunctively;
                // a multi-relation guard's negation is disjunctive, so the
                // else branch carries no constraint (conservative).
                if !cond.else_body.is_empty() {
                    if cond.conds.len() == 1 {
                        guards.push(Guard {
                            relation: cond.conds[0].clone(),
                            negated: true,
                        });
                    }
                    path.push(1);
                    flatten(
                        &cond.else_body,
                        loops,
                        loop_vars,
                        path,
                        guards,
                        loop_path_idx,
                        info,
                    )?;
                    path.pop();
                    guards.truncate(depth);
                }
            }
            Stmt::Assign(a) => {
                let mut reads = Vec::new();
                // Reads nested in the write's subscripts.
                for sub in &a.lhs.subs {
                    collect_reads(sub, info, &mut reads);
                    record_syms(sub, loop_vars, info);
                }
                collect_reads(&a.rhs, info, &mut reads);
                record_syms(&a.rhs, loop_vars, info);
                info.stmts.push(StmtInfo {
                    label: a.label,
                    loops: loops.clone(),
                    path: path.clone(),
                    write: a.lhs.clone(),
                    reads,
                    rhs: a.rhs.clone(),
                    guards: guards.clone(),
                    loop_path_idx: loop_path_idx.clone(),
                });
            }
        }
        path.pop();
    }
    Ok(())
}

/// Collects array reads from an expression (recursing into subscripts of
/// nested accesses and into intrinsic arguments). A bare variable that is
/// written somewhere in the program counts as a scalar (0-dim) read.
fn collect_reads(e: &Expr, info: &ProgramInfo, out: &mut Vec<Access>) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(name) => {
            let k = name_key(name);
            if info.written.contains(&k) || info.arrays.contains_key(&k) {
                out.push(Access {
                    array: name.clone(),
                    subs: vec![],
                });
            }
        }
        Expr::Call(name, args) => {
            if Expr::is_intrinsic_name(name) {
                for a in args {
                    collect_reads(a, info, out);
                }
            } else {
                // Subscript reads come first (they execute first).
                for a in args {
                    collect_reads(a, info, out);
                }
                out.push(Access {
                    array: name.clone(),
                    subs: args.clone(),
                });
            }
        }
        Expr::Neg(inner) => collect_reads(inner, info, out),
        Expr::Bin(_, l, r) => {
            collect_reads(l, info, out);
            collect_reads(r, info, out);
        }
    }
}

/// Records free scalar variables (not loop variables, not written) as
/// symbolic constants.
fn record_syms(e: &Expr, loop_vars: &[String], info: &mut ProgramInfo) {
    e.walk(&mut |node| {
        if let Expr::Var(name) = node {
            let k = name_key(name);
            if !loop_vars.contains(&k) && !info.written.contains(&k) {
                info.syms.insert(k);
            }
        }
    });
}

/// Which bound of the loop an expression provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Lower,
    Upper,
}

/// The "shape" of a piecewise-affine expression: a pointwise max, a
/// pointwise min, or a single affine piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Single,
    Max,
    Min,
}

impl Shape {
    fn flip(self) -> Shape {
        match self {
            Shape::Single => Shape::Single,
            Shape::Max => Shape::Min,
            Shape::Min => Shape::Max,
        }
    }

    fn merge(self, other: Shape) -> Option<Shape> {
        match (self, other) {
            (Shape::Single, s) | (s, Shape::Single) => Some(s),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }
}

/// Converts a bound expression into affine pieces: for a lower bound the
/// loop starts at the max of the pieces, for an upper bound it ends at the
/// min. Returns `None` when the bound is opaque (non-affine or the wrong
/// kind of extremum, e.g. `min` as a lower bound).
pub fn bound_pieces(
    e: &Expr,
    dir: impl Into<BoundDir>,
    is_scalar: &impl Fn(&str) -> bool,
) -> Option<Vec<Affine>> {
    let dir = dir.into();
    let (pieces, shape) = pieces(e, is_scalar)?;
    let ok = match dir {
        BoundDir::Lower => shape != Shape::Min,
        BoundDir::Upper => shape != Shape::Max,
    };
    if ok {
        Some(pieces)
    } else {
        None
    }
}

/// Public mirror of the internal direction enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundDir {
    /// The expression is a loop lower bound (`max` allowed).
    Lower,
    /// The expression is a loop upper bound (`min` allowed).
    Upper,
}

impl From<Dir> for BoundDir {
    fn from(d: Dir) -> BoundDir {
        match d {
            Dir::Lower => BoundDir::Lower,
            Dir::Upper => BoundDir::Upper,
        }
    }
}

fn pieces(e: &Expr, is_scalar: &impl Fn(&str) -> bool) -> Option<(Vec<Affine>, Shape)> {
    match e {
        Expr::Int(n) => Some((vec![Affine::constant(*n)], Shape::Single)),
        Expr::Var(name) => {
            if is_scalar(name) {
                Some((vec![Affine::var(name)], Shape::Single))
            } else {
                None // written scalars are not symbolic
            }
        }
        Expr::Call(name, args) => match name_key(name).as_str() {
            "max" => {
                let mut out = Vec::new();
                for a in args {
                    let (p, s) = pieces(a, is_scalar)?;
                    if s == Shape::Min {
                        return None;
                    }
                    out.extend(p);
                }
                Some((out, Shape::Max))
            }
            "min" => {
                let mut out = Vec::new();
                for a in args {
                    let (p, s) = pieces(a, is_scalar)?;
                    if s == Shape::Max {
                        return None;
                    }
                    out.extend(p);
                }
                Some((out, Shape::Min))
            }
            _ => None, // array access or non-affine intrinsic
        },
        Expr::Neg(inner) => {
            let (p, s) = pieces(inner, is_scalar)?;
            Some((p.iter().map(|a| a.scale(-1)).collect(), s.flip()))
        }
        Expr::Bin(op, l, r) => {
            match op {
                BinOp::Add | BinOp::Sub => {
                    let (pl, sl) = pieces(l, is_scalar)?;
                    let (pr, sr) = pieces(r, is_scalar)?;
                    let (pr, sr) = if *op == BinOp::Sub {
                        (pr.iter().map(|a| a.scale(-1)).collect::<Vec<_>>(), sr.flip())
                    } else {
                        (pr, sr)
                    };
                    let shape = sl.merge(sr)?;
                    // max(A,B) + max(C,D) = max over pairwise sums.
                    let mut out = Vec::with_capacity(pl.len() * pr.len());
                    for a in &pl {
                        for b in &pr {
                            out.push(a.add(b));
                        }
                    }
                    Some((out, shape))
                }
                BinOp::Mul => {
                    let (pl, sl) = pieces(l, is_scalar)?;
                    let (pr, sr) = pieces(r, is_scalar)?;
                    // One side must be a single constant piece.
                    let (k, pieces_v, shape) = if pl.len() == 1 && pl[0].is_constant() {
                        (pl[0].constant, pr, sr)
                    } else if pr.len() == 1 && pr[0].is_constant() {
                        (pr[0].constant, pl, sl)
                    } else {
                        return None;
                    };
                    let shape = if k < 0 { shape.flip() } else { shape };
                    Some((pieces_v.iter().map(|a| a.scale(k)).collect(), shape))
                }
                BinOp::Div => None,
            }
        }
    }
}

/// Converts an expression to a single affine form over scalars accepted by
/// `is_scalar` (loop variables and symbolic constants). Returns `None` for
/// anything opaque: array accesses, products of variables, divisions,
/// `min`/`max`.
pub fn affine_of(e: &Expr, is_scalar: &impl Fn(&str) -> bool) -> Option<Affine> {
    let (p, s) = pieces(e, is_scalar)?;
    if s == Shape::Single || p.len() == 1 {
        Some(p.into_iter().next().expect("non-empty pieces"))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    fn everything_scalar(_: &str) -> bool {
        true
    }

    #[test]
    fn analyze_flattens_statements() {
        let p = Program::parse(
            "
            for i := 1 to n do
              for j := 2 to m do
                a(j) := a(j-1);
              endfor
              b(i) := a(m);
            endfor
            ",
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        assert_eq!(info.stmts.len(), 2);
        let s1 = &info.stmts[0];
        assert_eq!(s1.loops.len(), 2);
        assert_eq!(s1.loops[0].var, "i");
        assert_eq!(s1.loops[1].var, "j");
        assert_eq!(s1.path, vec![0, 0, 0]);
        let s2 = &info.stmts[1];
        assert_eq!(s2.loops.len(), 1);
        assert_eq!(s2.path, vec![0, 1]);
        assert_eq!(s1.common_loops(s2), 1);
        assert!(s1.lexically_before(s2));
        assert!(!s2.lexically_before(s1));
    }

    #[test]
    fn syms_and_written_classification() {
        let p = Program::parse(
            "
            for i := 1 to n do
              k := k + i;
              a(i) := k + eps;
            endfor
            ",
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        assert!(info.syms.contains("n"));
        assert!(info.syms.contains("eps"));
        assert!(!info.syms.contains("k"), "written scalars are not symbolic");
        assert!(info.written.contains("k"));
        // a(i) := k + eps reads the scalar k.
        let s2 = &info.stmts[1];
        assert_eq!(s2.reads.len(), 1);
        assert_eq!(s2.reads[0].array, "k");
    }

    #[test]
    fn nested_subscript_reads_collected() {
        let p = Program::parse("for i := 1 to n do a(q(i)) := a(q(i+1)-1) + c(i); endfor")
            .unwrap();
        let info = analyze(&p).unwrap();
        let s = &info.stmts[0];
        // Reads: q(i) [from lhs subscript], q(i+1), a(q(i+1)-1), c(i).
        let names: Vec<&str> = s.reads.iter().map(|r| r.array.as_str()).collect();
        assert_eq!(names, vec!["q", "q", "a", "c"]);
    }

    #[test]
    fn negative_step_rejected_with_guidance() {
        let mut p = Program::default();
        p.stmts.push(crate::ast::Stmt::For(crate::ast::ForLoop {
            var: "k".into(),
            lower: Expr::Int(9),
            upper: Expr::Int(0),
            step: -1,
            body: vec![crate::ast::Stmt::Assign(crate::ast::Assign {
                label: 1,
                lhs: Access {
                    array: "a".into(),
                    subs: vec![Expr::Var("k".into())],
                },
                rhs: Expr::Int(0),
            })],
        }));
        let err = analyze(&p).unwrap_err();
        assert!(err.to_string().contains("normalize_steps"), "{err}");
        // After normalization it analyzes fine.
        let n = crate::loop_normalize::normalize_steps(&p).unwrap();
        assert!(analyze(&n).is_ok());
    }

    #[test]
    fn duplicate_loop_variable_rejected() {
        let p = Program::parse(
            "for i := 1 to n do for i := 1 to n do a(i) := 0; endfor endfor",
        )
        .unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn assigned_loop_variable_rejected() {
        let p = Program::parse("for i := 1 to n do i := 3; endfor").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn max_lower_bound_distributes() {
        // max(-m,-j) - i  =>  pieces { -m - i, -j - i }.
        let p = Program::parse("for jj := max(0-m, 0-j) - i to -1 do a(jj) := 0; endfor")
            .unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        let pieces = bound_pieces(&f.lower, BoundDir::Lower, &everything_scalar).unwrap();
        assert_eq!(pieces.len(), 2);
        assert!(pieces.iter().any(|a| a.coef("m") == -1 && a.coef("i") == -1));
        assert!(pieces.iter().any(|a| a.coef("j") == -1 && a.coef("i") == -1));
    }

    #[test]
    fn min_as_lower_bound_is_opaque() {
        let p = Program::parse("for i := min(a, b) to 10 do x(i) := 0; endfor").unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert!(bound_pieces(&f.lower, BoundDir::Lower, &everything_scalar).is_none());
        // But it is fine as an upper bound.
        assert!(bound_pieces(&f.lower, BoundDir::Upper, &everything_scalar).is_some());
    }

    #[test]
    fn negation_flips_min_max() {
        // -min(a,b) = max(-a,-b): allowed as a lower bound.
        let p = Program::parse("for i := -min(a, b) to 10 do x(i) := 0; endfor").unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        let pieces = bound_pieces(&f.lower, BoundDir::Lower, &everything_scalar).unwrap();
        assert_eq!(pieces.len(), 2);
    }

    #[test]
    fn affine_of_handles_scaling() {
        let p = Program::parse("x := 2 * (i - 3) + j;").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        let aff = affine_of(&a.rhs, &everything_scalar).unwrap();
        assert_eq!(aff.coef("i"), 2);
        assert_eq!(aff.coef("j"), 1);
        assert_eq!(aff.constant, -6);
    }

    #[test]
    fn affine_of_rejects_products_and_array_refs() {
        let p = Program::parse("x := i * j; y := a(i);").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        assert!(affine_of(&a.rhs, &everything_scalar).is_none());
        let Stmt::Assign(b) = &p.stmts[1] else { panic!() };
        assert!(affine_of(&b.rhs, &everything_scalar).is_none());
    }

    #[test]
    fn opaque_bounds_reported_as_none() {
        // Array element in a loop bound (Example 9 of the paper).
        let p = Program::parse("for j := b(i) to b(i+1)-1 do a(j) := 0; endfor").unwrap();
        let info = analyze(&p).unwrap();
        assert!(info.stmts[0].loops[0].lower.is_none());
        assert!(info.stmts[0].loops[0].upper.is_none());
    }

    #[test]
    fn cholsky_like_bounds() {
        let p = Program::parse(
            "
            for j := 0 to n do
              for i := max(-m, -j) to -1 do
                for jj := max(-m, -j) - i to -1 do
                  a(jj, i, j) := 0;
                endfor
              endfor
            endfor
            ",
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        let s = &info.stmts[0];
        assert_eq!(s.loops.len(), 3);
        assert_eq!(s.loops[1].lower.as_ref().unwrap().len(), 2);
        assert_eq!(s.loops[2].lower.as_ref().unwrap().len(), 2);
        assert_eq!(s.loops[2].upper.as_ref().unwrap().len(), 1);
    }
}
