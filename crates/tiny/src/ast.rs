//! Abstract syntax for the tiny loop language.
//!
//! The language is a restricted structured-loop form in the spirit of
//! Michael Wolfe's `tiny` research tool: perfectly or imperfectly nested
//! `for` loops with (possibly `min`/`max`-bounded) bounds, and assignment
//! statements whose left side writes one array element and whose right
//! side reads arbitrarily many.

use std::collections::BTreeMap;
use std::fmt;

/// An identifier. Comparison is case-insensitive via [`name_key`].
pub type Name = String;

/// The canonical (lower-case) lookup key for a name.
pub fn name_key(n: &str) -> String {
    n.to_ascii_lowercase()
}

/// Binary arithmetic operators appearing in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (only relevant for opaque right-hand sides).
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Scalar variable reference (loop variable or symbolic constant).
    Var(Name),
    /// Array element access or intrinsic call: `name(e1, …, en)`.
    Call(Name, Vec<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// True when this is a call to one of the arithmetic intrinsics that
    /// never denote arrays (`sqrt`, `abs`, `min`, `max`, `mod`).
    pub fn is_intrinsic_name(name: &str) -> bool {
        matches!(
            name_key(name).as_str(),
            "sqrt" | "abs" | "min" | "max" | "mod" | "exp" | "log"
        )
    }

    /// Returns the expression with every occurrence of variable `name`
    /// replaced by `replacement` (used by loop normalization).
    pub fn substitute_var(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Int(_) => self.clone(),
            Expr::Var(v) => {
                if name_key(v) == name_key(name) {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Call(f, args) => Expr::Call(
                f.clone(),
                args.iter().map(|a| a.substitute_var(name, replacement)).collect(),
            ),
            Expr::Neg(e) => Expr::Neg(Box::new(e.substitute_var(name, replacement))),
            Expr::Bin(op, l, r) => Expr::bin(
                *op,
                l.substitute_var(name, replacement),
                r.substitute_var(name, replacement),
            ),
        }
    }

    /// Walks the tree, invoking `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Int(_) | Expr::Var(_) => {}
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Neg(e) => e.walk(f),
            Expr::Bin(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
        }
    }
}

impl Expr {
    /// Precedence-aware rendering: parenthesizes only where required.
    ///
    /// A subtlety: anything whose rendering *starts with* `-` (unary
    /// negation, negative literals) must be parenthesized to the right of
    /// a binary `-`, because `--` begins a line comment in the tiny
    /// language. Those forms get the lowest non-zero precedence so the
    /// right-operand rule catches them.
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let prec = match self {
            Expr::Int(n) if *n < 0 => 1,
            Expr::Int(_) | Expr::Var(_) | Expr::Call(..) => 3,
            Expr::Neg(_) => 1,
            Expr::Bin(BinOp::Mul | BinOp::Div, ..) => 1,
            Expr::Bin(BinOp::Add | BinOp::Sub, ..) => 0,
        };
        let need_parens = prec < parent;
        if need_parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Int(n) => write!(f, "{n}")?,
            Expr::Var(v) => write!(f, "{v}")?,
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")?;
            }
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.fmt_prec(f, 2)?;
            }
            Expr::Bin(op, l, r) => {
                l.fmt_prec(f, prec)?;
                write!(f, "{op}")?;
                // Right operand of - and / needs a higher threshold so
                // `a - (b - c)`, `a - (-b)` and `a / (b*c)` keep their
                // parentheses (and `--` never appears).
                let rp = match op {
                    BinOp::Sub | BinOp::Div | BinOp::Mul => 2,
                    // Right-nested additions are parenthesized so the
                    // reparsed tree keeps the original association.
                    BinOp::Add => prec + 1,
                };
                r.fmt_prec(f, rp)?;
            }
        }
        if need_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// An affine expression `Σ cᵢ·nameᵢ + k` over loop variables and symbolic
/// constants. Term keys are canonical names ([`name_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Coefficients per canonical variable name (no zero entries).
    pub terms: BTreeMap<String, i64>,
    /// Constant term.
    pub constant: i64,
}

impl Affine {
    /// The constant `k`.
    pub fn constant(k: i64) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// The single variable `name`.
    pub fn var(name: &str) -> Affine {
        let mut a = Affine::default();
        a.terms.insert(name_key(name), 1);
        a
    }

    /// Adds `c · name` to the expression.
    pub fn add_term(&mut self, name: &str, c: i64) {
        let e = self.terms.entry(name_key(name)).or_insert(0);
        *e += c;
        if *e == 0 {
            self.terms.remove(&name_key(name));
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut r = self.clone();
        for (k, v) in &other.terms {
            let e = r.terms.entry(k.clone()).or_insert(0);
            *e += v;
            if *e == 0 {
                r.terms.remove(k);
            }
        }
        r.constant += other.constant;
        r
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Returns `c · self`.
    pub fn scale(&self, c: i64) -> Affine {
        if c == 0 {
            return Affine::default();
        }
        Affine {
            terms: self.terms.iter().map(|(k, v)| (k.clone(), v * c)).collect(),
            constant: self.constant * c,
        }
    }

    /// The coefficient of `name` (0 when absent).
    pub fn coef(&self, name: &str) -> i64 {
        self.terms.get(&name_key(name)).copied().unwrap_or(0)
    }

    /// True when the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.terms {
            if first {
                match v {
                    1 => write!(f, "{k}")?,
                    -1 => write!(f, "-{k}")?,
                    _ => write!(f, "{v}{k}")?,
                }
                first = false;
            } else if *v >= 0 {
                if *v == 1 {
                    write!(f, "+{k}")?;
                } else {
                    write!(f, "+{v}{k}")?;
                }
            } else if *v == -1 {
                write!(f, "-{k}")?;
            } else {
                write!(f, "{v}{k}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, "+{}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// An array access `array(sub₁, …, subₙ)`; scalars are 0-dimensional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The array name (as written).
    pub array: Name,
    /// Subscript expressions.
    pub subs: Vec<Expr>,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.subs.is_empty() {
            return write!(f, "{}", self.array);
        }
        write!(f, "{}(", self.array)?;
        for (i, s) in self.subs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// An assignment statement `lhs := rhs;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// 1-based statement label, in source order (matching the numbered
    /// statements of the paper's figures).
    pub label: usize,
    /// The written element.
    pub lhs: Access,
    /// The right-hand side.
    pub rhs: Expr,
}

/// A counted `for` loop; the step is a positive integer constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForLoop {
    /// Loop variable (as written).
    pub var: Name,
    /// Lower bound (may contain `max(...)`).
    pub lower: Expr,
    /// Upper bound (may contain `min(...)`).
    pub upper: Expr,
    /// Step (>= 1).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// A conditional statement. The condition is a conjunction of relations
/// (as produced by chained `assume`-style comparisons and `&&`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfStmt {
    /// The guard relations, all of which must hold for the `then` branch.
    pub conds: Vec<Relation>,
    /// Statements executed when the guard holds.
    pub then_body: Vec<Stmt>,
    /// Statements executed otherwise (empty when there is no `else`).
    pub else_body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A `for` loop.
    For(ForLoop),
    /// A conditional.
    If(IfStmt),
    /// An assignment.
    Assign(Assign),
}

/// Relational operators in `assume` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// The complementary relation (`¬(a <= b)` is `a > b`, etc.).
    pub fn negated(self) -> RelOp {
        match self {
            RelOp::Le => RelOp::Gt,
            RelOp::Lt => RelOp::Ge,
            RelOp::Ge => RelOp::Lt,
            RelOp::Gt => RelOp::Le,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelOp::Le => "<=",
            RelOp::Lt => "<",
            RelOp::Ge => ">=",
            RelOp::Gt => ">",
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
        })
    }
}

/// A single relation `lhs op rhs` from an `assume` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Left-hand side.
    pub lhs: Expr,
    /// Operator.
    pub op: RelOp,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A declared array with `lo:hi` extents per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Name as written.
    pub name: Name,
    /// Per-dimension `(lo, hi)` bounds.
    pub dims: Vec<(Expr, Expr)>,
}

/// A whole tiny program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
    /// Declared arrays, keyed by canonical name.
    pub arrays: BTreeMap<String, ArrayDecl>,
    /// Declared symbolic constants (as written).
    pub syms: Vec<Name>,
    /// User assertions about symbolic values.
    pub assumptions: Vec<Relation>,
}

impl Program {
    /// Parses a program from source text.
    ///
    /// # Errors
    ///
    /// Returns lexical or parse errors with positions.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = tiny::Program::parse(
    ///     "for i := 1 to n do a(i) := a(i-1); endfor",
    /// )?;
    /// assert_eq!(p.stmts.len(), 1);
    /// # Ok::<(), tiny::Error>(())
    /// ```
    pub fn parse(src: &str) -> crate::Result<Program> {
        crate::parser::parse(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_arithmetic() {
        let mut a = Affine::var("i");
        a.add_term("j", 2);
        let b = Affine::var("i").scale(3);
        let c = a.add(&b); // 4i + 2j
        assert_eq!(c.coef("i"), 4);
        assert_eq!(c.coef("I"), 4, "case-insensitive lookup");
        assert_eq!(c.coef("j"), 2);
        let d = c.sub(&c);
        assert!(d.is_constant());
        assert_eq!(d.constant, 0);
        assert!(d.terms.is_empty(), "zero terms are dropped");
    }

    #[test]
    fn affine_display() {
        let mut a = Affine::var("i");
        a.add_term("j", -1);
        a.constant = 3;
        assert_eq!(a.to_string(), "i-j+3");
        assert_eq!(Affine::constant(-2).to_string(), "-2");
    }

    #[test]
    fn expr_walk_visits_all() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Call("a".into(), vec![Expr::Var("i".into())]),
            Expr::Int(1),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn intrinsics_recognized() {
        assert!(Expr::is_intrinsic_name("SQRT"));
        assert!(Expr::is_intrinsic_name("min"));
        assert!(!Expr::is_intrinsic_name("a"));
    }

    #[test]
    fn access_display() {
        let a = Access {
            array: "A".into(),
            subs: vec![Expr::Var("i".into()), Expr::Int(0)],
        };
        assert_eq!(a.to_string(), "A(i,0)");
        let s = Access {
            array: "x".into(),
            subs: vec![],
        };
        assert_eq!(s.to_string(), "x");
    }
}
