//! Errors for the tiny frontend.

use std::fmt;

/// Errors produced while lexing, parsing or analyzing a tiny program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A lexical error at the given position.
    Lex {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Explanation.
        message: String,
    },
    /// A parse error at the given position.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Explanation.
        message: String,
    },
    /// A semantic error (e.g. a duplicate loop variable).
    Sema {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            Error::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            Error::Sema { message } => write!(f, "semantic error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for the frontend.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = Error::Parse {
            line: 3,
            col: 7,
            message: "expected `do`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `do`");
    }
}
