//! A restricted fixed-form FORTRAN 77 frontend: enough of the language to
//! accept the paper's Figure 2 (the CHOLSKY NAS kernel) as written —
//! labeled `DO` loops with shared terminators, `CONTINUE`, assignment
//! statements, `REAL` declarations with explicit bounds, and the
//! arithmetic intrinsics. Everything is translated into the [`tiny`
//! AST](crate::ast), so the dependence analyses run unchanged.
//!
//! Supported:
//!
//! * fixed-form comments (`C`, `c`, `*`, `!` in column 1) and column-6
//!   continuation lines;
//! * statement labels (columns 1–5) terminating one or more `DO` loops,
//!   including loops sharing one terminator (`DO 3 … DO 3 … 3 A(…) = …`);
//! * `DO label var = lo, hi [, step]` with a positive constant step;
//! * assignments `lhs = expr` with `**` powers (small constant exponents
//!   are expanded to products; everything else becomes an opaque `pow`);
//! * `REAL`/`INTEGER` declarations (`REAL A(0:IDA, -M:0, 0:N)`);
//! * `SUBROUTINE`, `DATA`, `RETURN`, `END` (recognized and skipped).

use crate::ast::{
    name_key, Access, ArrayDecl, Assign, BinOp, Expr, ForLoop, Program, Stmt,
};
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{SpannedToken, Token};

/// Parses a fixed-form FORTRAN subset into a tiny [`Program`].
///
/// # Errors
///
/// Returns positioned parse errors for unsupported constructs.
///
/// # Examples
///
/// ```
/// let program = tiny::fortran::parse(
///     "      DO 1 I = 1, N
///       A(I) = A(I-1)
///     1 CONTINUE
///       END",
/// )?;
/// assert_eq!(program.stmts.len(), 1);
/// # Ok::<(), tiny::Error>(())
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let logical = logical_lines(src);
    let mut program = Program::default();
    let mut next_stmt_label = 1usize;

    // The loop stack: (terminator label, ForLoop under construction).
    let mut stack: Vec<(u64, ForLoop)> = Vec::new();

    // Pushes a finished statement into the innermost open loop (or the
    // program).
    fn push_stmt(program: &mut Program, stack: &mut [(u64, ForLoop)], s: Stmt) {
        if let Some((_, f)) = stack.last_mut() {
            f.body.push(s);
        } else {
            program.stmts.push(s);
        }
    }

    // Closes every loop awaiting `label` (innermost first).
    fn close_loops(program: &mut Program, stack: &mut Vec<(u64, ForLoop)>, label: u64) {
        while stack.last().is_some_and(|(l, _)| *l == label) {
            let (_, f) = stack.pop().expect("non-empty");
            push_stmt(program, stack, Stmt::For(f));
        }
    }

    for line in logical {
        let mut p = LineParser::new(&line.text, line.line_no)?;
        match p.classify()? {
            Classified::Skip => {}
            Classified::Declaration => {
                p.declarations(&mut program)?;
            }
            Classified::Do => {
                let (terminator, var, lo, hi, step) = p.do_stmt()?;
                stack.push((
                    terminator,
                    ForLoop {
                        var,
                        lower: lo,
                        upper: hi,
                        step,
                        body: Vec::new(),
                    },
                ));
            }
            Classified::Continue => {
                // A labeled CONTINUE only terminates loops.
            }
            Classified::Assignment => {
                let (lhs, rhs) = p.assignment()?;
                let s = Stmt::Assign(Assign {
                    label: next_stmt_label,
                    lhs,
                    rhs,
                });
                next_stmt_label += 1;
                push_stmt(&mut program, &mut stack, s);
            }
        }
        if let Some(label) = line.label {
            close_loops(&mut program, &mut stack, label);
        }
    }
    if let Some((label, _)) = stack.last() {
        return Err(Error::Parse {
            line: 0,
            col: 0,
            message: format!("unterminated DO loop awaiting label {label}"),
        });
    }
    // `DO K = N, 0, -1` loops are normalized automatically — the very
    // preprocessing the paper's authors applied to CHOLSKY by hand.
    crate::loop_normalize::normalize_steps(&program)
}

/// A logical (continuation-joined) source line.
struct LogicalLine {
    label: Option<u64>,
    text: String,
    line_no: u32,
}

/// Splits fixed-form source into logical lines: strips comments, joins
/// continuations, extracts labels.
fn logical_lines(src: &str) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let first = raw.chars().next().unwrap_or(' ');
        if matches!(first, 'C' | 'c' | '*' | '!') || raw.trim().is_empty() {
            continue;
        }
        // Continuation: any non-blank, non-zero character in column 6.
        let cols: Vec<char> = raw.chars().collect();
        let is_continuation = cols.len() > 5 && cols[5] != ' ' && cols[5] != '0'
            && cols[..5].iter().all(|c| c.is_whitespace());
        if is_continuation {
            if let Some(prev) = out.last_mut() {
                prev.text.push(' ');
                prev.text.push_str(&raw[6.min(raw.len())..]);
                continue;
            }
        }
        // Label: digits in columns 1-5.
        let label_field: String = cols.iter().take(5).collect();
        let label = label_field.trim().parse::<u64>().ok();
        let body = if cols.len() > 6 {
            raw[6.min(raw.len())..].to_string()
        } else if label.is_some() {
            String::new()
        } else {
            raw.to_string()
        };
        // Tolerate free-form input too: when there is no label and the
        // line doesn't start with 6 blanks, keep the whole line.
        let text = if label.is_none() && !raw.starts_with("      ") {
            raw.trim().to_string()
        } else {
            body.trim().to_string()
        };
        out.push(LogicalLine {
            label,
            text,
            line_no,
        });
    }
    out
}

enum Classified {
    Skip,
    Declaration,
    Do,
    Continue,
    Assignment,
}

/// Token-level parser for one logical line.
struct LineParser {
    toks: Vec<SpannedToken>,
    pos: usize,
    line_no: u32,
}

impl LineParser {
    fn new(text: &str, line_no: u32) -> Result<LineParser> {
        Ok(LineParser {
            toks: lex(text)?,
            pos: 0,
            line_no,
        })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].token
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::Parse {
            line: self.line_no,
            col: self.toks[self.pos].col,
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        if self.peek() == want {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn classify(&mut self) -> Result<Classified> {
        let kw = match self.peek() {
            Token::Ident(s) => name_key(s),
            Token::Real | Token::IntKw => return Ok(Classified::Declaration),
            Token::Do => "do".to_string(),
            Token::Eof => return Ok(Classified::Skip),
            _ => String::new(),
        };
        Ok(match kw.as_str() {
            "do" => Classified::Do,
            "continue" => Classified::Continue,
            "integer" => Classified::Declaration,
            "subroutine" | "data" | "return" | "end" | "implicit" | "dimension"
            | "parameter" => Classified::Skip,
            "real" => Classified::Declaration,
            _ => Classified::Assignment,
        })
    }

    /// `DO label var = lo, hi [, step]`
    fn do_stmt(&mut self) -> Result<(u64, String, Expr, Expr, i64)> {
        self.expect(&Token::Do)?;
        let terminator = match self.advance() {
            Token::Int(n) if n > 0 => n as u64,
            other => return self.err(format!("expected DO terminator label, found {other}")),
        };
        let var = match self.advance() {
            Token::Ident(s) => s,
            other => return self.err(format!("expected loop variable, found {other}")),
        };
        self.expect(&Token::Eq)?;
        let lo = self.expr()?;
        self.expect(&Token::Comma)?;
        let hi = self.expr()?;
        let step = if self.peek() == &Token::Comma {
            self.advance();
            match self.expr()? {
                Expr::Int(n) if n >= 1 || n == -1 => n,
                Expr::Int(_) => {
                    return self.err(
                        "DO steps other than positive constants and -1 are \
                         unsupported: normalize the loop first",
                    )
                }
                _ => return self.err("DO steps must be integer constants"),
            }
        } else {
            1
        };
        Ok((terminator, var, lo, hi, step))
    }

    /// `REAL A(0:IDA, -M:0, 0:N), B(...), EPSS(0:256)`
    fn declarations(&mut self, program: &mut Program) -> Result<()> {
        self.advance(); // REAL | INTEGER
        loop {
            let name = match self.advance() {
                Token::Ident(s) => s,
                Token::Eof => break,
                other => return self.err(format!("expected array name, found {other}")),
            };
            let mut dims = Vec::new();
            if self.peek() == &Token::LParen {
                self.advance();
                loop {
                    let first = self.expr()?;
                    let dim = if self.peek() == &Token::Colon {
                        self.advance();
                        (first, self.expr()?)
                    } else {
                        (Expr::Int(1), first)
                    };
                    dims.push(dim);
                    if self.peek() == &Token::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            program
                .arrays
                .insert(name_key(&name), ArrayDecl { name, dims });
            if self.peek() == &Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok(())
    }

    /// `lhs = rhs`
    fn assignment(&mut self) -> Result<(Access, Expr)> {
        let array = match self.advance() {
            Token::Ident(s) => s,
            other => return self.err(format!("expected an assignment, found {other}")),
        };
        let subs = if self.peek() == &Token::LParen {
            self.advance();
            let mut subs = Vec::new();
            loop {
                subs.push(self.expr()?);
                if self.peek() == &Token::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            subs
        } else {
            Vec::new()
        };
        self.expect(&Token::Eq)?;
        let rhs = self.expr()?;
        Ok((Access { array, subs }, rhs))
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.power()?;
        loop {
            let op = match self.peek() {
                // `**` lexes as two stars; it is handled in power().
                Token::Star if self.peek_at(1) != &Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.power()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    /// Handles `a ** k`: small constant exponents expand to products, so
    /// `A(L,JJ,J) ** 2` reads the element twice just like the paper's
    /// analysis sees it.
    fn power(&mut self) -> Result<Expr> {
        let base = self.unary()?;
        if self.peek() == &Token::Star && self.peek_at(1) == &Token::Star {
            self.advance();
            self.advance();
            let exp = self.unary()?;
            return Ok(match exp {
                Expr::Int(n) if (1..=4).contains(&n) => {
                    let mut e = base.clone();
                    for _ in 1..n {
                        e = Expr::bin(BinOp::Mul, e, base.clone());
                    }
                    e
                }
                other => Expr::Call("pow".into(), vec![base, other]),
            });
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek() == &Token::Minus {
            self.advance();
            return Ok(match self.unary()? {
                Expr::Int(n) => Expr::Int(-n),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.advance();
                Ok(Expr::Int(n))
            }
            Token::Float(text) => {
                // Floating constants never affect subscripts or bounds;
                // treat them as opaque symbolic values.
                self.advance();
                let name = format!("fconst_{}", text.replace(['.', '+', '-'], "_"));
                Ok(Expr::Var(name))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.advance();
                if self.peek() == &Token::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if self.peek() == &Token::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_do_loop() {
        let p = parse(
            "      DO 1 I = 1, N
      A(I) = A(I-1) + B(I)
    1 CONTINUE
      END",
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 1);
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert_eq!(name_key(&f.var), "i");
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn shared_terminator_closes_both_loops() {
        let p = parse(
            "      DO 2 I = 1, N
      DO 2 J = 1, M
    2 A(I,J) = 0",
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 1);
        let Stmt::For(outer) = &p.stmts[0] else { panic!() };
        assert_eq!(outer.body.len(), 1);
        let Stmt::For(inner) = &outer.body[0] else { panic!() };
        // The labeled assignment is inside the INNER loop.
        assert_eq!(inner.body.len(), 1);
        assert!(matches!(inner.body[0], Stmt::Assign(_)));
    }

    #[test]
    fn declarations_with_negative_bounds() {
        let p = parse("      REAL A(0:IDA, -M:0, 0:N), EPSS(0:256)").unwrap();
        assert_eq!(p.arrays.len(), 2);
        let a = &p.arrays["a"];
        assert_eq!(a.dims.len(), 3);
        assert_eq!(a.dims[1].0, Expr::Neg(Box::new(Expr::Var("M".into()))));
    }

    #[test]
    fn power_expands_to_product() {
        let p = parse("      X = A(L,JJ,J) ** 2").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        let Expr::Bin(BinOp::Mul, l, r) = &a.rhs else {
            panic!("expected product, got {:?}", a.rhs)
        };
        assert_eq!(l, r);
    }

    #[test]
    fn continuation_lines_join() {
        let p = parse(
            "      B(I,L,K+JJ) = B(I,L,K+JJ) -
     &   A(L,-JJ,K+JJ) * B(I,L,K)",
        )
        .unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        // All three reads present on the joined line.
        let mut reads = 0;
        a.rhs.walk(&mut |e| {
            if matches!(e, Expr::Call(n, _) if !Expr::is_intrinsic_name(n)) {
                reads += 1;
            }
        });
        assert_eq!(reads, 3);
    }

    #[test]
    fn step_minus_one_is_normalized_automatically() {
        let p = parse(
            "      DO 1 K = N, 0, -1
    1 A(K) = A(K+1)",
        )
        .unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert_eq!(f.step, 1, "normalized to ascending");
        assert_eq!(f.lower, Expr::Int(0));
        // Other negative steps still carry guidance.
        let err = parse("      DO 1 K = N, 0, -2\n    1 CONTINUE").unwrap_err();
        assert!(err.to_string().contains("-1"), "{err}");
    }

    #[test]
    fn skips_subroutine_data_return_end() {
        let p = parse(
            "      SUBROUTINE CHOLSKY (IDA, NMAT)
      DATA EPS/1E-13/
      DO 1 I = 1, N
    1 A(I) = 0
      RETURN
      END",
        );
        // DATA lines contain '/' tokens; they are skipped before parsing
        // the payload, so this must succeed.
        let p = p.unwrap();
        assert_eq!(p.stmts.len(), 1);
    }
}
