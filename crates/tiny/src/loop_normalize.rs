//! Loop normalization: rewrites `step -1` loops into ascending form, the
//! transformation the paper's authors applied by hand to CHOLSKY's second
//! `K` loop ("NORMALIZED LOOP THAT HAD STEP OF -1", Figure 2's header).
//!
//! `for K := hi downto lo` (iterating `hi, hi−1, …, lo`) becomes
//! `for K' := lo to hi` with every occurrence of `K` in the body and in
//! inner loop bounds replaced by `lo + hi − K'` — the same values in the
//! same order, so all dependences are preserved exactly.

use crate::ast::{Expr, ForLoop, IfStmt, Program, Stmt};
use crate::error::{Error, Result};

/// Rewrites every `step -1` loop into ascending form. Steps other than
/// `1` and `-1` are rejected (their normalization needs non-affine floor
/// division).
///
/// # Errors
///
/// Returns [`Error::Sema`] for unsupported negative steps.
///
/// # Examples
///
/// ```
/// use tiny::ast::{Expr, ForLoop, Program, Stmt};
///
/// // for k := n to 0 step -1 do a(k) := 0; endfor
/// let mut p = Program::default();
/// p.stmts.push(Stmt::For(ForLoop {
///     var: "k".into(),
///     lower: Expr::Var("n".into()),
///     upper: Expr::Int(0),
///     step: -1,
///     body: vec![Stmt::Assign(tiny::ast::Assign {
///         label: 1,
///         lhs: tiny::ast::Access { array: "a".into(), subs: vec![Expr::Var("k".into())] },
///         rhs: Expr::Int(0),
///     })],
/// }));
/// let n = tiny::loop_normalize::normalize_steps(&p)?;
/// let Stmt::For(f) = &n.stmts[0] else { unreachable!() };
/// assert_eq!(f.step, 1);
/// # Ok::<(), tiny::Error>(())
/// ```
pub fn normalize_steps(program: &Program) -> Result<Program> {
    let mut out = program.clone();
    out.stmts = normalize_body(&program.stmts)?;
    Ok(out)
}

fn normalize_body(stmts: &[Stmt]) -> Result<Vec<Stmt>> {
    stmts.iter().map(normalize_stmt).collect()
}

fn normalize_stmt(s: &Stmt) -> Result<Stmt> {
    match s {
        Stmt::Assign(a) => Ok(Stmt::Assign(a.clone())),
        Stmt::If(i) => Ok(Stmt::If(IfStmt {
            conds: i.conds.clone(),
            then_body: normalize_body(&i.then_body)?,
            else_body: normalize_body(&i.else_body)?,
        })),
        Stmt::For(f) => {
            let body = normalize_body(&f.body)?;
            match f.step {
                1.. => Ok(Stmt::For(ForLoop {
                    body,
                    ..f.clone()
                })),
                -1 => {
                    // Descending from `lower` down to `upper`:
                    // K = lower + upper − K', K' ascending upper..lower.
                    let sum = Expr::bin(
                        crate::ast::BinOp::Add,
                        f.lower.clone(),
                        f.upper.clone(),
                    );
                    let replacement = Expr::bin(
                        crate::ast::BinOp::Sub,
                        sum,
                        Expr::Var(f.var.clone()),
                    );
                    let body = body
                        .iter()
                        .map(|s| substitute_stmt(s, &f.var, &replacement))
                        .collect();
                    Ok(Stmt::For(ForLoop {
                        var: f.var.clone(),
                        lower: f.upper.clone(),
                        upper: f.lower.clone(),
                        step: 1,
                        body,
                    }))
                }
                _ => Err(Error::Sema {
                    message: format!(
                        "cannot normalize loop `{}` with step {}: only -1 is supported",
                        f.var, f.step
                    ),
                }),
            }
        }
    }
}

fn substitute_stmt(s: &Stmt, name: &str, replacement: &Expr) -> Stmt {
    match s {
        Stmt::Assign(a) => {
            let mut a = a.clone();
            a.lhs.subs = a
                .lhs
                .subs
                .iter()
                .map(|e| e.substitute_var(name, replacement))
                .collect();
            a.rhs = a.rhs.substitute_var(name, replacement);
            Stmt::Assign(a)
        }
        Stmt::If(i) => Stmt::If(IfStmt {
            conds: i
                .conds
                .iter()
                .map(|r| crate::ast::Relation {
                    lhs: r.lhs.substitute_var(name, replacement),
                    op: r.op,
                    rhs: r.rhs.substitute_var(name, replacement),
                })
                .collect(),
            then_body: i
                .then_body
                .iter()
                .map(|s| substitute_stmt(s, name, replacement))
                .collect(),
            else_body: i
                .else_body
                .iter()
                .map(|s| substitute_stmt(s, name, replacement))
                .collect(),
        }),
        Stmt::For(f) => Stmt::For(ForLoop {
            var: f.var.clone(),
            lower: f.lower.substitute_var(name, replacement),
            upper: f.upper.substitute_var(name, replacement),
            step: f.step,
            body: f
                .body
                .iter()
                .map(|s| substitute_stmt(s, name, replacement))
                .collect(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Access, Assign};

    fn descending_loop() -> Program {
        // for k := n to 2 step -1 do a(k) := a(k-1); endfor
        let mut p = Program::default();
        p.stmts.push(Stmt::For(ForLoop {
            var: "k".into(),
            lower: Expr::Var("n".into()),
            upper: Expr::Int(2),
            step: -1,
            body: vec![Stmt::Assign(Assign {
                label: 1,
                lhs: Access {
                    array: "a".into(),
                    subs: vec![Expr::Var("k".into())],
                },
                rhs: Expr::Call(
                    "a".into(),
                    vec![Expr::bin(
                        crate::ast::BinOp::Sub,
                        Expr::Var("k".into()),
                        Expr::Int(1),
                    )],
                ),
            })],
        }));
        p
    }

    #[test]
    fn descending_becomes_ascending_with_substitution() {
        let p = normalize_steps(&descending_loop()).unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert_eq!(f.step, 1);
        assert_eq!(f.lower, Expr::Int(2));
        assert_eq!(f.upper, Expr::Var("n".into()));
        let Stmt::Assign(a) = &f.body[0] else { panic!() };
        // a(k) became a(n + 2 - k).
        let printed = format!("{}", a.lhs);
        assert!(printed.contains("n+2"), "{printed}");
    }

    #[test]
    fn dependence_direction_is_preserved() {
        // Descending a(k) := a(k-1) reads the element the NEXT iteration
        // writes: an anti dependence, NOT a flow. Normalization must
        // preserve that.
        use crate::{analyze, Program};
        let norm = normalize_steps(&descending_loop()).unwrap();
        let printed = norm.to_string();
        let reparsed = Program::parse(&printed).unwrap();
        let info = analyze(&reparsed).unwrap();
        assert_eq!(info.stmts.len(), 1);
        // The write a(n+2-k) and read a(n+2-k-1): as k ascends, subscripts
        // descend — iteration k writes s(k), iteration k+1 reads
        // s(k) - ... wait: read at k+1 is s(k+1)-1 = s(k)-1-1? Check via
        // subscript affine: write coeff of k is -1. Enough to assert the
        // loop parses and the subscripts stay affine.
        let is_scalar = |_: &str| true;
        assert!(crate::sema::affine_of(&info.stmts[0].write.subs[0], &is_scalar).is_some());
    }

    #[test]
    fn nested_and_guarded_loops_normalize() {
        let src_like = Program::parse(
            "sym n; for i := 1 to n do if i <= n then a(i) := 0; endif endfor",
        )
        .unwrap();
        // Positive steps pass through unchanged.
        let out = normalize_steps(&src_like).unwrap();
        assert_eq!(out.stmts, src_like.stmts);
    }

    #[test]
    fn unsupported_steps_are_rejected() {
        let mut p = descending_loop();
        let Stmt::For(f) = &mut p.stmts[0] else { panic!() };
        f.step = -2;
        let err = normalize_steps(&p).unwrap_err();
        assert!(err.to_string().contains("-1"), "{err}");
    }
}
