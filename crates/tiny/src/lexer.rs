//! Hand-written lexer for the tiny loop language.

use crate::error::{Error, Result};
use crate::token::{SpannedToken, Token};

/// Tokenizes a source string.
///
/// Comments run from `//` or `--` to end of line. Keywords are
/// case-insensitive (the corpus mixes Fortran-style upper case with
/// lower-case pseudocode); identifiers preserve their case but compare
/// case-insensitively downstream.
///
/// # Errors
///
/// Returns [`Error::Lex`] on an unexpected character or an integer literal
/// that does not fit `i64`.
///
/// # Examples
///
/// ```
/// use tiny::lexer::lex;
/// use tiny::token::Token;
///
/// let toks = lex("for i := 1 to n do")?;
/// assert_eq!(toks[0].token, Token::For);
/// assert_eq!(toks[1].token, Token::Ident("i".into()));
/// # Ok::<(), tiny::Error>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<SpannedToken>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(SpannedToken {
                token: $tok,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => skip_line(bytes, &mut i),
            '-' if bytes.get(i + 1) == Some(&b'-') => skip_line(bytes, &mut i),
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '[' => push!(Token::LBracket, 1),
            ']' => push!(Token::RBracket, 1),
            ',' => push!(Token::Comma, 1),
            ';' => push!(Token::Semi, 1),
            '+' => push!(Token::Plus, 1),
            '-' => push!(Token::Minus, 1),
            '*' => push!(Token::Star, 1),
            '/' => push!(Token::Slash, 1),
            '=' => push!(Token::Eq, 1),
            ':' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Assign, 2),
            ':' => push!(Token::Colon, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Le, 2),
            '<' => push!(Token::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Ge, 2),
            '>' => push!(Token::Gt, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Ne, 2),
            '&' if bytes.get(i + 1) == Some(&b'&') => push!(Token::And, 2),
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Float forms (Fortran constants): `1.`, `1.5`, `1E-13`,
                // `2.5e+3`. Kept as text; opaque to the analysis.
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len()
                    && (bytes[i] == b'e' || bytes[i] == b'E')
                    && (bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                            && bytes.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
                {
                    is_float = true;
                    i += 1; // e/E
                    if matches!(bytes[i], b'+' | b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let token = if is_float {
                    Token::Float(text.to_string())
                } else {
                    Token::Int(text.parse().map_err(|_| Error::Lex {
                        line,
                        col,
                        message: format!("integer literal `{text}` out of range"),
                    })?)
                };
                out.push(SpannedToken { token, line, col });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let token = match text.to_ascii_lowercase().as_str() {
                    "for" => Token::For,
                    "to" => Token::To,
                    "step" => Token::Step,
                    "do" => Token::Do,
                    "endfor" => Token::EndFor,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "endif" => Token::EndIf,
                    "sym" => Token::Sym,
                    "real" => Token::Real,
                    "int" => Token::IntKw,
                    "assume" => Token::Assume,
                    "and" => Token::And,
                    _ => Token::Ident(text.to_string()),
                };
                out.push(SpannedToken { token, line, col });
                col += (i - start) as u32;
            }
            other => {
                return Err(Error::Lex {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(SpannedToken {
        token: Token::Eof,
        line,
        col,
    });
    Ok(out)
}

fn skip_line(bytes: &[u8], i: &mut usize) {
    while *i < bytes.len() && bytes[*i] != b'\n' {
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("for L1 := 1 to n do endfor"),
            vec![
                Token::For,
                Token::Ident("L1".into()),
                Token::Assign,
                Token::Int(1),
                Token::To,
                Token::Ident("n".into()),
                Token::Do,
                Token::EndFor,
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("FOR")[0], Token::For);
        assert_eq!(kinds("EndFor")[0], Token::EndFor);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a(i) := a(i-1) * 2;"),
            vec![
                Token::Ident("a".into()),
                Token::LParen,
                Token::Ident("i".into()),
                Token::RParen,
                Token::Assign,
                Token::Ident("a".into()),
                Token::LParen,
                Token::Ident("i".into()),
                Token::Minus,
                Token::Int(1),
                Token::RParen,
                Token::Star,
                Token::Int(2),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // comment to eol\n-- also a comment\ny"),
            vec![
                Token::Ident("x".into()),
                Token::Ident("y".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("assume 1 <= n && n < m;"),
            vec![
                Token::Assume,
                Token::Int(1),
                Token::Le,
                Token::Ident("n".into()),
                Token::And,
                Token::Ident("n".into()),
                Token::Lt,
                Token::Ident("m".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn brackets_and_colon_ranges() {
        assert_eq!(
            kinds("A[1:n, 2]"),
            vec![
                Token::Ident("A".into()),
                Token::LBracket,
                Token::Int(1),
                Token::Colon,
                Token::Ident("n".into()),
                Token::Comma,
                Token::Int(2),
                Token::RBracket,
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("x\n  y").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_literals() {
        assert_eq!(
            kinds("1. 2.5 1E-13 3e4 1e+2"),
            vec![
                Token::Float("1.".into()),
                Token::Float("2.5".into()),
                Token::Float("1E-13".into()),
                Token::Float("3e4".into()),
                Token::Float("1e+2".into()),
                Token::Eof
            ]
        );
        // Not floats: `1E` without digits (ident follows), plain ints.
        assert_eq!(
            kinds("12 1x"),
            vec![
                Token::Int(12),
                Token::Int(1),
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("a ? b").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('?'), "{msg}");
    }
}
