//! Recursive-descent parser for the tiny loop language.
//!
//! ```text
//! program    := item*
//! item       := "sym" ident ("," ident)* ";"
//!             | ("real"|"int") decl ("," decl)* ";"
//!             | "assume" chain ("&&" chain)* ";"
//!             | stmt
//! decl       := ident "[" dim ("," dim)* "]"
//! dim        := expr [":" expr]            -- single expr means 1:expr
//! stmt       := for | assign
//! for        := "for" ident ":=" expr "to" expr ["step" int] "do"
//!                   stmt* "endfor"
//! assign     := ident [subs] ":=" expr ";"
//! subs       := "(" expr,* ")" | "[" expr,* "]"
//! chain      := expr (relop expr)+         -- chains: a <= b <= c
//! expr       := mul (("+"|"-") mul)*
//! mul        := unary (("*"|"/") unary)*
//! unary      := "-" unary | primary
//! primary    := int | ident [subs] | "(" expr ")"
//! ```

use crate::ast::{
    Access, ArrayDecl, Assign, BinOp, Expr, ForLoop, IfStmt, Program, RelOp, Relation, Stmt,
};
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{SpannedToken, Token};

/// Parses a complete program. See [`Program::parse`].
///
/// # Errors
///
/// Returns positioned lexical and parse errors.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_label: 1,
    };
    p.program()
}

struct Parser {
    toks: Vec<SpannedToken>,
    pos: usize,
    next_label: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let t = &self.toks[self.pos];
        Err(Error::Parse {
            line: t.line,
            col: t.col,
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        if self.peek() == want {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        while self.peek() != &Token::Eof {
            match self.peek() {
                Token::Sym => self.sym_decl(&mut prog)?,
                Token::Real | Token::IntKw => self.array_decl(&mut prog)?,
                Token::Assume => self.assume(&mut prog)?,
                _ => {
                    let s = self.stmt()?;
                    prog.stmts.push(s);
                }
            }
        }
        Ok(prog)
    }

    fn sym_decl(&mut self, prog: &mut Program) -> Result<()> {
        self.expect(&Token::Sym)?;
        loop {
            prog.syms.push(self.ident()?);
            if self.peek() == &Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Token::Semi)
    }

    fn array_decl(&mut self, prog: &mut Program) -> Result<()> {
        self.advance(); // real | int
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            if self.peek() == &Token::LBracket {
                self.advance();
                loop {
                    let first = self.expr()?;
                    let dim = if self.peek() == &Token::Colon {
                        self.advance();
                        let hi = self.expr()?;
                        (first, hi)
                    } else {
                        (Expr::Int(1), first)
                    };
                    dims.push(dim);
                    if self.peek() == &Token::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RBracket)?;
            }
            prog.arrays.insert(
                crate::ast::name_key(&name),
                ArrayDecl { name, dims },
            );
            if self.peek() == &Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Token::Semi)
    }

    fn assume(&mut self, prog: &mut Program) -> Result<()> {
        self.expect(&Token::Assume)?;
        loop {
            self.relation_chain(prog)?;
            if self.peek() == &Token::And {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Token::Semi)
    }

    fn relation_chain(&mut self, prog: &mut Program) -> Result<()> {
        let mut lhs = self.expr()?;
        let mut any = false;
        while let Some(op) = self.rel_op() {
            self.advance();
            let rhs = self.expr()?;
            prog.assumptions.push(Relation {
                lhs: lhs.clone(),
                op,
                rhs: rhs.clone(),
            });
            lhs = rhs;
            any = true;
        }
        if !any {
            return self.err("expected a relational operator in assume clause");
        }
        Ok(())
    }

    fn rel_op(&self) -> Option<RelOp> {
        match self.peek() {
            Token::Le => Some(RelOp::Le),
            Token::Lt => Some(RelOp::Lt),
            Token::Ge => Some(RelOp::Ge),
            Token::Gt => Some(RelOp::Gt),
            Token::Eq => Some(RelOp::Eq),
            Token::Ne => Some(RelOp::Ne),
            _ => None,
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            Token::For => self.for_loop().map(Stmt::For),
            Token::If => self.if_stmt().map(Stmt::If),
            Token::Ident(_) => self.assign().map(Stmt::Assign),
            other => self.err(format!("expected a statement, found {other}")),
        }
    }

    fn if_stmt(&mut self) -> Result<IfStmt> {
        self.expect(&Token::If)?;
        let mut conds = Vec::new();
        loop {
            // A chain `a <= b <= c` contributes several relations.
            let mut lhs = self.expr()?;
            let mut any = false;
            while let Some(op) = self.rel_op() {
                self.advance();
                let rhs = self.expr()?;
                conds.push(Relation {
                    lhs: lhs.clone(),
                    op,
                    rhs: rhs.clone(),
                });
                lhs = rhs;
                any = true;
            }
            if !any {
                return self.err("expected a relation in if condition");
            }
            if self.peek() == &Token::And {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Token::Then)?;
        let mut then_body = Vec::new();
        while !matches!(self.peek(), Token::Else | Token::EndIf) {
            if self.peek() == &Token::Eof {
                return self.err("unterminated if: expected `endif`");
            }
            then_body.push(self.stmt()?);
        }
        let mut else_body = Vec::new();
        if self.peek() == &Token::Else {
            self.advance();
            while self.peek() != &Token::EndIf {
                if self.peek() == &Token::Eof {
                    return self.err("unterminated else: expected `endif`");
                }
                else_body.push(self.stmt()?);
            }
        }
        self.expect(&Token::EndIf)?;
        Ok(IfStmt {
            conds,
            then_body,
            else_body,
        })
    }

    fn for_loop(&mut self) -> Result<ForLoop> {
        self.expect(&Token::For)?;
        let var = self.ident()?;
        self.expect(&Token::Assign)?;
        let lower = self.expr()?;
        self.expect(&Token::To)?;
        let upper = self.expr()?;
        let step = if self.peek() == &Token::Step {
            self.advance();
            let neg = if self.peek() == &Token::Minus {
                self.advance();
                true
            } else {
                false
            };
            match self.advance() {
                Token::Int(n) if !neg && n >= 1 => n,
                Token::Int(_) => {
                    return self.err(
                        "loop steps must be positive integer constants \
                         (normalize the loop first, as the paper does for CHOLSKY)",
                    )
                }
                other => return self.err(format!("expected step constant, found {other}")),
            }
        } else {
            1
        };
        self.expect(&Token::Do)?;
        let mut body = Vec::new();
        while self.peek() != &Token::EndFor {
            if self.peek() == &Token::Eof {
                return self.err("unterminated loop: expected `endfor`");
            }
            body.push(self.stmt()?);
        }
        self.expect(&Token::EndFor)?;
        Ok(ForLoop {
            var,
            lower,
            upper,
            step,
            body,
        })
    }

    fn assign(&mut self) -> Result<Assign> {
        let array = self.ident()?;
        let subs = if matches!(self.peek(), Token::LParen | Token::LBracket) {
            self.subscripts()?
        } else {
            Vec::new()
        };
        self.expect(&Token::Assign)?;
        let rhs = self.expr()?;
        self.expect(&Token::Semi)?;
        let label = self.next_label;
        self.next_label += 1;
        Ok(Assign {
            label,
            lhs: Access { array, subs },
            rhs,
        })
    }

    fn subscripts(&mut self) -> Result<Vec<Expr>> {
        let close = match self.advance() {
            Token::LParen => Token::RParen,
            Token::LBracket => Token::RBracket,
            other => return self.err(format!("expected `(` or `[`, found {other}")),
        };
        let mut subs = Vec::new();
        loop {
            subs.push(self.expr()?);
            if self.peek() == &Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&close)?;
        Ok(subs)
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek() == &Token::Minus {
            self.advance();
            // Fold negated literals so `-1` is `Int(-1)`, keeping the
            // print/parse round trip exact.
            return Ok(match self.unary()? {
                Expr::Int(n) => Expr::Int(-n),
                other => Expr::Neg(Box::new(other)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.advance();
                Ok(Expr::Int(n))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // `name(...)` or `name[...]` is an access/call; a bare
                // name is a scalar. Careful: `a (i) := ...` only occurs at
                // statement level, so consuming the parens here is safe.
                self.advance();
                if matches!(self.peek(), Token::LParen | Token::LBracket) {
                    let args = self.subscripts()?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_loop() {
        let p = parse("for i := 1 to n do a(i) := a(i-1); endfor").unwrap();
        assert_eq!(p.stmts.len(), 1);
        let Stmt::For(f) = &p.stmts[0] else {
            panic!("expected a loop")
        };
        assert_eq!(f.var, "i");
        assert_eq!(f.step, 1);
        assert_eq!(f.body.len(), 1);
        let Stmt::Assign(a) = &f.body[0] else {
            panic!("expected an assignment")
        };
        assert_eq!(a.label, 1);
        assert_eq!(a.lhs.array, "a");
        assert_eq!(a.lhs.subs.len(), 1);
    }

    #[test]
    fn parses_nested_loops_and_labels_in_source_order() {
        let src = "
            for i := 1 to n do
              for j := i to m do
                a(i,j) := a(i-1,j) + a(i,j-1);
              endfor
              b(i) := a(i,m);
            endfor
        ";
        let p = parse(src).unwrap();
        let Stmt::For(outer) = &p.stmts[0] else { panic!() };
        assert_eq!(outer.body.len(), 2);
        let Stmt::For(inner) = &outer.body[0] else { panic!() };
        let Stmt::Assign(a1) = &inner.body[0] else { panic!() };
        let Stmt::Assign(a2) = &outer.body[1] else { panic!() };
        assert_eq!(a1.label, 1);
        assert_eq!(a2.label, 2);
    }

    #[test]
    fn parses_max_bound() {
        let p = parse("for jj := max(-m,-j) - i to -1 do a(jj) := 0; endfor").unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert!(matches!(
            &f.lower,
            Expr::Bin(BinOp::Sub, l, _) if matches!(&**l, Expr::Call(n, _) if n == "max")
        ));
    }

    #[test]
    fn parses_step() {
        let p = parse("for i := 1 to n step 2 do a(i) := 0; endfor").unwrap();
        let Stmt::For(f) = &p.stmts[0] else { panic!() };
        assert_eq!(f.step, 2);
        assert!(parse("for i := 1 to n step -1 do a(i) := 0; endfor").is_err());
        assert!(parse("for i := 1 to n step 0 do a(i) := 0; endfor").is_err());
    }

    #[test]
    fn parses_declarations() {
        let p = parse("sym n, m; real A[1:n, 1:m], C[1:n, 1:m]; int Q[1:n];").unwrap();
        assert_eq!(p.syms, vec!["n", "m"]);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.arrays["a"].dims.len(), 2);
        assert_eq!(p.arrays["q"].dims.len(), 1);
    }

    #[test]
    fn parses_assume_chains() {
        let p = parse("sym n, m; assume 50 <= n <= 100 && m > 0;").unwrap();
        assert_eq!(p.assumptions.len(), 3);
        assert_eq!(p.assumptions[0].op, RelOp::Le);
        assert_eq!(p.assumptions[2].op, RelOp::Gt);
    }

    #[test]
    fn parses_scalar_assignment() {
        let p = parse("k := k + j;").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        assert!(a.lhs.subs.is_empty());
        assert_eq!(a.lhs.array, "k");
    }

    #[test]
    fn parses_bracket_subscripts() {
        let p = parse("A[L1,L2] := A[L1-x,y] + C[L1,L2];").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        assert_eq!(a.lhs.subs.len(), 2);
    }

    #[test]
    fn error_on_unterminated_loop() {
        let err = parse("for i := 1 to n do a(i) := 0;").unwrap_err();
        assert!(err.to_string().contains("endfor"), "{err}");
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse("for i := 1 to n\n  a(i) := 0;\nendfor").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "should point at line 2: {msg}");
    }

    #[test]
    fn precedence_and_negation() {
        let p = parse("x := 1 + 2 * 3;").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        // (1 + (2 * 3))
        let Expr::Bin(BinOp::Add, l, r) = &a.rhs else { panic!() };
        assert_eq!(**l, Expr::Int(1));
        assert!(matches!(&**r, Expr::Bin(BinOp::Mul, _, _)));

        let p = parse("x := -y * 2;").unwrap();
        let Stmt::Assign(a) = &p.stmts[0] else { panic!() };
        // ((-y) * 2): unary binds tighter than *
        assert!(matches!(&a.rhs, Expr::Bin(BinOp::Mul, l, _)
            if matches!(&**l, Expr::Neg(_))));
    }
}
