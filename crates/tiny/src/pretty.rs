//! Pretty-printer: renders a [`Program`] back to parseable source.

use std::fmt;

use crate::ast::{Program, Stmt};

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.syms.is_empty() {
            writeln!(f, "sym {};", self.syms.join(", "))?;
        }
        for decl in self.arrays.values() {
            write!(f, "real {}", decl.name)?;
            if !decl.dims.is_empty() {
                write!(f, "[")?;
                for (i, (lo, hi)) in decl.dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{lo}:{hi}")?;
                }
                write!(f, "]")?;
            }
            writeln!(f, ";")?;
        }
        for r in &self.assumptions {
            writeln!(f, "assume {} {} {};", r.lhs, r.op, r.rhs)?;
        }
        for s in &self.stmts {
            write_stmt(f, s, 0)?;
        }
        Ok(())
    }
}

fn write_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::For(l) => {
            write!(f, "{pad}for {} := {} to {}", l.var, l.lower, l.upper)?;
            if l.step != 1 {
                write!(f, " step {}", l.step)?;
            }
            writeln!(f, " do")?;
            for b in &l.body {
                write_stmt(f, b, indent + 1)?;
            }
            writeln!(f, "{pad}endfor")
        }
        Stmt::If(i) => {
            let conds = i
                .conds
                .iter()
                .map(|r| format!("{} {} {}", r.lhs, r.op, r.rhs))
                .collect::<Vec<_>>()
                .join(" && ");
            writeln!(f, "{pad}if {conds} then")?;
            for b in &i.then_body {
                write_stmt(f, b, indent + 1)?;
            }
            if !i.else_body.is_empty() {
                writeln!(f, "{pad}else")?;
                for b in &i.else_body {
                    write_stmt(f, b, indent + 1)?;
                }
            }
            writeln!(f, "{pad}endif")
        }
        Stmt::Assign(a) => writeln!(f, "{pad}{} := {};", a.lhs, a.rhs),
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Program;

    #[test]
    fn roundtrips_through_parser() {
        for entry in crate::corpus::all() {
            let p1 = Program::parse(entry.source).unwrap();
            let printed = p1.to_string();
            let p2 = Program::parse(&printed)
                .unwrap_or_else(|e| panic!("{} reprint failed: {e}\n{printed}", entry.name));
            // Statement structure must be preserved (labels are assigned
            // in source order, which printing preserves).
            assert_eq!(p1.stmts, p2.stmts, "{}", entry.name);
            assert_eq!(p1.syms, p2.syms, "{}", entry.name);
        }
    }

    #[test]
    fn prints_step_only_when_nontrivial() {
        let p = Program::parse("for i := 1 to n step 2 do a(i) := 0; endfor").unwrap();
        assert!(p.to_string().contains("step 2"));
        let q = Program::parse("for i := 1 to n do a(i) := 0; endfor").unwrap();
        assert!(!q.to_string().contains("step"));
    }
}
