//! Pretty-printer: renders a [`Program`] back to parseable source, with
//! optional per-statement annotations (`!$ ...` comment lines) keyed by
//! tree path — the hook the `tinydep --parallelize` report uses to print
//! loop verdicts above the loops they describe.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Program, Stmt};

/// Comment lines attached to statements by tree path (the same
/// root-to-statement index path `sema` records in `StmtInfo::path` /
/// `LoopRef::path`), rendered by [`render_annotated`] as `!$ ...` lines
/// immediately before the statement, at its indentation.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    by_path: BTreeMap<Vec<usize>, Vec<String>>,
}

impl Annotations {
    /// Creates an empty annotation set.
    pub fn new() -> Annotations {
        Annotations::default()
    }

    /// Attaches one comment line (without the `!$ ` marker) to the
    /// statement at `path`. Multiple lines on one path print in
    /// insertion order.
    pub fn push(&mut self, path: &[usize], line: impl Into<String>) {
        self.by_path.entry(path.to_vec()).or_default().push(line.into());
    }

    /// True when no annotation was attached.
    pub fn is_empty(&self) -> bool {
        self.by_path.is_empty()
    }

    fn lines_at(&self, path: &[usize]) -> &[String] {
        self.by_path.get(path).map_or(&[], Vec::as_slice)
    }
}

/// Renders `program` like its `Display` impl, with `annotations`
/// interleaved as `!$ ...` comment lines before the statements they
/// name. With empty annotations the output is byte-identical to
/// `program.to_string()`.
pub fn render_annotated(program: &Program, annotations: &Annotations) -> String {
    let mut out = String::new();
    write_program(&mut out, program, annotations).expect("fmt::Write on String cannot fail");
    out
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_program(f, self, &Annotations::default())
    }
}

fn write_program<W: fmt::Write>(
    f: &mut W,
    program: &Program,
    ann: &Annotations,
) -> fmt::Result {
    if !program.syms.is_empty() {
        writeln!(f, "sym {};", program.syms.join(", "))?;
    }
    for decl in program.arrays.values() {
        write!(f, "real {}", decl.name)?;
        if !decl.dims.is_empty() {
            write!(f, "[")?;
            for (i, (lo, hi)) in decl.dims.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lo}:{hi}")?;
            }
            write!(f, "]")?;
        }
        writeln!(f, ";")?;
    }
    for r in &program.assumptions {
        writeln!(f, "assume {} {} {};", r.lhs, r.op, r.rhs)?;
    }
    let mut path = Vec::new();
    for (i, s) in program.stmts.iter().enumerate() {
        path.push(i);
        write_stmt(f, s, 0, &mut path, ann)?;
        path.pop();
    }
    Ok(())
}

/// Writes one statement at `indent`, preceded by its annotation lines.
/// `path` mirrors the traversal `sema::flatten` performs: the statement
/// index in each body list, with `0`/`1` selecting an `if`'s then/else
/// branch.
fn write_stmt<W: fmt::Write>(
    f: &mut W,
    s: &Stmt,
    indent: usize,
    path: &mut Vec<usize>,
    ann: &Annotations,
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for line in ann.lines_at(path) {
        writeln!(f, "{pad}!$ {line}")?;
    }
    match s {
        Stmt::For(l) => {
            write!(f, "{pad}for {} := {} to {}", l.var, l.lower, l.upper)?;
            if l.step != 1 {
                write!(f, " step {}", l.step)?;
            }
            writeln!(f, " do")?;
            for (i, b) in l.body.iter().enumerate() {
                path.push(i);
                write_stmt(f, b, indent + 1, path, ann)?;
                path.pop();
            }
            writeln!(f, "{pad}endfor")
        }
        Stmt::If(i) => {
            let conds = i
                .conds
                .iter()
                .map(|r| format!("{} {} {}", r.lhs, r.op, r.rhs))
                .collect::<Vec<_>>()
                .join(" && ");
            writeln!(f, "{pad}if {conds} then")?;
            path.push(0);
            for (j, b) in i.then_body.iter().enumerate() {
                path.push(j);
                write_stmt(f, b, indent + 1, path, ann)?;
                path.pop();
            }
            path.pop();
            if !i.else_body.is_empty() {
                writeln!(f, "{pad}else")?;
                path.push(1);
                for (j, b) in i.else_body.iter().enumerate() {
                    path.push(j);
                    write_stmt(f, b, indent + 1, path, ann)?;
                    path.pop();
                }
                path.pop();
            }
            writeln!(f, "{pad}endif")
        }
        Stmt::Assign(a) => writeln!(f, "{pad}{} := {};", a.lhs, a.rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    #[test]
    fn roundtrips_through_parser() {
        for entry in crate::corpus::all() {
            let p1 = Program::parse(entry.source).unwrap();
            let printed = p1.to_string();
            let p2 = Program::parse(&printed)
                .unwrap_or_else(|e| panic!("{} reprint failed: {e}\n{printed}", entry.name));
            // Statement structure must be preserved (labels are assigned
            // in source order, which printing preserves).
            assert_eq!(p1.stmts, p2.stmts, "{}", entry.name);
            assert_eq!(p1.syms, p2.syms, "{}", entry.name);
        }
    }

    #[test]
    fn prints_step_only_when_nontrivial() {
        let p = Program::parse("for i := 1 to n step 2 do a(i) := 0; endfor").unwrap();
        assert!(p.to_string().contains("step 2"));
        let q = Program::parse("for i := 1 to n do a(i) := 0; endfor").unwrap();
        assert!(!q.to_string().contains("step"));
    }

    #[test]
    fn empty_annotations_match_display() {
        for entry in crate::corpus::all() {
            let p = Program::parse(entry.source).unwrap();
            assert_eq!(
                render_annotated(&p, &Annotations::new()),
                p.to_string(),
                "{}",
                entry.name
            );
        }
    }

    #[test]
    fn annotations_print_before_their_statement_at_its_indent() {
        let p = Program::parse(
            "sym n;\nfor i := 1 to n do\n  for j := 1 to n do\n    a(i, j) := 0;\n  endfor\nendfor",
        )
        .unwrap();
        let mut ann = Annotations::new();
        ann.push(&[0], "PARALLELIZABLE");
        ann.push(&[0, 0], "inner verdict");
        ann.push(&[0, 0], "second line");
        let out = render_annotated(&p, &ann);
        assert_eq!(
            out,
            "sym n;\n!$ PARALLELIZABLE\nfor i := 1 to n do\n  !$ inner verdict\n  \
             !$ second line\n  for j := 1 to n do\n    a(i,j) := 0;\n  endfor\nendfor\n"
        );
    }

    #[test]
    fn annotation_paths_match_sema_paths() {
        // The paths sema computes for loops must address the same
        // statements the pretty-printer walks (if branches included).
        let src = "
            sym n;
            for i := 1 to n do
              if i <= 4 then
                for j := 1 to n do
                  a(i, j) := 0;
                endfor
              endif
            endfor
        ";
        let p = Program::parse(src).unwrap();
        let info = crate::analyze(&p).unwrap();
        let stmt = &info.stmts[0];
        // Inner j loop: its path entry is recorded at loop_path_idx[1].
        let j_path = &stmt.path[..=stmt.loop_path_idx[1]];
        let mut ann = Annotations::new();
        ann.push(j_path, "J-LOOP");
        let out = render_annotated(&p, &ann);
        let j_line = out
            .lines()
            .position(|l| l.trim_start().starts_with("for j"))
            .unwrap();
        assert_eq!(out.lines().nth(j_line - 1).unwrap().trim_start(), "!$ J-LOOP");
    }
}
