//! The benchmark corpus: every worked example of the paper, the CHOLSKY
//! NAS kernel of Figure 2, and a set of kernels in the families the
//! original `tiny` distribution shipped (Cholesky, LU, wavefronts, plus
//! contrived examples), used to regenerate the timing figures.

/// A named source program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Short name (used in reports).
    pub name: &'static str,
    /// Program source text.
    pub source: &'static str,
}

/// Example 1 — killed flow dependence: the write `a(L1)` kills the flow
/// from `a(n)` to the read.
pub const EXAMPLE_1: &str = "
    sym n;
    a(n) := 0;
    for L1 := n to n+10 do
      a(L1) := 1;
    endfor
    for L1 := n to n+20 do
      x := a(L1);
    endfor
";

/// Example 1 variant — first write to `a(m)`: the kill cannot be verified
/// without the assertion `n <= m <= n+10`.
pub const EXAMPLE_1_M: &str = "
    sym n, m;
    a(m) := 0;
    for L1 := n to n+10 do
      a(L1) := 1;
    endfor
    for L1 := n to n+20 do
      x := a(L1);
    endfor
";

/// Example 1 variant with the assertion added: the kill is restored.
pub const EXAMPLE_1_M_ASSERTED: &str = "
    sym n, m;
    assume n <= m <= n+10;
    a(m) := 0;
    for L1 := n to n+10 do
      a(L1) := 1;
    endfor
    for L1 := n to n+20 do
      x := a(L1);
    endfor
";

/// Example 2 — covering and killed dependences: the read of `a(L2)` is
/// covered by the write to `a(L2-1)`.
pub const EXAMPLE_2: &str = "
    sym n, m;
    a(m) := 0;
    for L1 := 1 to 100 do
      a(L1) := 1;
      for L2 := 1 to n do
        a(L2) := 2;
        a(L2-1) := 3;
      endfor
      for L2 := 2 to n-1 do
        x := a(L2);
      endfor
    endfor
";

/// Example 3 — refinement from `(0+,1)` to `(0,1)`.
pub const EXAMPLE_3: &str = "
    sym n, m;
    for L1 := 1 to n do
      for L2 := 2 to m do
        a(L2) := a(L2-1);
      endfor
    endfor
";

/// Example 4 — trapezoidal refinement: same refinement in a non-
/// rectangular nest.
pub const EXAMPLE_4: &str = "
    sym n, m;
    for L1 := 1 to n do
      for L2 := n+2-L1 to m do
        a(L2) := a(L2-1);
      endfor
    endfor
";

/// Example 5 — partial refinement: only `(0:1,1)` is possible because
/// iterations with `1 < L1 = L2` receive their flow from `(L1-1, L2-1)`.
pub const EXAMPLE_5: &str = "
    sym n, m;
    for L1 := 1 to n do
      for L2 := L1 to m do
        a(L2) := a(L2-1);
      endfor
    endfor
";

/// Example 6 — coupled refinement: distances `(α,α), α ≥ 1` refine to
/// `(1,1)`.
pub const EXAMPLE_6: &str = "
    sym n, m;
    for L1 := 1 to n do
      for L2 := 2 to m do
        a(L1-L2) := a(L1-L2);
      endfor
    endfor
";

/// Example 7 — symbolic dependence analysis: the flow dependence exists
/// iff `2x <= n ∧ 1 <= y <= m ∧ (x > 0 ∨ (x = 0 ∧ y < m))`.
pub const EXAMPLE_7: &str = "
    sym x, y, n, m;
    real A[1:n, 1:m], C[1:n, 1:m];
    for L1 := x to n do
      for L2 := 1 to m do
        A[L1, L2] := A[L1-x, y] + C[L1, L2];
      endfor
    endfor
";

/// Example 8 — index arrays: queries about `Q[a] = Q[b]`.
pub const EXAMPLE_8: &str = "
    sym n;
    real A[1:n], C[1:n];
    int Q[1:n];
    for L1 := 1 to n do
      A[Q[L1]] := A[Q[L1+1]-1] + C[L1];
    endfor
";

/// Example 9 — array values in loop bounds.
pub const EXAMPLE_9: &str = "
    sym maxb;
    int B[1:maxb];
    for i := 1 to maxb do
      for j := B[i] to B[i+1]-1 do
        A[i, j] := i + j;
      endfor
    endfor
";

/// Example 10 — non-linear subscripts (`i*j`), treated as an
/// uninterpreted term.
pub const EXAMPLE_10: &str = "
    sym n;
    for i := 1 to n do
      for j := i to n do
        A[i*j] := i + j;
      endfor
    endfor
";

/// Example 11 — from program `s141` of Levine, Callahan & Dongarra:
/// induction scalar `k` drives the subscript.
pub const EXAMPLE_11: &str = "
    sym n;
    for i := 1 to n do
      for j := i to n do
        a(k) := a(k) + bb(i, j);
        k := k + j;
      endfor
    endfor
";

/// CHOLSKY from the original NASA NAS kernels (Figure 2), with the
/// forward-substituted `MAX(-M,-J)` and the normalized second `K` loop, as
/// the paper's authors prepared it. Statement labels 1–9 match the DO-loop
/// labels of the Fortran source and the rows of Figures 3 and 4.
pub const CHOLSKY: &str = "
    sym ida, nmat, m, n, nrhs, idb, eps;

    // Cholesky decomposition ------------------------------------
    for J := 0 to n do
      // off-diagonal elements
      for I := max(-m, -J) to -1 do
        for JJ := max(-m, -J) - I to -1 do
          for L := 0 to nmat do
            a(L, I, J) := a(L, I, J) - a(L, JJ, I+J) * a(L, I+JJ, J);    -- stmt 1 = label 3
          endfor
        endfor
        for L := 0 to nmat do
          a(L, I, J) := a(L, I, J) * a(L, 0, I+J);                       -- stmt 2 = label 2
        endfor
      endfor
      // store inverse of diagonal elements
      for L := 0 to nmat do
        epss(L) := eps * a(L, 0, J);                                     -- stmt 3 = label 4
      endfor
      for JJ := max(-m, -J) to -1 do
        for L := 0 to nmat do
          a(L, 0, J) := a(L, 0, J) - a(L, JJ, J) * a(L, JJ, J);          -- stmt 4 = label 5
        endfor
      endfor
      for L := 0 to nmat do
        a(L, 0, J) := 1 / sqrt(abs(epss(L) + a(L, 0, J)));               -- stmt 5 = label 1
      endfor
    endfor

    // solution ---------------------------------------------------
    for I := 0 to nrhs do
      for K := 0 to n do
        for L := 0 to nmat do
          b(I, L, K) := b(I, L, K) * a(L, 0, K);                         -- stmt 6 = label 8
        endfor
        for JJ := 1 to min(m, n-K) do
          for L := 0 to nmat do
            b(I, L, K+JJ) := b(I, L, K+JJ) - a(L, -JJ, K+JJ) * b(I, L, K);  -- stmt 7 = label 7
          endfor
        endfor
      endfor
      for K := 0 to n do
        for L := 0 to nmat do
          b(I, L, n-K) := b(I, L, n-K) * a(L, 0, n-K);                   -- stmt 8 = label 9
        endfor
        for JJ := 1 to min(m, n-K) do
          for L := 0 to nmat do
            b(I, L, n-K-JJ) := b(I, L, n-K-JJ) - a(L, -JJ, n-K) * b(I, L, n-K);  -- stmt 9 = label 6
          endfor
        endfor
      endfor
    endfor
";

/// Maps our source-order statement labels (1–9 as parsed) to the Fortran
/// DO-label numbering the paper's Figures 3 and 4 use.
pub const CHOLSKY_PAPER_LABELS: [usize; 10] = [0, 3, 2, 4, 5, 1, 8, 7, 9, 6];

/// CHOLSKY in its original fixed-form FORTRAN (Figure 2 of the paper,
/// with the authors' preprocessing applied: `MAX(-M,-J)` forward
/// substituted and the second `K` loop normalized). Parsed by
/// [`crate::fortran::parse`]; equivalent to [`CHOLSKY`].
pub const CHOLSKY_F77: &str = "\
      SUBROUTINE CHOLSKY (IDA, NMAT, M, N, A, NRHS, IDB, B)
C
C   CHOLESKY DECOMPOSITION/SUBSTITUTION SUBROUTINE.
C   11/28/84  D H BAILEY  MODIFIED FOR NAS KERNEL TEST
C    1/28/92  W W PUGH    PERFORMED FORWARD SUB. AND
C                         NORMALIZED LOOP THAT HAD STEP OF -1
C
      REAL A(0:IDA, -M:0, 0:N), B(0:NRHS, 0:IDB, 0:N), EPSS(0:256)
      DATA EPS/1E-13/
C
C   CHOLESKY DECOMPOSITION
C
      DO 1 J = 0, N
C
C   OFF DIAGONAL ELEMENTS
C
        DO 2 I = MAX(-M,-J), -1
          DO 3 JJ = MAX(-M,-J) - I, -1
            DO 3 L = 0, NMAT
    3         A(L,I,J) = A(L,I,J) - A(L,JJ,I+J) * A(L,I+JJ,J)
          DO 2 L = 0, NMAT
    2       A(L,I,J) = A(L,I,J) * A(L,0,I+J)
C
C   STORE INVERSE OF DIAGONAL ELEMENTS
C
        DO 4 L = 0, NMAT
    4     EPSS(L) = EPS * A(L,0,J)
        DO 5 JJ = MAX(-M,-J), -1
          DO 5 L = 0, NMAT
    5       A(L,0,J) = A(L,0,J) - A(L,JJ,J) ** 2
        DO 1 L = 0, NMAT
    1     A(L,0,J) = 1. / SQRT ( ABS (EPSS(L) + A(L,0,J)) )
C
C   SOLUTION
C
      DO 6 I = 0, NRHS
        DO 7 K = 0, N
          DO 8 L = 0, NMAT
    8       B(I,L,K) = B(I,L,K) * A(L,0,K)
          DO 7 JJ = 1, MIN (M, N-K)
            DO 7 L = 0, NMAT
    7         B(I,L,K+JJ) = B(I,L,K+JJ) - A(L,-JJ,K+JJ) * B(I,L,K)
        DO 6 K = 0, N
          DO 9 L = 0, NMAT
    9       B(I,L,N-K) = B(I,L,N-K) * A(L,0,N-K)
          DO 6 JJ = 1, MIN (M, N-K)
            DO 6 L = 0, NMAT
    6         B(I,L,N-K-JJ) = B(I,L,N-K-JJ) - A(L,-JJ,N-K) * B(I,L,N-K)
C
      RETURN
      END
";

/// The solution phase of CHOLSKY **before** the authors' normalization:
/// the second `K` loop runs `DO 6 K = N, 0, -1` and the subscripts use
/// `K` directly. `fortran::parse` normalizes it automatically; the result
/// is statement-for-statement identical to [`CHOLSKY_F77`]'s solution
/// phase (verified in `tests/fortran_frontend.rs`).
pub const CHOLSKY_SOLUTION_UNNORMALIZED_F77: &str = "\
      REAL A(0:IDA, -M:0, 0:N), B(0:NRHS, 0:IDB, 0:N)
      DO 6 I = 0, NRHS
        DO 7 K = 0, N
          DO 8 L = 0, NMAT
    8       B(I,L,K) = B(I,L,K) * A(L,0,K)
          DO 7 JJ = 1, MIN (M, N-K)
            DO 7 L = 0, NMAT
    7         B(I,L,K+JJ) = B(I,L,K+JJ) - A(L,-JJ,K+JJ) * B(I,L,K)
        DO 6 K = N, 0, -1
          DO 9 L = 0, NMAT
    9       B(I,L,K) = B(I,L,K) * A(L,0,K)
          DO 6 JJ = 1, MIN (M, K)
            DO 6 L = 0, NMAT
    6         B(I,L,K-JJ) = B(I,L,K-JJ) - A(L,-JJ,K) * B(I,L,K)
";

/// The same solution phase in the normalized form of Figure 2.
pub const CHOLSKY_SOLUTION_NORMALIZED_F77: &str = "\
      REAL A(0:IDA, -M:0, 0:N), B(0:NRHS, 0:IDB, 0:N)
      DO 6 I = 0, NRHS
        DO 7 K = 0, N
          DO 8 L = 0, NMAT
    8       B(I,L,K) = B(I,L,K) * A(L,0,K)
          DO 7 JJ = 1, MIN (M, N-K)
            DO 7 L = 0, NMAT
    7         B(I,L,K+JJ) = B(I,L,K+JJ) - A(L,-JJ,K+JJ) * B(I,L,K)
        DO 6 K = 0, N
          DO 9 L = 0, NMAT
    9       B(I,L,N-K) = B(I,L,N-K) * A(L,0,N-K)
          DO 6 JJ = 1, MIN (M, N-K)
            DO 6 L = 0, NMAT
    6         B(I,L,N-K-JJ) = B(I,L,N-K-JJ) - A(L,-JJ,N-K) * B(I,L,N-K)
";

/// Dense (textbook) Cholesky decomposition, one of the `tiny` example
/// families.
pub const CHOLESKY_DENSE: &str = "
    sym n;
    for k := 1 to n do
      a(k, k) := sqrt(a(k, k));
      for i := k+1 to n do
        a(i, k) := a(i, k) / a(k, k);
      endfor
      for j := k+1 to n do
        for i := j to n do
          a(i, j) := a(i, j) - a(i, k) * a(j, k);
        endfor
      endfor
    endfor
";

/// LU decomposition without pivoting.
pub const LU: &str = "
    sym n;
    for k := 1 to n do
      for i := k+1 to n do
        a(i, k) := a(i, k) / a(k, k);
      endfor
      for i := k+1 to n do
        for j := k+1 to n do
          a(i, j) := a(i, j) - a(i, k) * a(k, j);
        endfor
      endfor
    endfor
";

/// A 2-D wavefront: each element depends on its north and west neighbors.
pub const WAVEFRONT: &str = "
    sym n, m;
    for i := 2 to n do
      for j := 2 to m do
        a(i, j) := a(i-1, j) + a(i, j-1);
      endfor
    endfor
";

/// A skewed wavefront variant with a coupled subscript.
pub const WAVEFRONT_SKEWED: &str = "
    sym n, m;
    for i := 2 to n do
      for j := 2 to m do
        a(i+j) := a(i+j-1) + a(i+j-2);
      endfor
    endfor
";

/// A diagonal wavefront over a triangular region.
pub const WAVEFRONT_TRIANGULAR: &str = "
    sym n;
    for i := 2 to n do
      for j := i to n do
        a(i, j) := a(i-1, j) + a(i, j-1);
      endfor
    endfor
";

/// Matrix multiplication (accumulating inner product).
pub const MATMUL: &str = "
    sym n, m, p;
    for i := 1 to n do
      for j := 1 to m do
        c(i, j) := 0;
        for k := 1 to p do
          c(i, j) := c(i, j) + a(i, k) * b(k, j);
        endfor
      endfor
    endfor
";

/// Jacobi-style two-array stencil sweep.
pub const JACOBI: &str = "
    sym n, t;
    for it := 1 to t do
      for i := 2 to n-1 do
        new(i) := a(i-1) + a(i) + a(i+1);
      endfor
      for i := 2 to n-1 do
        a(i) := new(i);
      endfor
    endfor
";

/// Gauss-Seidel-style in-place stencil sweep.
pub const SEIDEL: &str = "
    sym n, t;
    for it := 1 to t do
      for i := 2 to n-1 do
        a(i) := a(i-1) + a(i) + a(i+1);
      endfor
    endfor
";

/// Tridiagonal solver: forward elimination then back substitution.
pub const TRIDIAG: &str = "
    sym n;
    for i := 2 to n do
      w(i) := c(i-1) / d(i-1);
      d(i) := d(i) - w(i) * c(i-1);
      b(i) := b(i) - w(i) * b(i-1);
    endfor
    x(n) := b(n) / d(n);
    for i := 1 to n-1 do
      x(n-i) := (b(n-i) - c(n-i) * x(n-i+1)) / d(n-i);
    endfor
";

/// Contrived total-kill chain: each write completely overwrites the
/// previous one.
pub const CONTRIVED_KILL_CHAIN: &str = "
    sym n;
    for i := 1 to n do
      a(i) := 0;
    endfor
    for i := 1 to n do
      a(i) := 1;
    endfor
    for i := 1 to n do
      x := a(i);
    endfor
";

/// Contrived partial kill: the second write covers only half the range.
pub const CONTRIVED_PARTIAL_KILL: &str = "
    sym n;
    for i := 1 to 2*n do
      a(i) := 0;
    endfor
    for i := 1 to n do
      a(2*i) := 1;
    endfor
    for i := 1 to 2*n do
      x := a(i);
    endfor
";

/// Contrived coupled-distance example exercising restraint vectors.
pub const CONTRIVED_COUPLED: &str = "
    sym n;
    for i := 1 to n do
      for j := 1 to n do
        a(i+j, i-j) := a(i+j-2, i-j) + 1;
      endfor
    endfor
";

/// Contrived scalar accumulation (self output and flow on a scalar).
pub const CONTRIVED_SCALAR: &str = "
    sym n;
    s := 0;
    for i := 1 to n do
      s := s + a(i);
    endfor
    x := s;
";

/// First-order linear recurrence (from the `tiny` examples).
pub const RECURRENCE: &str = "
    sym n;
    for i := 2 to n do
      a(i) := a(i-1) * b(i) + c(i);
    endfor
";

/// Loop-distributed copy: write then read of disjoint halves.
pub const CONTRIVED_DISJOINT: &str = "
    sym n;
    for i := 1 to n do
      a(i) := b(i);
    endfor
    for i := n+1 to 2*n do
      x := a(i);
    endfor
";

/// Gaussian elimination with explicit back substitution.
pub const GAUSS: &str = "
    sym n;
    for k := 1 to n-1 do
      for i := k+1 to n do
        m(i, k) := a(i, k) / a(k, k);
        for j := k+1 to n do
          a(i, j) := a(i, j) - m(i, k) * a(k, j);
        endfor
        b(i) := b(i) - m(i, k) * b(k);
      endfor
    endfor
    x(n) := b(n) / a(n, n);
    for k := 1 to n-1 do
      s(n-k) := b(n-k);
      for j := n-k+1 to n do
        s(n-k) := s(n-k) - a(n-k, j) * x(j);
      endfor
      x(n-k) := s(n-k) / a(n-k, n-k);
    endfor
";

/// Symmetric rank-1 update (triangular write pattern).
pub const SYR1: &str = "
    sym n;
    for i := 1 to n do
      for j := i to n do
        a(i, j) := a(i, j) + x(i) * x(j);
      endfor
    endfor
";

/// Banded matrix-vector multiply (accumulation with offset subscripts).
pub const BANDED_MV: &str = "
    sym n, w;
    for i := 1 to n do
      y(i) := 0;
      for j := -w to w do
        y(i) := y(i) + a(i, j) * x(i + j);
      endfor
    endfor
";

/// Odd-even transposition sweep (strided writes).
pub const ODD_EVEN: &str = "
    sym n, t;
    for it := 1 to t do
      for i := 1 to n step 2 do
        a(i) := a(i) + a(i + 1);
      endfor
      for i := 2 to n step 2 do
        a(i) := a(i) + a(i + 1);
      endfor
    endfor
";

/// In-place prefix sums (classic linear recurrence).
pub const PREFIX_SUM: &str = "
    sym n;
    for i := 2 to n do
      a(i) := a(i) + a(i - 1);
    endfor
";

/// Array reversal via a temporary (cover + kill opportunities).
pub const REVERSE_COPY: &str = "
    sym n;
    for i := 1 to n do
      t(i) := a(n + 1 - i);
    endfor
    for i := 1 to n do
      a(i) := t(i);
    endfor
    for i := 1 to n do
      x := a(i);
    endfor
";

/// Red-black Gauss-Seidel over a 1-D mesh.
pub const RED_BLACK: &str = "
    sym n, t;
    for it := 1 to t do
      for i := 2 to n-1 step 2 do
        a(i) := a(i-1) + a(i+1);
      endfor
      for i := 3 to n-1 step 2 do
        a(i) := a(i-1) + a(i+1);
      endfor
    endfor
";

/// Two-phase double buffering (total kill each phase).
pub const DOUBLE_BUFFER: &str = "
    sym n, t;
    for it := 1 to t do
      for i := 2 to n-1 do
        b(i) := a(i-1) + a(i+1);
      endfor
      for i := 2 to n-1 do
        a(i) := b(i);
      endfor
    endfor
";

/// Livermore-style inner product plus update.
pub const DOT_AND_AXPY: &str = "
    sym n;
    q := 0;
    for i := 1 to n do
      q := q + x(i) * y(i);
    endfor
    for i := 1 to n do
      z(i) := z(i) + q * x(i);
    endfor
";

/// Boundary initialization then interior sweep (partial covers).
pub const BOUNDARY_INTERIOR: &str = "
    sym n;
    a(1) := 0;
    a(n) := 0;
    for i := 2 to n-1 do
      a(i) := 1;
    endfor
    for i := 1 to n do
      x := a(i);
    endfor
";

/// Diagonal-major traversal of a 2-D array (coupled subscripts).
pub const DIAGONAL_SWEEP: &str = "
    sym n;
    for d := 2 to 2*n do
      for i := max(1, d - n) to min(n, d - 1) do
        a(i, d - i) := a(i - 1, d - i) + a(i, d - i - 1);
      endfor
    endfor
";

/// Strip-mined copy with an offset tail (kill on overlap).
pub const STRIP_MINE: &str = "
    sym n;
    for i := 1 to n do
      a(i) := b(i);
    endfor
    for i := 1 to n/1 do
      a(i) := c(i);
    endfor
    for i := 1 to n do
      x := a(i);
    endfor
";

/// Histogram-style scatter through an index array (§5 material).
pub const HISTOGRAM: &str = "
    sym n, k;
    int idx[1:n];
    for i := 1 to n do
      h(idx(i)) := h(idx(i)) + 1;
    endfor
";

/// Triangular solve (forward substitution, dense).
pub const TRSOLVE: &str = "
    sym n;
    for i := 1 to n do
      x(i) := b(i);
      for j := 1 to i-1 do
        x(i) := x(i) - l(i, j) * x(j);
      endfor
      x(i) := x(i) / l(i, i);
    endfor
";


/// 1-D convolution (reads a window of the input).
pub const CONV1D: &str = "
    sym n, w;
    for i := w+1 to n-w do
      s := 0;
      for k := -w to w do
        s := s + a(i + k) * c(k);
      endfor
      b(i) := s;
    endfor
";

/// Correlation of two signals into a lag array.
pub const CORRELATE: &str = "
    sym n, lags;
    for l := 0 to lags do
      r(l) := 0;
      for i := 1 to n - l do
        r(l) := r(l) + x(i) * x(i + l);
      endfor
    endfor
";

/// BiCG-style double traversal (two outputs from one matrix sweep).
pub const BICG: &str = "
    sym n, m;
    for i := 1 to n do
      q(i) := 0;
    endfor
    for j := 1 to m do
      s(j) := 0;
    endfor
    for i := 1 to n do
      for j := 1 to m do
        s(j) := s(j) + r(i) * a(i, j);
        q(i) := q(i) + a(i, j) * p(j);
      endfor
    endfor
";

/// GEMVER-style composite: rank-two update then two matrix-vector
/// products.
pub const GEMVER: &str = "
    sym n;
    for i := 1 to n do
      for j := 1 to n do
        a(i, j) := a(i, j) + u1(i) * v1(j) + u2(i) * v2(j);
      endfor
    endfor
    for i := 1 to n do
      for j := 1 to n do
        x(i) := x(i) + a(j, i) * y(j);
      endfor
    endfor
    for i := 1 to n do
      for j := 1 to n do
        w(i) := w(i) + a(i, j) * x(j);
      endfor
    endfor
";

/// ATAX: matrix times its transpose times a vector.
pub const ATAX: &str = "
    sym n, m;
    for i := 1 to n do
      tmp(i) := 0;
      for j := 1 to m do
        tmp(i) := tmp(i) + a(i, j) * x(j);
      endfor
      for j := 1 to m do
        y(j) := y(j) + a(i, j) * tmp(i);
      endfor
    endfor
";

/// MVT: two independent matrix-vector products.
pub const MVT: &str = "
    sym n;
    for i := 1 to n do
      for j := 1 to n do
        x1(i) := x1(i) + a(i, j) * y1(j);
      endfor
    endfor
    for i := 1 to n do
      for j := 1 to n do
        x2(i) := x2(i) + a(j, i) * y2(j);
      endfor
    endfor
";

/// After Banerjee, *Loop Transformations for Restructuring Compilers*,
/// Example 5.7 (p. 135; reconstruction of the chill `dep_test` suite):
/// stride-2 write against the odd offsets. The GCD test disproves the
/// dependence (2 ∤ 1); the Banerjee bounds test cannot (the real-valued
/// difference range straddles 0). The Omega test proves independence
/// exactly.
pub const BANERJEE_5_7: &str = "
    for i := 1 to 100 do
      a(2*i) := b(i);
      c(i) := a(2*i + 1);
    endfor
";

/// Banerjee Example 5.10 (p. 144; reconstruction): unit-stride accesses
/// to disjoint constant ranges. The GCD test is useless (gcd 1 divides
/// everything); the Banerjee bounds test disproves the dependence, and
/// the Omega test agrees.
pub const BANERJEE_5_10: &str = "
    for i := 1 to 50 do
      a(i + 60) := b(i);
      c(i) := a(i);
    endfor
";

/// Banerjee Example 5.11 (p. 150; reconstruction): coupled subscripts.
/// Dimension by dimension both baselines say "maybe" (i = i' and
/// i = i' + 1 are each satisfiable), but the conjunction is not — only a
/// test that solves the dimensions *simultaneously* proves independence.
pub const BANERJEE_5_11: &str = "
    for i := 1 to 100 do
      a(i, i) := b(i);
      c(i) := a(i, i + 1);
    endfor
";

/// Banerjee Example 5.12 (p. 156; reconstruction): symbolic bounds. The
/// write region `n+1..2n` and the read region `1..n` are disjoint for
/// every n, but both baselines give up on the symbolic loop bounds. The
/// second statement is a genuine stride-2 recurrence that every test
/// must keep.
pub const BANERJEE_5_12: &str = "
    sym n;
    assume n >= 1;
    for i := 1 to n do
      a(i + n) := b(i);
      c(i) := a(i);
    endfor
    for i := 2 to n do
      d(2*i) := d(2*i - 2);
    endfor
";

/// Pascal's triangle built row by row in place (triangular kill
/// structure).
pub const PASCAL: &str = "
    sym n;
    for i := 2 to n do
      for j := 2 to i-1 do
        c(i, j) := c(i-1, j-1) + c(i-1, j);
      endfor
      c(i, 1) := 1;
      c(i, i) := 1;
    endfor
";

/// Successive over-relaxation on a 2-D grid (in place, both neighbors).
pub const SOR2D: &str = "
    sym n, m, t;
    for it := 1 to t do
      for i := 2 to n-1 do
        for j := 2 to m-1 do
          u(i, j) := u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1);
        endfor
      endfor
    endfor
";

/// Gauss-Jordan elimination (full pivot row updates).
pub const GAUSS_JORDAN: &str = "
    sym n;
    for k := 1 to n do
      for j := 1 to n do
        if j != k then
          a(k, j) := a(k, j) / a(k, k);
        endif
      endfor
      for i := 1 to n do
        if i != k then
          for j := 1 to n do
            a(i, j) := a(i, j) - a(i, k) * a(k, j);
          endfor
        endif
      endfor
    endfor
";

/// Running maximum with an index (reduction with two scalars).
pub const RUNNING_MAX: &str = "
    sym n;
    best := a(1);
    besti := 1;
    for i := 2 to n do
      best := max(best, a(i));
      besti := besti + 1;
    endfor
    x := best;
";

/// Blocked copy through a small buffer (repeated total kill of the
/// buffer).
pub const BLOCKED_COPY: &str = "
    sym n, b;
    for blk := 0 to n/1 do
      for i := 1 to 8 do
        buf(i) := src(8 * blk + i);
      endfor
      for i := 1 to 8 do
        dst(8 * blk + i) := buf(i);
      endfor
    endfor
";

/// In-place array reversal via symmetric swaps through temporaries.
pub const SWAP_HALVES: &str = "
    sym n;
    for i := 1 to n do
      t1 := a(i);
      a(i) := a(2 * n + 1 - i);
      a(2 * n + 1 - i) := t1;
    endfor
";

/// Row sweep into a scratch row, then a stale pivot-slot reset after the
/// uses. The reset's value is only ever reachable across outer
/// iterations, where the next row's sweep overwrites it first — a false
/// carried flow on `t` that only the §4.1 kill test (a *different*
/// statement is the killer) eliminates, unlocking the `i` loop after
/// privatizing `t`. Refinement alone cannot: the reset never rewrites
/// its own slot.
pub const PIVOT_RESET: &str = "
    sym n, m;
    assume m >= n;
    for i := 1 to n do
      for j := 1 to m do
        t(j) := a(i, j);
      endfor
      for j := 1 to m do
        b(i, j) := t(j);
      endfor
      t(i) := 0;
    endfor
";

/// [`PIVOT_RESET`] nested inside a genuinely sequential time loop: the
/// kill-unlocked parallel loop sits at depth 2 while the `s` loop stays
/// sequential (carried flow on `b`).
pub const STEPPED_RESET: &str = "
    sym n, m, steps;
    assume m >= n;
    for s := 1 to steps do
      for i := 1 to n do
        for j := 1 to m do
          t(j) := a(i, j) + c(s);
        endfor
        for j := 1 to m do
          b(i, j) := b(i, j) + t(j);
        endfor
        t(i) := 0;
      endfor
    endfor
";

/// All corpus entries in a stable order.
pub fn all() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry { name: "example1", source: EXAMPLE_1 },
        CorpusEntry { name: "example1_m", source: EXAMPLE_1_M },
        CorpusEntry { name: "example1_m_asserted", source: EXAMPLE_1_M_ASSERTED },
        CorpusEntry { name: "example2", source: EXAMPLE_2 },
        CorpusEntry { name: "example3", source: EXAMPLE_3 },
        CorpusEntry { name: "example4", source: EXAMPLE_4 },
        CorpusEntry { name: "example5", source: EXAMPLE_5 },
        CorpusEntry { name: "example6", source: EXAMPLE_6 },
        CorpusEntry { name: "example7", source: EXAMPLE_7 },
        CorpusEntry { name: "example8", source: EXAMPLE_8 },
        CorpusEntry { name: "example9", source: EXAMPLE_9 },
        CorpusEntry { name: "example10", source: EXAMPLE_10 },
        CorpusEntry { name: "example11", source: EXAMPLE_11 },
        CorpusEntry { name: "cholsky", source: CHOLSKY },
        CorpusEntry { name: "cholesky_dense", source: CHOLESKY_DENSE },
        CorpusEntry { name: "lu", source: LU },
        CorpusEntry { name: "wavefront", source: WAVEFRONT },
        CorpusEntry { name: "wavefront_skewed", source: WAVEFRONT_SKEWED },
        CorpusEntry { name: "wavefront_triangular", source: WAVEFRONT_TRIANGULAR },
        CorpusEntry { name: "matmul", source: MATMUL },
        CorpusEntry { name: "jacobi", source: JACOBI },
        CorpusEntry { name: "seidel", source: SEIDEL },
        CorpusEntry { name: "tridiag", source: TRIDIAG },
        CorpusEntry { name: "kill_chain", source: CONTRIVED_KILL_CHAIN },
        CorpusEntry { name: "partial_kill", source: CONTRIVED_PARTIAL_KILL },
        CorpusEntry { name: "coupled", source: CONTRIVED_COUPLED },
        CorpusEntry { name: "scalar", source: CONTRIVED_SCALAR },
        CorpusEntry { name: "recurrence", source: RECURRENCE },
        CorpusEntry { name: "disjoint", source: CONTRIVED_DISJOINT },
        CorpusEntry { name: "gauss", source: GAUSS },
        CorpusEntry { name: "syr1", source: SYR1 },
        CorpusEntry { name: "banded_mv", source: BANDED_MV },
        CorpusEntry { name: "odd_even", source: ODD_EVEN },
        CorpusEntry { name: "prefix_sum", source: PREFIX_SUM },
        CorpusEntry { name: "reverse_copy", source: REVERSE_COPY },
        CorpusEntry { name: "red_black", source: RED_BLACK },
        CorpusEntry { name: "double_buffer", source: DOUBLE_BUFFER },
        CorpusEntry { name: "dot_and_axpy", source: DOT_AND_AXPY },
        CorpusEntry { name: "boundary_interior", source: BOUNDARY_INTERIOR },
        CorpusEntry { name: "diagonal_sweep", source: DIAGONAL_SWEEP },
        CorpusEntry { name: "strip_mine", source: STRIP_MINE },
        CorpusEntry { name: "histogram", source: HISTOGRAM },
        CorpusEntry { name: "trsolve", source: TRSOLVE },
        CorpusEntry { name: "conv1d", source: CONV1D },
        CorpusEntry { name: "correlate", source: CORRELATE },
        CorpusEntry { name: "bicg", source: BICG },
        CorpusEntry { name: "gemver", source: GEMVER },
        CorpusEntry { name: "atax", source: ATAX },
        CorpusEntry { name: "mvt", source: MVT },
        CorpusEntry { name: "banerjee_5_7", source: BANERJEE_5_7 },
        CorpusEntry { name: "banerjee_5_10", source: BANERJEE_5_10 },
        CorpusEntry { name: "banerjee_5_11", source: BANERJEE_5_11 },
        CorpusEntry { name: "banerjee_5_12", source: BANERJEE_5_12 },
        CorpusEntry { name: "pascal", source: PASCAL },
        CorpusEntry { name: "sor2d", source: SOR2D },
        CorpusEntry { name: "gauss_jordan", source: GAUSS_JORDAN },
        CorpusEntry { name: "running_max", source: RUNNING_MAX },
        CorpusEntry { name: "blocked_copy", source: BLOCKED_COPY },
        CorpusEntry { name: "swap_halves", source: SWAP_HALVES },
        CorpusEntry { name: "pivot_reset", source: PIVOT_RESET },
        CorpusEntry { name: "stepped_reset", source: STEPPED_RESET },
    ]
}

/// Looks up a corpus entry by name.
pub fn by_name(name: &str) -> Option<CorpusEntry> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, Program};

    #[test]
    fn every_corpus_program_parses_and_analyzes() {
        for entry in all() {
            let p = Program::parse(entry.source)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", entry.name));
            analyze(&p).unwrap_or_else(|e| panic!("{} failed analysis: {e}", entry.name));
        }
    }

    #[test]
    fn cholsky_has_nine_statements() {
        let p = Program::parse(CHOLSKY).unwrap();
        let info = analyze(&p).unwrap();
        assert_eq!(info.stmts.len(), 9);
        // Statement 1 (paper label 3) sits under 4 loops: J, I, JJ, L.
        let s1 = &info.stmts[0];
        assert_eq!(s1.loops.len(), 4);
        assert_eq!(
            s1.loops.iter().map(|l| l.var.as_str()).collect::<Vec<_>>(),
            vec!["J", "I", "JJ", "L"]
        );
        // Statement 7 (paper label 7) reads b(I,L,K) under loops I,K,JJ,L.
        let s7 = &info.stmts[6];
        assert_eq!(
            s7.loops.iter().map(|l| l.var.as_str()).collect::<Vec<_>>(),
            vec!["I", "K", "JJ", "L"]
        );
    }

    #[test]
    fn cholsky_reads_and_writes_look_right() {
        let p = Program::parse(CHOLSKY).unwrap();
        let info = analyze(&p).unwrap();
        let s1 = &info.stmts[0];
        assert_eq!(s1.write.array, "a");
        assert_eq!(s1.reads.len(), 3);
        // epss statement reads a and writes epss.
        let s3 = &info.stmts[2];
        assert_eq!(s3.write.array, "epss");
        assert_eq!(s3.reads.len(), 1);
        assert_eq!(s3.reads[0].array, "a");
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("cholsky").is_some());
        assert!(by_name("nope").is_none());
        for e in all() {
            assert_eq!(by_name(e.name).unwrap().source, e.source);
        }
    }

    #[test]
    fn example_7_symbols() {
        let p = Program::parse(EXAMPLE_7).unwrap();
        let info = analyze(&p).unwrap();
        for s in ["x", "y", "n", "m"] {
            assert!(info.syms.contains(s), "missing sym {s}");
        }
    }

    #[test]
    fn example_11_scalar_induction() {
        let p = Program::parse(EXAMPLE_11).unwrap();
        let info = analyze(&p).unwrap();
        // k is written, so it is a scalar, not a symbolic constant.
        assert!(info.written.contains("k"));
        assert!(!info.syms.contains("k"));
    }
}
