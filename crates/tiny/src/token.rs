//! Tokens of the tiny loop language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (loop variable, array, scalar, intrinsic).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal (kept as text; opaque to the analysis).
    Float(String),
    /// `for`
    For,
    /// `to`
    To,
    /// `step`
    Step,
    /// `do`
    Do,
    /// `endfor`
    EndFor,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `endif`
    EndIf,
    /// `sym` — declares symbolic constants
    Sym,
    /// `real` — declares a real array
    Real,
    /// `int` — declares an integer array
    IntKw,
    /// `assume` — asserts a relation between symbolic constants
    Assume,
    /// `:=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `&&` or `and`
    And,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(n) => write!(f, "integer `{n}`"),
            Token::Float(s) => write!(f, "float `{s}`"),
            Token::For => write!(f, "`for`"),
            Token::To => write!(f, "`to`"),
            Token::Step => write!(f, "`step`"),
            Token::Do => write!(f, "`do`"),
            Token::EndFor => write!(f, "`endfor`"),
            Token::If => write!(f, "`if`"),
            Token::Then => write!(f, "`then`"),
            Token::Else => write!(f, "`else`"),
            Token::EndIf => write!(f, "`endif`"),
            Token::Sym => write!(f, "`sym`"),
            Token::Real => write!(f, "`real`"),
            Token::IntKw => write!(f, "`int`"),
            Token::Assume => write!(f, "`assume`"),
            Token::Assign => write!(f, "`:=`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Comma => write!(f, "`,`"),
            Token::Semi => write!(f, "`;`"),
            Token::Colon => write!(f, "`:`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::Le => write!(f, "`<=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Eq => write!(f, "`=`"),
            Token::Ne => write!(f, "`!=`"),
            Token::And => write!(f, "`&&`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}
