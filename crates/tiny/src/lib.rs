#![warn(missing_docs)]
//! # tiny — a loop-program frontend for dependence analysis
//!
//! A reimplementation of the program model of Michael Wolfe's `tiny`
//! research tool, as used by Pugh & Wonnacott (PLDI 1992): structured
//! `for` nests with affine (or `min`/`max`) bounds, assignment statements
//! over array elements, symbolic constants, and user assertions.
//!
//! The crate provides a lexer, parser, pretty-printer and semantic
//! analysis that flattens the loop tree into per-statement records ready
//! for dependence analysis, plus the benchmark [`corpus`] containing the
//! paper's Examples 1–11 and the CHOLSKY NAS kernel of Figure 2.
//!
//! # Example
//!
//! ```
//! use tiny::{analyze, Program};
//!
//! let program = Program::parse(
//!     "
//!     sym n, m;
//!     for L1 := 1 to n do
//!       for L2 := 2 to m do
//!         a(L2) := a(L2-1);
//!       endfor
//!     endfor
//!     ",
//! )?;
//! let info = analyze(&program)?;
//! assert_eq!(info.stmts.len(), 1);
//! assert_eq!(info.stmts[0].loops.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod corpus;
pub mod fortran;
mod error;
pub mod lexer;
pub mod loop_normalize;
pub mod parser;
pub mod sema;
pub mod token;

pub mod pretty;

pub use ast::{
    Access, Affine, ArrayDecl, Assign, BinOp, Expr, ForLoop, Program, RelOp, Relation, Stmt,
};
pub use error::{Error, Result};
pub use sema::{analyze, LoopCtx, ProgramInfo, StmtInfo};
