#![warn(missing_docs)]
//! Hermetic test and measurement substrate for the workspace.
//!
//! The build environment has no access to an external crate registry, so
//! everything the test and benchmark suites need lives here, in-repo:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256** seeded via
//!   SplitMix64) with the `gen_range`/`shuffle`-style helpers random
//!   generators need. Identical seeds produce identical streams on every
//!   platform, which is what reproducible fuzzing and benchmark input
//!   generation require.
//! * [`prop`] — a minimal property-testing framework: plain closures over
//!   [`Rng`] as generators, a [`Shrink`](prop::Shrink) trait (or an
//!   explicit shrink function) for greedy minimization of failing cases,
//!   an iteration-capped run loop, and explicit replay of regression
//!   witnesses.
//! * [`bench`] — a lightweight benchmark runner: warmup, batch-size
//!   calibration, a fixed sample budget, min/median/p95 statistics, and
//!   machine-readable JSON-lines output suitable for trajectory tracking.
//! * [`alloc`] — a counting global allocator (allocs/deallocs/peak-bytes
//!   plus a per-thread allocation counter) so allocation budgets can be
//!   measured, not asserted. Registered per-binary; when it is, the
//!   bench runner reports allocations per iteration alongside the
//!   timing statistics.
//!
//! Everything is deterministic by default. Set `HARNESS_SEED` to vary the
//! base seed of property runs, and `HARNESS_CASE_SEED` to replay one
//! specific failing case printed in a failure message.

pub mod alloc;
pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{Rng, SplitMix64};
