//! A minimal property-testing framework.
//!
//! Design: generators are plain closures `Fn(&mut Rng) -> T` (compose
//! them with ordinary Rust — helper functions, recursion with an explicit
//! depth budget). Shrinking is defined on the *value*, either through the
//! [`Shrink`] trait (generic impls cover ints, bools, tuples and `Vec`s)
//! or through an explicit shrink function passed to [`check_with`] when
//! the value type lives in another crate (the orphan rule forbids a local
//! `Shrink` impl there).
//!
//! Properties return `Result<(), String>`; use the [`prop_assert!`] and
//! [`prop_assert_eq!`] macros from the crate root. Panics inside a
//! property are caught and treated as failures, so `unwrap()`s shrink
//! too.
//!
//! A failure is greedily minimized (first failing shrink candidate is
//! taken, repeat until no candidate fails or the evaluation budget runs
//! out) and reported with its case seed. Replay knobs:
//!
//! * `HARNESS_SEED=<u64>` — change the base seed of the whole run;
//! * `HARNESS_CASE_SEED=<u64>` — run exactly one case with that seed
//!   (the value printed in a failure message).
//!
//! Persisted regression witnesses are explicit: re-build the minimal
//! failing value in a named `#[test]` and call [`check_value`]. That
//! keeps historical coverage independent of generator evolution — a new
//! generator cannot silently stop producing an old bug's trigger.
//!
//! [`prop_assert!`]: crate::prop_assert
//! [`prop_assert_eq!`]: crate::prop_assert_eq

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{Rng, SplitMix64};

/// Default base seed (overridden by `HARNESS_SEED`).
pub const DEFAULT_SEED: u64 = 0x0DDB_1A5E_5BAD_5EED;

/// Run-loop configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_evals: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_evals: 4096,
            seed: seed_from_env(),
        }
    }
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn seed_from_env() -> u64 {
    std::env::var("HARNESS_SEED")
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(DEFAULT_SEED)
}

fn case_seed(base: u64, case: u32) -> u64 {
    SplitMix64::new(base ^ (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// Types that can propose strictly "smaller" candidate values for
/// failure minimization. Candidates need not preserve invariants — a
/// candidate that passes the property is simply not taken.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`, roughly smallest-first.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 && half != v {
                        out.push(half);
                    }
                    let step = v - v.signum();
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
shrink_signed!(i8, i16, i32, i64, isize);

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let step = v - 1;
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
shrink_unsigned!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            vec![]
        }
    }
}

impl Shrink for String {
    // Identifiers and the like usually carry syntactic invariants;
    // shrinking them mostly minimizes into *different* bugs, so don't.
    fn shrink(&self) -> Vec<Self> {
        vec![]
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        shrink_vec(self, T::shrink, 0)
    }
}

/// The `Vec` shrink strategy with an explicit element shrinker and a
/// minimum length — for custom shrinkers over foreign element types.
///
/// Candidates: drop the first/second half, drop each single element,
/// then shrink each element in place.
pub fn shrink_vec<T: Clone>(
    xs: &[T],
    shrink_elem: impl Fn(&T) -> Vec<T>,
    min_len: usize,
) -> Vec<Vec<T>> {
    let n = xs.len();
    let mut out = Vec::new();
    if n > min_len.max(1) {
        if n / 2 >= min_len {
            out.push(xs[..n / 2].to_vec());
            out.push(xs[n / 2..].to_vec());
        }
    }
    if n > min_len {
        for i in 0..n {
            let mut v = xs.to_vec();
            v.remove(i);
            out.push(v);
        }
    }
    for i in 0..n {
        for cand in shrink_elem(&xs[i]) {
            let mut v = xs.to_vec();
            v[i] = cand;
            out.push(v);
        }
    }
    out
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
shrink_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Evaluates a property, converting a panic into a failure message.
fn eval<T>(property: &impl Fn(&T) -> Result<(), String>, value: &T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| property(value))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("property panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("property panicked: {s}")
    } else {
        "property panicked".to_string()
    }
}

/// Greedily minimizes `value` under `failing`, spending at most
/// `max_evals` predicate evaluations. Returns the smallest failing value
/// reached (which is `value` itself if no candidate fails).
pub fn minimize<T: Clone>(
    mut value: T,
    shrink: impl Fn(&T) -> Vec<T>,
    mut failing: impl FnMut(&T) -> bool,
    max_evals: u32,
) -> T {
    let mut evals = 0u32;
    'outer: loop {
        for cand in shrink(&value) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if failing(&cand) {
                value = cand;
                continue 'outer;
            }
        }
        break;
    }
    value
}

/// Runs `property` against `cases` values from `generate`, minimizing
/// any failure with the explicit `shrink` function.
///
/// # Panics
///
/// Panics (failing the enclosing test) on the first property failure,
/// reporting the minimal witness and the case seed for replay.
pub fn check_with<T, G, S, P>(config: &Config, generate: G, shrink: S, property: P)
where
    T: Clone + Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let replay = std::env::var("HARNESS_CASE_SEED")
        .ok()
        .and_then(|s| parse_u64(&s));
    let cases: Vec<u64> = match replay {
        Some(seed) => vec![seed],
        None => (0..config.cases)
            .map(|i| case_seed(config.seed, i))
            .collect(),
    };
    for (case, &seed) in cases.iter().enumerate() {
        let value = generate(&mut Rng::from_seed(seed));
        if let Some(msg) = eval(&property, &value) {
            let mut min_msg = msg.clone();
            let minimal = minimize(
                value.clone(),
                &shrink,
                |cand| match eval(&property, cand) {
                    Some(m) => {
                        min_msg = m;
                        true
                    }
                    None => false,
                },
                config.max_shrink_evals,
            );
            panic!(
                "property failed (case {case}/{}, case seed {seed:#018x}; \
                 replay with HARNESS_CASE_SEED={seed:#x})\n\
                 minimal witness: {minimal:#?}\n{min_msg}\n\
                 (original witness: {value:?})",
                cases.len(),
            );
        }
    }
}

/// Runs `property` against `cases` values from `generate`, minimizing
/// any failure through the value's [`Shrink`] impl.
///
/// # Panics
///
/// Panics (failing the enclosing test) on the first property failure.
pub fn check<T, G, P>(config: &Config, generate: G, property: P)
where
    T: Shrink + Clone + Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(config, generate, T::shrink, property);
}

/// Replays one explicit value — the named-regression entry point. The
/// witness is printed on failure; nothing is shrunk.
///
/// # Panics
///
/// Panics (failing the enclosing test) if the property rejects `value`.
pub fn check_value<T: Debug>(value: &T, property: impl Fn(&T) -> Result<(), String>) {
    if let Some(msg) = eval(&property, value) {
        panic!("regression case failed: {msg}\nwitness: {value:#?}");
    }
}

/// Property-style assertion: early-returns `Err` from the enclosing
/// property function instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Property-style equality assertion: early-returns `Err` from the
/// enclosing property function instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(64);
        check(
            &cfg,
            |rng| rng.gen_range_i64(-100..=100),
            |v| {
                prop_assert!((-100..=100).contains(v));
                Ok(())
            },
        );
    }

    /// A planted failure ("some element >= 100") must minimize to its
    /// smallest witness: exactly `[100]`.
    #[test]
    fn planted_failure_minimizes_to_smallest_witness() {
        let minimal = minimize(
            vec![3i64, 250, 7, 131],
            |v| v.shrink(),
            |v| v.iter().any(|&x| x >= 100),
            100_000,
        );
        assert_eq!(minimal, vec![100]);
    }

    #[test]
    fn tuple_and_nested_shrinking_reach_fixpoints() {
        let minimal = minimize(
            (17i64, vec![9u64, 4, 12]),
            |v| v.shrink(),
            |(a, v)| *a > 4 && !v.is_empty(),
            100_000,
        );
        assert_eq!(minimal, (5, vec![0]));
    }

    #[test]
    fn failure_reports_minimal_witness_and_seed() {
        let cfg = Config {
            cases: 200,
            max_shrink_evals: 100_000,
            seed: 1,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &cfg,
                |rng| {
                    let n = rng.gen_range_usize(0..6);
                    (0..n).map(|_| rng.gen_range_i64(0..=300)).collect::<Vec<_>>()
                },
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 100), "element out of range");
                    Ok(())
                },
            );
        }));
        let msg = panic_message(result.expect_err("property must fail").as_ref());
        assert!(msg.contains("100"), "minimal witness missing from: {msg}");
        assert!(msg.contains("HARNESS_CASE_SEED"), "no replay seed in: {msg}");
    }

    /// Panics inside the property (e.g. `unwrap`) are caught and shrunk
    /// like ordinary failures.
    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let cfg = Config {
            cases: 50,
            max_shrink_evals: 10_000,
            seed: 2,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                &cfg,
                |rng| rng.gen_range_i64(0..=50),
                |v| {
                    assert!(*v < 10, "boom at {v}");
                    Ok(())
                },
            );
        }));
        let msg = panic_message(result.expect_err("property must fail").as_ref());
        assert!(msg.contains("minimal witness: 10"), "bad witness in: {msg}");
    }

    #[test]
    fn check_value_accepts_and_rejects() {
        check_value(&5i64, |v| {
            prop_assert_eq!(*v, 5);
            Ok(())
        });
        let result = catch_unwind(|| {
            check_value(&6i64, |v| {
                prop_assert_eq!(*v, 5);
                Ok(())
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let collect = |seed: u64| {
            let out = std::cell::RefCell::new(Vec::new());
            let cfg = Config {
                cases: 20,
                max_shrink_evals: 0,
                seed,
            };
            check_with(
                &cfg,
                |rng| rng.next_u64(),
                |_| Vec::new(),
                |v| {
                    out.borrow_mut().push(*v);
                    Ok(())
                },
            );
            out.into_inner()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
