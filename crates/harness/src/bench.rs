//! A lightweight benchmark runner.
//!
//! Each measurement auto-calibrates a batch size so one timed batch
//! lasts long enough to swamp timer overhead, warms up, then times a
//! fixed number of batches. Per-iteration min/median/p95/mean are
//! reported two ways:
//!
//! * a human-readable line on **stderr**;
//! * a machine-readable JSON object on **stdout**, one line per
//!   benchmark — pipe into `BENCH_*.json` files for trajectory tracking.
//!
//! Mirroring criterion's convention, a bench binary run without a
//! `--bench` argument (which is how `cargo test` executes `[[bench]]`
//! targets, vs `cargo bench` which passes it) performs a **quick smoke
//! run**: no warmup, two samples, batch size 1 — just enough to prove
//! the benchmark still works. `HARNESS_BENCH_QUICK=1` forces the same.
//!
//! Env knobs: `HARNESS_BENCH_SAMPLES`, `HARNESS_BENCH_WARMUP_MS`,
//! `HARNESS_BENCH_BATCH_NS` override the defaults.

use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration timing statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name.
    pub name: String,
    /// Number of timed samples (batches).
    pub samples: usize,
    /// Iterations per batch after calibration.
    pub iters_per_sample: u64,
    /// Fastest per-iteration time, ns.
    pub min_ns: f64,
    /// Median per-iteration time, ns.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time, ns.
    pub p95_ns: f64,
    /// Mean per-iteration time, ns.
    pub mean_ns: f64,
    /// Mean allocations per iteration over the timed samples, measured
    /// with the calling thread's [`crate::alloc`] counter. Zero when the
    /// binary did not register [`crate::alloc::CountingAlloc`].
    pub allocs_per_iter: f64,
}

impl Stats {
    /// The stats as one JSON object on a single line.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"iters_per_sample\":{},\
             \"min_ns\":{:.1},\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\
             \"allocs_per_iter\":{:.1}}}",
            json_escape(&self.name),
            self.samples,
            self.iters_per_sample,
            self.min_ns,
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
            self.allocs_per_iter,
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// The benchmark runner. Construct with [`Bench::from_env`] in a
/// `[[bench]]` target's `main`, then call [`Bench::bench`] per case.
#[derive(Debug)]
pub struct Bench {
    samples: usize,
    warmup_ns: u64,
    target_batch_ns: u64,
    quick: bool,
    results: Vec<Stats>,
}

impl Bench {
    /// A runner configured from the process arguments and environment
    /// (see the module docs for the quick-mode rules and env knobs).
    pub fn from_env() -> Self {
        let full = std::env::args().any(|a| a == "--bench")
            && env_u64("HARNESS_BENCH_QUICK").is_none();
        let mut b = if full {
            Bench::full()
        } else {
            Bench::quick()
        };
        if let Some(s) = env_u64("HARNESS_BENCH_SAMPLES") {
            b.samples = (s as usize).max(1);
        }
        if let Some(ms) = env_u64("HARNESS_BENCH_WARMUP_MS") {
            b.warmup_ns = ms * 1_000_000;
        }
        if let Some(ns) = env_u64("HARNESS_BENCH_BATCH_NS") {
            b.target_batch_ns = ns.max(1);
        }
        b
    }

    /// A full-measurement runner: 200 ms warmup, 30 samples, batches
    /// calibrated to ~10 ms.
    pub fn full() -> Self {
        Bench {
            samples: 30,
            warmup_ns: 200_000_000,
            target_batch_ns: 10_000_000,
            quick: false,
            results: Vec::new(),
        }
    }

    /// A smoke-run configuration: no warmup, two samples, batch size 1.
    pub fn quick() -> Self {
        Bench {
            samples: 2,
            warmup_ns: 0,
            target_batch_ns: 1,
            quick: true,
            results: Vec::new(),
        }
    }

    /// Overrides the sample count unless the environment already did
    /// (lets heavy macro-benchmarks default lower than micro-benchmarks).
    pub fn default_samples(mut self, samples: usize) -> Self {
        if !self.quick && env_u64("HARNESS_BENCH_SAMPLES").is_none() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Measures `f`, prints the human line (stderr) and JSON line
    /// (stdout), and returns the stats.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Stats {
        // Calibrate the batch size from a single untimed-ish run.
        let iters = if self.quick {
            1
        } else {
            let once = time_batch(&mut f, 1).max(1);
            (self.target_batch_ns / once).clamp(1, 10_000_000)
        };

        if self.warmup_ns > 0 {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < self.warmup_ns {
                black_box(f());
            }
        }

        let allocs_before = crate::alloc::thread_allocs();
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| time_batch(&mut f, iters) as f64 / iters as f64)
            .collect();
        let total_iters = self.samples as u64 * iters;
        let allocs_per_iter =
            (crate::alloc::thread_allocs() - allocs_before) as f64 / total_iters as f64;
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter.len();
        let stats = Stats {
            name: name.to_string(),
            samples: n,
            iters_per_sample: iters,
            min_ns: per_iter[0],
            median_ns: per_iter[n / 2],
            p95_ns: per_iter[(((n - 1) as f64 * 0.95).ceil()) as usize],
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
            allocs_per_iter,
        };
        eprintln!(
            "{name:<44} median {:>12} (min {}, p95 {}, {}x{} iters){}",
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.p95_ns),
            n,
            iters,
            if self.quick { "  [quick]" } else { "" },
        );
        println!("{}", stats.json_line());
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// All stats recorded so far, in run order.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }
}

fn time_batch<R>(f: &mut impl FnMut() -> R, iters: u64) -> u64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as u64
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn quick_bench_produces_ordered_stats_and_valid_json() {
        let mut b = Bench::quick();
        let calls = Cell::new(0u64);
        let stats = b
            .bench("smoke/count", || {
                calls.set(calls.get() + 1);
                calls.get()
            })
            .clone();
        assert!(calls.get() >= 2, "closure must run once per sample");
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.p95_ns);

        let json = stats.json_line();
        assert!(json.starts_with("{\"name\":\"smoke/count\""));
        assert!(json.ends_with('}'));
        for key in [
            "\"samples\":",
            "\"iters_per_sample\":",
            "\"min_ns\":",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"mean_ns\":",
            "\"allocs_per_iter\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // One flat object: no nesting, no stray quotes from the name.
        assert_eq!(json.matches('{').count(), 1);
        assert_eq!(json.matches('}').count(), 1);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn json_escaping_handles_quotes_and_backslashes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn batch_calibration_stays_in_bounds() {
        let mut b = Bench::full();
        b.samples = 3;
        b.warmup_ns = 0;
        b.target_batch_ns = 10_000;
        let stats = b.bench("smoke/cheap", || black_box(1u64 + 1)).clone();
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.min_ns >= 0.0);
    }
}
