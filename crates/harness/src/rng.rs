//! Deterministic pseudo-random number generation.
//!
//! [`Rng`] is xoshiro256** (Blackman & Vigna), a small, fast generator
//! with a 256-bit state and excellent statistical quality, seeded from a
//! single `u64` through [`SplitMix64`] as its authors recommend. Both
//! generators are pure integer arithmetic, so identical seeds produce
//! identical streams on every platform and toolchain — the property the
//! workspace's fuzzing and benchmark-input generation depend on.

use std::ops::{Bound, RangeBounds};

/// SplitMix64: a tiny 64-bit generator used to expand a single `u64`
/// seed into the larger xoshiro state (and to derive per-case seeds in
/// the property runner).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's deterministic PRNG: xoshiro256**.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with [`SplitMix64`].
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        Rng { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Reject the low `2^64 mod n` values so every residue is equally
        // likely.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % n;
            }
        }
    }

    /// A uniform `i64` in `range` (inclusive or exclusive bounds both
    /// work: `-5..=5`, `0..10`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range_i64(&mut self, range: impl RangeBounds<i64>) -> i64 {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.checked_add(1).expect("range start overflow"),
            Bound::Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.checked_sub(1).expect("empty range"),
            Bound::Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128) - (lo as i128) + 1;
        if span > u64::MAX as i128 {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span as u64) as i64)
    }

    /// A uniform `usize` in `range` (inclusive or exclusive bounds both
    /// work: `1..4`, `0..=3`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range_usize(&mut self, range: impl RangeBounds<usize>) -> usize {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.checked_sub(1).expect("empty range"),
            Bound::Unbounded => usize::MAX,
        };
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as u128) - (lo as u128) + 1;
        if span > u64::MAX as u128 {
            return self.next_u64() as usize;
        }
        lo + self.below(span as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: golden first outputs for seed 0 and seed
    /// 0xDEADBEEF, pinned so any refactor that changes the stream (and
    /// would silently invalidate persisted regression seeds) fails loudly.
    #[test]
    fn known_answer_streams() {
        let mut sm = SplitMix64::new(0);
        let sm0: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            sm0,
            vec![0xE220_A839_7B1D_CDAF, 0x6E78_9E6A_A1B9_65F4, 0x06C4_5D18_8009_454F],
            "SplitMix64 seed 0"
        );

        let mut r = Rng::from_seed(0);
        let r0: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            r0,
            vec![
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
            ],
            "xoshiro256** seed 0"
        );

        let mut r = Rng::from_seed(0xDEAD_BEEF);
        let r1: Vec<u64> = (0..2).map(|_| r.next_u64()).collect();
        assert_eq!(
            r1,
            vec![0xC555_5444_A74D_7E83, 0x65C3_0D37_B4B1_6E38],
            "xoshiro256** seed 0xDEADBEEF"
        );
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        let sa: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
        let mut c = Rng::from_seed(43);
        let sc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = Rng::from_seed(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v = r.gen_range_i64(-5..=5);
            assert!((-5..=5).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 11, "all 11 values of -5..=5 should appear");

        for _ in 0..500 {
            let v = r.gen_range_usize(1..4);
            assert!((1..4).contains(&v));
        }
        assert_eq!(r.gen_range_i64(3..=3), 3);
        assert_eq!(r.gen_range_usize(0..1), 0);
    }

    #[test]
    fn bool_probabilities_degenerate_cases() {
        let mut r = Rng::from_seed(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| r.gen_bool(0.3)).count();
        assert!((400..800).contains(&heads), "p=0.3 of 2000 gave {heads}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = Rng::from_seed(11);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, (0..20).collect::<Vec<_>>(), "20 elements should move");
    }

    #[test]
    fn choose_is_in_slice() {
        let mut r = Rng::from_seed(3);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
