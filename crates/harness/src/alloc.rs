//! A counting global allocator for allocation-budget measurements.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains
//! process-wide allocation/deallocation/byte counters plus a per-thread
//! allocation counter. Register it in a binary or test crate with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();
//! ```
//!
//! and read the counters through [`snapshot`] / [`thread_allocs`]. In a
//! binary that does *not* register the allocator every counter stays
//! zero, which callers can detect via [`AllocSnapshot::is_counting`].
//!
//! The per-thread counter exists because global counters are useless
//! inside a multi-threaded test runner: concurrent tests allocate into
//! the same statics. A gate that measures the delta of
//! [`thread_allocs`] around a single-threaded region (e.g. a
//! `Config { threads: 1, .. }` analysis) sees only its own traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` wrapper around [`System`] that counts every
/// allocation, deallocation and live byte (with a high-water mark).
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `static` registration).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

#[inline]
fn note_alloc(bytes: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    TL_ALLOCS.with(|c| c.set(c.get() + 1));
    let now = CURRENT_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

#[inline]
fn note_dealloc(bytes: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    CURRENT_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`; the counters are plain
// relaxed atomics / a const-initialized thread-local `Cell`, neither of
// which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A resize counts as one dealloc + one alloc, keeping
            // `allocs - deallocs` equal to the number of live blocks.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations performed (reallocations count once).
    pub allocs: u64,
    /// Deallocations performed (reallocations count once).
    pub deallocs: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Whether a [`CountingAlloc`] is actually registered in this process
    /// (a process that never allocated through it has all-zero counters).
    pub fn is_counting(&self) -> bool {
        self.allocs > 0
    }
}

/// Reads the process-wide counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// The number of allocations performed by the calling thread. Immune to
/// concurrent threads, so deltas around a single-threaded region measure
/// exactly that region.
pub fn thread_allocs() -> u64 {
    TL_ALLOCS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness test binary does not register the allocator (that is
    // each consumer's choice), so exercise the counting paths directly.
    #[test]
    fn counters_track_alloc_dealloc_and_peak() {
        let a = CountingAlloc::new();
        let before = snapshot();
        let tl_before = thread_allocs();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let mid = snapshot();
            assert_eq!(mid.allocs, before.allocs + 1);
            assert!(mid.current_bytes >= before.current_bytes + 4096);
            assert!(mid.peak_bytes >= mid.current_bytes);
            let p2 = a.realloc(p, layout, 8192);
            assert!(!p2.is_null());
            let grown = snapshot();
            assert_eq!(grown.allocs, before.allocs + 2);
            assert_eq!(grown.deallocs, before.deallocs + 1);
            a.dealloc(p2, Layout::from_size_align(8192, 8).unwrap());
        }
        let after = snapshot();
        assert_eq!(after.allocs, before.allocs + 2);
        assert_eq!(after.deallocs, before.deallocs + 2);
        assert_eq!(after.current_bytes, before.current_bytes);
        assert_eq!(thread_allocs(), tl_before + 2);
        assert!(after.is_counting());
    }

    #[test]
    fn zeroed_allocations_are_counted() {
        let a = CountingAlloc::new();
        let before = snapshot();
        let layout = Layout::from_size_align(128, 8).unwrap();
        unsafe {
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert_eq!(std::slice::from_raw_parts(p, 128), &[0u8; 128][..]);
            a.dealloc(p, layout);
        }
        let after = snapshot();
        assert_eq!(after.allocs, before.allocs + 1);
    }
}
