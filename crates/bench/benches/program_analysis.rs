//! Whole-program analysis benchmarks: standard vs extended analysis per
//! kernel (the aggregate behind Figures 6 and 7), plus the baseline
//! (GCD + Banerjee) tests for scale.
//!
//! Runs on the in-repo `harness` bench runner; under `cargo test` (no
//! `--bench` arg) it performs a quick smoke run only.

use depend::{analyze_program, Config};
use harness::bench::Bench;

const KERNELS: &[&str] = &[
    "cholsky",
    "cholesky_dense",
    "lu",
    "wavefront",
    "matmul",
    "jacobi",
    "tridiag",
];

fn bench_programs(b: &mut Bench) {
    for name in KERNELS {
        let entry = tiny::corpus::by_name(name).unwrap();
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        b.bench(&format!("analysis/standard/{name}"), || {
            analyze_program(&info, &Config::standard()).unwrap()
        });
        b.bench(&format!("analysis/extended/{name}"), || {
            analyze_program(&info, &Config::extended()).unwrap()
        });
    }
}

fn bench_frontend(b: &mut Bench) {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    b.bench("frontend/parse_cholsky", || {
        tiny::Program::parse(entry.source).unwrap()
    });
    let program = tiny::Program::parse(entry.source).unwrap();
    b.bench("frontend/analyze_cholsky", || tiny::analyze(&program).unwrap());
}

fn bench_baseline(b: &mut Bench) {
    use depend::baseline::baseline_pair_test;
    use depend::AccessSite;
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    b.bench("baseline/cholsky_all_pairs", || {
        let mut maybes = 0;
        for s in &info.stmts {
            for d in &info.stmts {
                for (idx, _) in d.reads.iter().enumerate() {
                    if baseline_pair_test(s, AccessSite::Write, d, AccessSite::Read(idx))
                        == depend::baseline::Verdict::Maybe
                    {
                        maybes += 1;
                    }
                }
            }
        }
        maybes
    });
}

fn main() {
    // Whole-program analyses are slow; default to fewer samples than the
    // micro-benchmarks (mirrors the old `sample_size(10)`).
    let mut b = Bench::from_env().default_samples(10);
    bench_programs(&mut b);
    bench_frontend(&mut b);
    bench_baseline(&mut b);
}
