//! Whole-program analysis benchmarks: standard vs extended analysis per
//! kernel (the aggregate behind Figures 6 and 7), plus the baseline
//! (GCD + Banerjee) tests for scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depend::{analyze_program, Config};

const KERNELS: &[&str] = &[
    "cholsky",
    "cholesky_dense",
    "lu",
    "wavefront",
    "matmul",
    "jacobi",
    "tridiag",
];

fn bench_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    for name in KERNELS {
        let entry = tiny::corpus::by_name(name).unwrap();
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        group.bench_with_input(BenchmarkId::new("standard", name), &info, |b, info| {
            b.iter(|| analyze_program(info, &Config::standard()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("extended", name), &info, |b, info| {
            b.iter(|| analyze_program(info, &Config::extended()).unwrap())
        });
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    c.bench_function("frontend/parse_cholsky", |b| {
        b.iter(|| tiny::Program::parse(entry.source).unwrap())
    });
    let program = tiny::Program::parse(entry.source).unwrap();
    c.bench_function("frontend/analyze_cholsky", |b| {
        b.iter(|| tiny::analyze(&program).unwrap())
    });
}

fn bench_baseline(c: &mut Criterion) {
    use depend::baseline::baseline_pair_test;
    use depend::AccessSite;
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    c.bench_function("baseline/cholsky_all_pairs", |b| {
        b.iter(|| {
            let mut maybes = 0;
            for s in &info.stmts {
                for d in &info.stmts {
                    for (idx, _) in d.reads.iter().enumerate() {
                        if baseline_pair_test(s, AccessSite::Write, d, AccessSite::Read(idx))
                            == depend::baseline::Verdict::Maybe
                        {
                            maybes += 1;
                        }
                    }
                }
            }
            maybes
        })
    });
}

criterion_group!(benches, bench_programs, bench_frontend, bench_baseline);
criterion_main!(benches);
