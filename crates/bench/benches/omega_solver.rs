//! Micro-benchmarks of the Omega test core: satisfiability, projection,
//! gist computation and implication checking on representative
//! dependence-analysis-shaped problems.
//!
//! Runs on the in-repo `harness` bench runner: human-readable lines on
//! stderr, JSON lines on stdout. Under `cargo test` (no `--bench` arg)
//! it performs a quick smoke run only.

use harness::bench::Bench;
use omega::{gist, implies, LinExpr, Problem, VarKind};

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// A typical dependence problem: two 2-deep iteration vectors with
/// symbolic bounds, subscript equality and a carried-order constraint.
fn dependence_problem() -> (Problem, Vec<omega::VarId>) {
    let mut p = Problem::new();
    let n = p.add_var("n", VarKind::Symbolic);
    let m = p.add_var("m", VarKind::Symbolic);
    let i1 = p.add_var("i1", VarKind::Input);
    let i2 = p.add_var("i2", VarKind::Input);
    let j1 = p.add_var("j1", VarKind::Input);
    let j2 = p.add_var("j2", VarKind::Input);
    for (v, lo) in [(i1, 1), (j1, 1), (i2, 2), (j2, 2)] {
        p.add_geq(LinExpr::var(v).plus_const(-lo));
    }
    for v in [i1, j1] {
        p.add_geq(LinExpr::term(-1, v).plus_term(1, n));
    }
    for v in [i2, j2] {
        p.add_geq(LinExpr::term(-1, v).plus_term(1, m));
    }
    // subscript: i2 = j2 - 1; order: i1 < j1.
    p.add_eq(LinExpr::var(i2).plus_term(-1, j2).plus_const(1));
    p.add_geq(LinExpr::var(j1).plus_term(-1, i1).plus_const(-1));
    (p, vec![j1, j2, n, m])
}

/// A problem that exercises the inexact machinery (dark shadow +
/// splinters).
fn splintering_problem() -> Problem {
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(3, x).plus_term(-2, y).plus_const(1));
    p.add_geq(LinExpr::term(-3, x).plus_term(2, y).plus_const(5));
    p.add_geq(LinExpr::term(5, y).plus_term(-7, z));
    p.add_geq(LinExpr::term(-5, y).plus_term(7, z).plus_const(11));
    p.add_geq(LinExpr::var(z).plus_const(50));
    p.add_geq(LinExpr::term(-1, z).plus_const(50));
    p
}

fn bench_satisfiability(b: &mut Bench) {
    let (dep, _) = dependence_problem();
    b.bench("sat/dependence_problem", || dep.is_satisfiable().unwrap());
    let sp = splintering_problem();
    b.bench("sat/splintering_problem", || sp.is_satisfiable().unwrap());
    // Diophantine: 7x + 12y = 31 with bounds.
    let mut dio = Problem::new();
    let x = dio.add_var("x", VarKind::Input);
    let y = dio.add_var("y", VarKind::Input);
    dio.add_eq(LinExpr::term(7, x).plus_term(12, y).plus_const(-31));
    dio.add_geq(LinExpr::var(x).plus_const(100));
    dio.add_geq(LinExpr::term(-1, x).plus_const(100));
    b.bench("sat/diophantine", || dio.is_satisfiable().unwrap());
}

fn bench_projection(b: &mut Bench) {
    let (dep, keep) = dependence_problem();
    b.bench("project/dependence_onto_dst", || dep.project(&keep).unwrap());
    let sp = splintering_problem();
    let x = sp.find_var("x").unwrap();
    b.bench("project/splintering_onto_x", || sp.project(&[x]).unwrap());
}

fn bench_gist_and_implies(b: &mut Bench) {
    let mut space = Problem::new();
    let x = space.add_var("x", VarKind::Input);
    let y = space.add_var("y", VarKind::Input);
    let n = space.add_var("n", VarKind::Symbolic);
    let mut p = space.clone();
    p.add_geq(LinExpr::var(x).plus_const(-1));
    p.add_geq(LinExpr::var(n).plus_term(-1, x));
    p.add_geq(LinExpr::var(y).plus_term(-1, x));
    p.add_geq(LinExpr::var(n).plus_term(-1, y));
    let mut q = space.clone();
    q.add_geq(LinExpr::var(x).plus_const(-1));
    q.add_geq(LinExpr::var(n).plus_term(-2, x).plus_const(3));
    q.add_geq(LinExpr::var(y));

    b.bench("gist/p_given_q", || gist(&p, &q).unwrap());
    let mut weak = space.clone();
    weak.add_geq(LinExpr::var(x));
    b.bench("implies/p_implies_weaker", || implies(&p, &weak).unwrap());
}

fn bench_sets_and_witnesses(b: &mut Bench) {
    let (dep, keep) = dependence_problem();
    b.bench("sample/dependence_witness", || dep.sample_solution().unwrap());
    let proj = dep.project(&keep).unwrap();
    let set_a = omega::ProblemSet::from(proj);
    let set_b = set_a.clone();
    b.bench("set/subset_self", || {
        let mut budget = omega::Budget::default();
        set_a.is_subset_of(&set_b, &mut budget).unwrap()
    });
}

fn main() {
    let mut b = Bench::from_env();
    bench_satisfiability(&mut b);
    bench_projection(&mut b);
    bench_gist_and_implies(&mut b);
    bench_sets_and_witnesses(&mut b);
}
