//! Micro-benchmarks of the Omega test core: satisfiability, projection,
//! gist computation and implication checking on representative
//! dependence-analysis-shaped problems.

use criterion::{criterion_group, criterion_main, Criterion};
use omega::{gist, implies, LinExpr, Problem, VarKind};

/// A typical dependence problem: two 2-deep iteration vectors with
/// symbolic bounds, subscript equality and a carried-order constraint.
fn dependence_problem() -> (Problem, Vec<omega::VarId>) {
    let mut p = Problem::new();
    let n = p.add_var("n", VarKind::Symbolic);
    let m = p.add_var("m", VarKind::Symbolic);
    let i1 = p.add_var("i1", VarKind::Input);
    let i2 = p.add_var("i2", VarKind::Input);
    let j1 = p.add_var("j1", VarKind::Input);
    let j2 = p.add_var("j2", VarKind::Input);
    for (v, lo) in [(i1, 1), (j1, 1), (i2, 2), (j2, 2)] {
        p.add_geq(LinExpr::var(v).plus_const(-lo));
    }
    for v in [i1, j1] {
        p.add_geq(LinExpr::term(-1, v).plus_term(1, n));
    }
    for v in [i2, j2] {
        p.add_geq(LinExpr::term(-1, v).plus_term(1, m));
    }
    // subscript: i2 = j2 - 1; order: i1 < j1.
    p.add_eq(LinExpr::var(i2).plus_term(-1, j2).plus_const(1));
    p.add_geq(LinExpr::var(j1).plus_term(-1, i1).plus_const(-1));
    (p, vec![j1, j2, n, m])
}

/// A problem that exercises the inexact machinery (dark shadow +
/// splinters).
fn splintering_problem() -> Problem {
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(3, x).plus_term(-2, y).plus_const(1));
    p.add_geq(LinExpr::term(-3, x).plus_term(2, y).plus_const(5));
    p.add_geq(LinExpr::term(5, y).plus_term(-7, z));
    p.add_geq(LinExpr::term(-5, y).plus_term(7, z).plus_const(11));
    p.add_geq(LinExpr::var(z).plus_const(50));
    p.add_geq(LinExpr::term(-1, z).plus_const(50));
    p
}

fn bench_satisfiability(c: &mut Criterion) {
    let (dep, _) = dependence_problem();
    c.bench_function("sat/dependence_problem", |b| {
        b.iter(|| dep.is_satisfiable().unwrap())
    });
    let sp = splintering_problem();
    c.bench_function("sat/splintering_problem", |b| {
        b.iter(|| sp.is_satisfiable().unwrap())
    });
    // Diophantine: 7x + 12y = 31 with bounds.
    let mut dio = Problem::new();
    let x = dio.add_var("x", VarKind::Input);
    let y = dio.add_var("y", VarKind::Input);
    dio.add_eq(LinExpr::term(7, x).plus_term(12, y).plus_const(-31));
    dio.add_geq(LinExpr::var(x).plus_const(100));
    dio.add_geq(LinExpr::term(-1, x).plus_const(100));
    c.bench_function("sat/diophantine", |b| b.iter(|| dio.is_satisfiable().unwrap()));
}

fn bench_projection(c: &mut Criterion) {
    let (dep, keep) = dependence_problem();
    c.bench_function("project/dependence_onto_dst", |b| {
        b.iter(|| dep.project(&keep).unwrap())
    });
    let sp = splintering_problem();
    let x = sp.find_var("x").unwrap();
    c.bench_function("project/splintering_onto_x", |b| {
        b.iter(|| sp.project(&[x]).unwrap())
    });
}

fn bench_gist_and_implies(c: &mut Criterion) {
    let mut space = Problem::new();
    let x = space.add_var("x", VarKind::Input);
    let y = space.add_var("y", VarKind::Input);
    let n = space.add_var("n", VarKind::Symbolic);
    let mut p = space.clone();
    p.add_geq(LinExpr::var(x).plus_const(-1));
    p.add_geq(LinExpr::var(n).plus_term(-1, x));
    p.add_geq(LinExpr::var(y).plus_term(-1, x));
    p.add_geq(LinExpr::var(n).plus_term(-1, y));
    let mut q = space.clone();
    q.add_geq(LinExpr::var(x).plus_const(-1));
    q.add_geq(LinExpr::var(n).plus_term(-2, x).plus_const(3));
    q.add_geq(LinExpr::var(y));

    c.bench_function("gist/p_given_q", |b| b.iter(|| gist(&p, &q).unwrap()));
    c.bench_function("implies/p_implies_weaker", |b| {
        let mut weak = space.clone();
        weak.add_geq(LinExpr::var(x));
        b.iter(|| implies(&p, &weak).unwrap())
    });
}

fn bench_sets_and_witnesses(c: &mut Criterion) {
    let (dep, keep) = dependence_problem();
    c.bench_function("sample/dependence_witness", |b| {
        b.iter(|| dep.sample_solution().unwrap())
    });
    let proj = dep.project(&keep).unwrap();
    let set_a = omega::ProblemSet::from(proj);
    let set_b = set_a.clone();
    c.bench_function("set/subset_self", |b| {
        b.iter(|| {
            let mut budget = omega::Budget::default();
            set_a.is_subset_of(&set_b, &mut budget).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_satisfiability,
    bench_projection,
    bench_gist_and_implies,
    bench_sets_and_witnesses
);
criterion_main!(benches);
