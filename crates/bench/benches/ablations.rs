//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the §4.5 quick tests, the exact-formula fallback for disjunctive
//! implications, and the refinement-widening extension.
//!
//! Runs on the in-repo `harness` bench runner; under `cargo test` (no
//! `--bench` arg) it performs a quick smoke run only.

use depend::{analyze_program, Config};
use harness::bench::Bench;

fn configs() -> Vec<(&'static str, Config)> {
    vec![
        ("full", Config::extended()),
        (
            "no_quick_tests",
            Config {
                quick_tests: false,
                ..Config::extended()
            },
        ),
        (
            "no_formula_fallback",
            Config {
                formula_fallback: false,
                ..Config::extended()
            },
        ),
        (
            "no_widening",
            Config {
                widen_refinement: false,
                ..Config::extended()
            },
        ),
        (
            "kills_only",
            Config {
                refine: false,
                cover: false,
                ..Config::extended()
            },
        ),
    ]
}

fn bench_ablations(b: &mut Bench) {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    for (name, cfg) in configs() {
        b.bench(&format!("ablation/cholsky/{name}"), || {
            analyze_program(&info, &cfg).unwrap()
        });
    }
}

fn bench_solver_ablations(b: &mut Bench) {
    use omega::{Budget, LinExpr, Problem, SolverOptions, VarKind};
    // An inexact, splinter-prone problem family where the dark shadow is
    // the fast path the paper's §3 motivates.
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(5, x).plus_term(-3, y).plus_const(2));
    p.add_geq(LinExpr::term(-5, x).plus_term(3, y).plus_const(4));
    p.add_geq(LinExpr::term(7, y).plus_term(-4, z).plus_const(1));
    p.add_geq(LinExpr::term(-7, y).plus_term(4, z).plus_const(9));
    p.add_geq(LinExpr::var(z).plus_const(-1));
    p.add_geq(LinExpr::term(-1, z).plus_const(500));

    b.bench("ablation/omega/sat_with_dark_shadow", || {
        p.is_satisfiable().unwrap()
    });
    b.bench("ablation/omega/sat_without_dark_shadow", || {
        let mut budget = Budget::new(omega::DEFAULT_BUDGET).with_options(SolverOptions {
            dark_shadow: false,
            ..SolverOptions::default()
        });
        p.is_satisfiable_with(&mut budget).unwrap()
    });
}

fn main() {
    // Whole-program ablations are slow; mirror the old `sample_size(10)`.
    let mut b = Bench::from_env().default_samples(10);
    bench_ablations(&mut b);
    bench_solver_ablations(&mut b);
}
