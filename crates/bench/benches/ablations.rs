//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the §4.5 quick tests, the exact-formula fallback for disjunctive
//! implications, and the refinement-widening extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depend::{analyze_program, Config};

fn configs() -> Vec<(&'static str, Config)> {
    vec![
        ("full", Config::extended()),
        (
            "no_quick_tests",
            Config {
                quick_tests: false,
                ..Config::extended()
            },
        ),
        (
            "no_formula_fallback",
            Config {
                formula_fallback: false,
                ..Config::extended()
            },
        ),
        (
            "no_widening",
            Config {
                widen_refinement: false,
                ..Config::extended()
            },
        ),
        (
            "kills_only",
            Config {
                refine: false,
                cover: false,
                ..Config::extended()
            },
        ),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let mut group = c.benchmark_group("ablation/cholsky");
    group.sample_size(10);
    for (name, cfg) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| analyze_program(&info, cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_solver_ablations(c: &mut Criterion) {
    use omega::{Budget, LinExpr, Problem, SolverOptions, VarKind};
    // An inexact, splinter-prone problem family where the dark shadow is
    // the fast path the paper's §3 motivates.
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(5, x).plus_term(-3, y).plus_const(2));
    p.add_geq(LinExpr::term(-5, x).plus_term(3, y).plus_const(4));
    p.add_geq(LinExpr::term(7, y).plus_term(-4, z).plus_const(1));
    p.add_geq(LinExpr::term(-7, y).plus_term(4, z).plus_const(9));
    p.add_geq(LinExpr::var(z).plus_const(-1));
    p.add_geq(LinExpr::term(-1, z).plus_const(500));

    let mut group = c.benchmark_group("ablation/omega");
    group.bench_function("sat_with_dark_shadow", |b| {
        b.iter(|| p.is_satisfiable().unwrap())
    });
    group.bench_function("sat_without_dark_shadow", |b| {
        b.iter(|| {
            let mut budget = Budget::new(omega::DEFAULT_BUDGET).with_options(SolverOptions {
                dark_shadow: false,
                ..SolverOptions::default()
            });
            p.is_satisfiable_with(&mut budget).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations, bench_solver_ablations);
criterion_main!(benches);
