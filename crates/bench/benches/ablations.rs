//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the §4.5 quick tests, the exact-formula fallback for disjunctive
//! implications, and the refinement-widening extension.
//!
//! Runs on the in-repo `harness` bench runner; under `cargo test` (no
//! `--bench` arg) it performs a quick smoke run only.

use depend::{analyze_program, Config};
use harness::bench::Bench;

fn configs() -> Vec<(&'static str, Config)> {
    vec![
        ("full", Config::extended()),
        (
            "no_quick_tests",
            Config {
                quick_tests: false,
                ..Config::extended()
            },
        ),
        (
            "no_formula_fallback",
            Config {
                formula_fallback: false,
                ..Config::extended()
            },
        ),
        (
            "no_widening",
            Config {
                widen_refinement: false,
                ..Config::extended()
            },
        ),
        (
            "kills_only",
            Config {
                refine: false,
                cover: false,
                ..Config::extended()
            },
        ),
    ]
}

fn bench_ablations(b: &mut Bench) {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    for (name, cfg) in configs() {
        b.bench(&format!("ablation/cholsky/{name}"), || {
            analyze_program(&info, &cfg).unwrap()
        });
    }
}

fn bench_solver_ablations(b: &mut Bench) {
    use omega::{Budget, LinExpr, Problem, SolverOptions, VarKind};
    // An inexact, splinter-prone problem family where the dark shadow is
    // the fast path the paper's §3 motivates.
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(5, x).plus_term(-3, y).plus_const(2));
    p.add_geq(LinExpr::term(-5, x).plus_term(3, y).plus_const(4));
    p.add_geq(LinExpr::term(7, y).plus_term(-4, z).plus_const(1));
    p.add_geq(LinExpr::term(-7, y).plus_term(4, z).plus_const(9));
    p.add_geq(LinExpr::var(z).plus_const(-1));
    p.add_geq(LinExpr::term(-1, z).plus_const(500));

    b.bench("ablation/omega/sat_with_dark_shadow", || {
        p.is_satisfiable().unwrap()
    });
    b.bench("ablation/omega/sat_without_dark_shadow", || {
        let mut budget = Budget::new(omega::DEFAULT_BUDGET).with_options(SolverOptions {
            dark_shadow: false,
            ..SolverOptions::default()
        });
        p.is_satisfiable_with(&mut budget).unwrap()
    });
}

fn bench_tableau_vs_rows(b: &mut Bench) {
    use omega::{Budget, LinExpr, Problem, SolverOptions, VarKind};

    // Solver-level comparison: the same satisfiability and projection
    // queries on the dense scratch tableau vs the interned-row pipeline.
    // The verdicts, budget spends, and outputs are identical; only the
    // constant factor differs.
    let mut p = Problem::new();
    let i = p.add_var("i", VarKind::Input);
    let j = p.add_var("j", VarKind::Input);
    let k = p.add_var("k", VarKind::Input);
    let n = p.add_var("n", VarKind::Symbolic);
    // A triangular loop nest with an equality coupling, the shape
    // dependence analysis produces constantly.
    p.add_geq(LinExpr::var(i).plus_const(-1));
    p.add_geq(LinExpr::var(n).plus_term(-1, i));
    p.add_geq(LinExpr::var(j).plus_term(-1, i));
    p.add_geq(LinExpr::var(n).plus_term(-1, j));
    p.add_geq(LinExpr::var(k).plus_term(-1, j));
    p.add_geq(LinExpr::var(n).plus_term(-1, k));
    p.add_eq(LinExpr::term(2, i).plus_term(-1, k).plus_const(3));
    let rows_options = SolverOptions {
        dense_kernel: false,
        ..SolverOptions::default()
    };
    b.bench("ablation/tableau_vs_rows/sat_dense", || {
        p.is_satisfiable_with(&mut Budget::default()).unwrap()
    });
    b.bench("ablation/tableau_vs_rows/sat_rows", || {
        let mut budget = Budget::default().with_options(rows_options);
        p.is_satisfiable_with(&mut budget).unwrap()
    });
    b.bench("ablation/tableau_vs_rows/project_dense", || {
        p.project_with(&[i, n], &mut Budget::default()).unwrap()
    });
    b.bench("ablation/tableau_vs_rows/project_rows", || {
        let mut budget = Budget::default().with_options(rows_options);
        p.project_with(&[i, n], &mut budget).unwrap()
    });

    // Whole-program comparison on the headline workload.
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let dense_cfg = Config::extended();
    let rows_cfg = Config {
        dense_kernel: false,
        ..Config::extended()
    };
    b.bench("ablation/tableau_vs_rows/cholsky_dense", || {
        analyze_program(&info, &dense_cfg).unwrap()
    });
    b.bench("ablation/tableau_vs_rows/cholsky_rows", || {
        analyze_program(&info, &rows_cfg).unwrap()
    });
}

fn bench_checkpoint_vs_scratch(b: &mut Bench) {
    use std::sync::Arc;

    use omega::{
        Budget, LinExpr, PairContext, ProblemLike, Problem, SolverCache, SolverOptions, VarKind,
    };

    // A "delta storm": the cold-path shape the checkpoint exists for.
    // One delta-eligible base — a coupled triangular nest whose two
    // equalities the solver must eliminate — hit with a stream of
    // distinct delta batches (distance-probe-shaped bounds), every one a
    // memo miss against a fresh cache. From scratch, each miss
    // re-normalizes and re-eliminates the base; with checkpointing the
    // base is eliminated once (recorded on the second miss) and every
    // later miss resumes.
    // Two coupled iteration vectors (the dependence-pair shape: source
    // i..l, destination i'..l') with subscript-equality couplings whose
    // non-unit coefficients force mod-hat elimination passes — the work
    // a resume skips.
    let mut base = Problem::new();
    let i = base.add_var("i", VarKind::Input);
    let j = base.add_var("j", VarKind::Input);
    let k = base.add_var("k", VarKind::Input);
    let l = base.add_var("l", VarKind::Input);
    let i2 = base.add_var("i'", VarKind::Input);
    let j2 = base.add_var("j'", VarKind::Input);
    let k2 = base.add_var("k'", VarKind::Input);
    let l2 = base.add_var("l'", VarKind::Input);
    let n = base.add_var("n", VarKind::Symbolic);
    for &(v, lo) in &[(i, 1), (j, 1), (k, 1), (l, 0), (i2, 1), (j2, 1), (k2, 1), (l2, 0)] {
        base.add_geq(LinExpr::var(v).plus_const(-lo));
        base.add_geq(LinExpr::var(n).plus_term(-1, v));
    }
    base.add_geq(LinExpr::var(j).plus_term(-1, i));
    base.add_geq(LinExpr::var(j2).plus_term(-1, i2));
    base.add_eq(LinExpr::term(2, i).plus_term(-3, i2).plus_term(1, l).plus_const(3));
    base.add_eq(LinExpr::term(2, j).plus_term(-2, j2).plus_term(-1, l2));
    base.add_eq(LinExpr::term(3, k).plus_term(-2, k2).plus_const(-1));
    base.add_eq(
        LinExpr::var(l)
            .plus_term(-1, l2)
            .plus_term(1, i)
            .plus_term(-1, j2),
    );

    let storm = |checkpoint: bool| {
        let cache = Arc::new(SolverCache::new());
        let options = SolverOptions {
            base_checkpoint: checkpoint,
            ..SolverOptions::default()
        };
        let budget = || {
            Budget::new(omega::DEFAULT_BUDGET)
                .with_cache(cache.clone())
                .with_options(options)
        };
        let ctx = PairContext::new(base.clone(), &budget());
        let mut verdicts = 0usize;
        for d in 0..64i64 {
            let mut dp = ctx.derive();
            // Distinct per-delta bounds — every query misses the memo —
            // in directions the base does not constrain, so the resumed
            // rows merge with no base row (the shape of distance probes
            // over a direction the base leaves free).
            dp.add_geq(LinExpr::var(i).plus_term(1, j).plus_term(-1, k2).plus_const(-d));
            dp.add_geq(LinExpr::var(l2).plus_term(-1, k).plus_const(d % 5 + 2));
            if dp.is_satisfiable_with(&mut budget()).unwrap() {
                verdicts += 1;
            }
        }
        verdicts
    };
    b.bench("ablation/checkpoint_vs_scratch/delta_storm_resume", || {
        storm(true)
    });
    b.bench("ablation/checkpoint_vs_scratch/delta_storm_scratch", || {
        storm(false)
    });

    // Whole-program cold path: `analyze_program` builds a fresh solver
    // cache per call, so each iteration is a full cold extended CHOLSKY
    // analysis with and without base checkpointing.
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let on = Config {
        threads: 1,
        ..Config::extended()
    };
    let off = Config {
        threads: 1,
        base_checkpoint: false,
        ..Config::extended()
    };
    b.bench("ablation/checkpoint_vs_scratch/cholsky_cold_on", || {
        analyze_program(&info, &on).unwrap()
    });
    b.bench("ablation/checkpoint_vs_scratch/cholsky_cold_off", || {
        analyze_program(&info, &off).unwrap()
    });
}

fn main() {
    // Whole-program ablations are slow; mirror the old `sample_size(10)`.
    let mut b = Bench::from_env().default_samples(10);
    bench_ablations(&mut b);
    bench_solver_ablations(&mut b);
    bench_tableau_vs_rows(&mut b);
    bench_checkpoint_vs_scratch(&mut b);
}
