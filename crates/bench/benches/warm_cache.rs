//! Cold-vs-warm persistent-cache benchmark (the tentpole's budget
//! contract): an extended CHOLSKY analysis with `Config::cache_file`
//! set, measured from an empty cache file (cold — every solve runs and
//! is inserted) and from a fully primed one (warm — every memoized
//! query is served from the loaded cache).
//!
//! Beyond the two timing lines, the bench emits a summary JSON line
//!
//! ```text
//! {"name":"analysis/warm_cache/summary", "warm_hit_rate":H,
//!  "warm_over_cold":R, ...}
//! ```
//!
//! and **asserts** the contract the docs promise: the warm run answers
//! every cache lookup from the persisted file (hit rate 1.0, zero
//! inserts) and its report is byte-identical to the cold run's.
//! `warm_over_cold` (median warm time / median cold time) is
//! hardware-dependent and tracked in the BENCH_*.json trajectory rather
//! than asserted here; the smoke binary gates on the counters instead,
//! which are deterministic.

use depend::{analyze_program, Config, ReportOptions};
use harness::bench::Bench;

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

fn cholsky() -> tiny::ProgramInfo {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    tiny::analyze(&program).unwrap()
}

fn render(info: &tiny::ProgramInfo, analysis: &depend::Analysis) -> String {
    let ropts = ReportOptions::default();
    let graph = depend::DepGraph::new(info, analysis);
    format!(
        "{}\n{}\n{}",
        depend::live_flow_table(&graph, &ropts),
        depend::dead_flow_table(&graph, &ropts),
        depend::report::to_json(&graph)
    )
}

fn main() {
    let mut b = Bench::from_env().default_samples(10);
    let info = cholsky();
    let path = std::env::temp_dir().join(format!(
        "omega_warm_cache_bench_{}.cache",
        std::process::id()
    ));
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };

    // Cold: remove the cache file before every iteration so each run
    // starts from an empty cache and pays for every solve. The save at
    // the end of the iteration is part of the measured cost — that is
    // the price a first (cold) `tinydep --cache-file` run pays.
    let cold_ns = b
        .bench("analysis/warm_cache/cholsky_cold", || {
            let _ = std::fs::remove_file(&path);
            analyze_program(&info, &config).unwrap()
        })
        .median_ns;

    // Prime the file once, then measure warm runs that load it each
    // iteration and answer every memoized query from it.
    let _ = std::fs::remove_file(&path);
    let cold_run = analyze_program(&info, &config).unwrap();
    let warm_ns = b
        .bench("analysis/warm_cache/cholsky_warm", || {
            analyze_program(&info, &config).unwrap()
        })
        .median_ns;

    // The contract: a warm run misses nothing, inserts nothing, and
    // reports exactly what the cold run reported.
    let warm_run = analyze_program(&info, &config).unwrap();
    let c = &warm_run.stats.cache;
    assert_eq!(
        c.hits,
        c.lookups(),
        "warm run missed the persistent cache ({} hits / {} lookups)",
        c.hits,
        c.lookups()
    );
    assert_eq!(c.inserts, 0, "warm run inserted into a primed cache");
    assert_eq!(
        render(&info, &cold_run),
        render(&info, &warm_run),
        "warm report diverged from the cold report"
    );
    let _ = std::fs::remove_file(&path);

    println!(
        "{{\"name\":\"analysis/warm_cache/summary\",\"warm_hit_rate\":{:.3},\
         \"warm_hits\":{},\"warm_lookups\":{},\"cold_median_ns\":{:.1},\
         \"warm_median_ns\":{:.1},\"warm_over_cold\":{:.3}}}",
        c.hit_rate(),
        c.hits,
        c.lookups(),
        cold_ns,
        warm_ns,
        warm_ns / cold_ns.max(1.0)
    );
}
