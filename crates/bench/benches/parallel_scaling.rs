//! Parallel-analysis scaling: end-to-end `analyze_program` wall-clock at
//! several `Config::threads` settings, plus cache/pre-filter ablations.
//!
//! Beyond the per-case timing lines, this bench emits two extra JSON
//! lines summarizing the run:
//!
//! * `{"name":"analysis/parallel/speedup", "threads":N, "speedup":S}` —
//!   median sequential time over median time at N threads (S is
//!   hardware-dependent; ≈1.0 on a single-core host, and `threads=1`
//!   must never be slower than the plain sequential loop beyond noise);
//! * `{"name":"analysis/counters", ...}` — memo-cache and §4.5
//!   pre-filter counters for one extended CHOLSKY analysis, so the
//!   BENCH_*.json trajectory tracks cache effectiveness over time.
//!
//! A second section times `analyze_corpus` — the whole built-in corpus
//! as one batch on the two-level pool — at 1..16 threads, emitting
//! `{"name":"analysis/corpus/speedup","threads":N,"speedup":S}` lines.
//! This is the end-to-end corpus wall time the scheduling work is
//! gated on: programs and their pair batches share one pool, so the
//! speedup reflects both levels together.

use depend::{analyze_corpus, analyze_program, Config};
use harness::bench::Bench;

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

const THREAD_COUNTS: &[usize] = &[1, 2, 4];
const CORPUS_THREAD_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

fn cholsky() -> tiny::ProgramInfo {
    let entry = tiny::corpus::by_name("cholsky").unwrap();
    let program = tiny::Program::parse(entry.source).unwrap();
    tiny::analyze(&program).unwrap()
}

fn main() {
    let mut b = Bench::from_env().default_samples(10);
    let info = cholsky();

    let mut medians = Vec::new();
    for &threads in THREAD_COUNTS {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let stats = b.bench(&format!("analysis/parallel/cholsky_t{threads}"), || {
            analyze_program(&info, &config).unwrap()
        });
        medians.push((threads, stats.median_ns));
    }

    // Ablations: the cache and the pre-filter, each off in isolation.
    b.bench("analysis/parallel/cholsky_t1_nocache", || {
        let config = Config {
            memo_cache: false,
            ..Config::extended()
        };
        analyze_program(&info, &config).unwrap()
    });
    b.bench("analysis/parallel/cholsky_t1_noprefilter", || {
        let config = Config {
            quick_tests: false,
            ..Config::extended()
        };
        analyze_program(&info, &config).unwrap()
    });

    let base = medians[0].1;
    for &(threads, median) in &medians[1..] {
        println!(
            "{{\"name\":\"analysis/parallel/speedup\",\"threads\":{},\"speedup\":{:.3}}}",
            threads,
            base / median.max(1.0)
        );
    }

    // End-to-end corpus wall time on the two-level pool: every built-in
    // program as one batch, programs and pair stages sharing `threads`
    // workers.
    let infos: Vec<tiny::ProgramInfo> = tiny::corpus::all()
        .iter()
        .map(|e| {
            let program = tiny::Program::parse(e.source).unwrap();
            tiny::analyze(&program).unwrap()
        })
        .collect();
    let mut corpus_medians = Vec::new();
    for &threads in CORPUS_THREAD_COUNTS {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let stats = b.bench(&format!("analysis/corpus/all_t{threads}"), || {
            analyze_corpus(&infos, &config).unwrap()
        });
        corpus_medians.push((threads, stats.median_ns));
    }
    let corpus_base = corpus_medians[0].1;
    for &(threads, median) in &corpus_medians[1..] {
        println!(
            "{{\"name\":\"analysis/corpus/speedup\",\"threads\":{},\"speedup\":{:.3}}}",
            threads,
            corpus_base / median.max(1.0)
        );
    }

    let analysis = analyze_program(&info, &Config::extended()).unwrap();
    let c = &analysis.stats.cache;
    let p = &analysis.stats.prefilter;
    println!(
        "{{\"name\":\"analysis/counters\",\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_inserts\":{},\"cache_hit_rate\":{:.3},\"canon_full\":{},\
         \"canon_delta\":{},\"prefilter_gcd\":{},\"prefilter_range\":{},\
         \"prefilter_symbolic\":{},\"prefilter_passed\":{}}}",
        c.hits,
        c.misses,
        c.inserts,
        c.hit_rate(),
        c.full_canons,
        c.delta_canons,
        p.gcd,
        p.range,
        p.symbolic_range,
        p.passed
    );
}
