//! Regenerates Figure 7: per-pair standard and extended analysis times,
//! sorted by extended time. The paper's shape to check: the two curves
//! track each other with a roughly constant factor, with a tail of
//! expensive pairs where the extended analysis does real work.

use bench::{counters_line, fig6_summary, run_corpus};
use depend::Config;

fn main() {
    let runs = run_corpus(&Config::extended());
    let s = fig6_summary(&runs);
    println!("{}", counters_line(&runs));
    println!();

    let mut rows: Vec<(u64, u64)> = s.pairs.iter().map(|&(a, b, _)| (a, b)).collect();
    rows.sort_by_key(|&(_, ext)| ext);

    println!("=== Figure 7: analysis time per array pair, sorted by extended time ===");
    println!("{:>6} {:>12} {:>12} {:>8}", "pair", "standard us", "extended us", "ratio");
    for (i, (std_ns, ext_ns)) in rows.iter().enumerate() {
        // Print every pair; downstream plotting can subsample.
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8.2}",
            i,
            *std_ns as f64 / 1000.0,
            *ext_ns as f64 / 1000.0,
            *ext_ns as f64 / (*std_ns).max(1) as f64
        );
    }

    // An ASCII rendition of the two curves (log-scale bars).
    println!();
    let n = rows.len();
    let buckets = 60.min(n);
    println!("extended (#) vs standard (+), {buckets} buckets across {n} pairs, log scale:");
    for b in 0..buckets {
        let i = b * n / buckets;
        let (std_ns, ext_ns) = rows[i];
        let bar = |v: u64| ((v.max(1) as f64).log10() * 6.0) as usize;
        let (sb, eb) = (bar(std_ns), bar(ext_ns));
        let mut line = vec![' '; sb.max(eb) + 1];
        for c in line.iter_mut().take(eb + 1) {
            *c = '#';
        }
        if sb < line.len() {
            line[sb] = '+';
        }
        println!("{:>5} |{}", i, line.into_iter().collect::<String>());
    }
}
