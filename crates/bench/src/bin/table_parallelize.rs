//! Corpus-wide parallelization-decision table and regression gate: for
//! every corpus program, how many loops are parallelizable with the
//! extended analysis, how many already were without the kill/cover
//! dead-marking, and how many are **newly** parallelizable — unlocked
//! only by eliminating false dependences, the paper's headline payoff.
//!
//! The per-program `newly` counts are pinned below (like the
//! `table_banerjee` elimination counts): a regression that stops killing
//! a false dependence, or an analysis change that silently unlocks more,
//! fails the gate instead of drifting by. Exits nonzero on any mismatch
//! or when the corpus-wide `newly` total is zero.

use std::process::ExitCode;

use depend::{analyze_program, decide_loops, Config, DepGraph, ParallelizeSummary};

/// Corpus programs with a nonzero `newly` count, pinned. Every program
/// absent from this list is pinned to zero.
const PINNED_NEWLY: &[(&str, usize)] = &[
    ("example2", 1),
    ("pivot_reset", 1),
    ("stepped_reset", 1),
];

fn main() -> ExitCode {
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>14} {:>6}",
        "PROGRAM", "LOOPS", "PARALLEL", "OUTRIGHT", "WITHOUT-KILLS", "NEWLY"
    );
    let mut total = ParallelizeSummary::default();
    let mut failures = 0usize;
    for entry in tiny::corpus::all() {
        let program = tiny::Program::parse(entry.source).expect("corpus parses");
        let info = tiny::analyze(&program).expect("corpus analyzes");
        let analysis = analyze_program(&info, &Config::extended()).expect("analysis");
        let graph = DepGraph::new(&info, &analysis);
        let s = ParallelizeSummary::of(&decide_loops(&graph));
        total.add(&s);
        let pinned = PINNED_NEWLY
            .iter()
            .find(|(name, _)| *name == entry.name)
            .map_or(0, |(_, n)| *n);
        let note = if s.newly == pinned {
            ""
        } else {
            failures += 1;
            " <- MISMATCH"
        };
        println!(
            "{:<22} {:>5} {:>9} {:>9} {:>14} {:>6}{}",
            entry.name, s.loops, s.parallel, s.outright, s.pre_parallel, s.newly, note
        );
        if s.newly != pinned {
            eprintln!(
                "table_parallelize: FAIL: {} has {} newly-parallelizable loop(s), pinned {}",
                entry.name, s.newly, pinned
            );
        }
    }
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>14} {:>6}",
        "TOTAL", total.loops, total.parallel, total.outright, total.pre_parallel, total.newly
    );
    let pinned_total: usize = PINNED_NEWLY.iter().map(|(_, n)| n).sum();
    println!(
        "\n{} loop(s) parallelizable only once kill analysis eliminates false dependences.",
        total.newly
    );
    if total.newly == 0 {
        eprintln!("table_parallelize: FAIL: kill analysis unlocked nothing corpus-wide");
        return ExitCode::FAILURE;
    }
    if total.newly != pinned_total || failures > 0 {
        eprintln!(
            "table_parallelize: FAIL: {failures} program(s) off their pin \
             (total {} vs pinned {pinned_total})",
            total.newly
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
