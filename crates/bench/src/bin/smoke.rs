//! CI smoke check for the performance machinery: runs the extended
//! analysis over the corpus once and fails (exit 1) when the memo cache
//! or the §4.5 pre-filter is silently dead — nonzero hits on CHOLSKY,
//! nonzero skips corpus-wide (the strided sweeps), byte-identical
//! reports at several thread counts, per-pair contexts actually
//! deriving delta queries (canonicalizations stay below one-per-query),
//! a persisted cache file turning a CHOLSKY re-analysis fully warm
//! without changing a byte of the report, and the two-level corpus
//! driver reproducing the standalone reports byte-for-byte with its
//! multi-threaded wall time inside an overhead ceiling of sequential.

use std::process::ExitCode;

use bench::{counters_line, run_corpus};
use depend::{analyze_corpus, analyze_program, Config, ReportOptions};

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

/// Allocation count of the pre-interning solver core for one warm
/// (memo-cache primed) single-threaded extended CHOLSKY analysis. The
/// interned representation must at least halve it.
const CHOLSKY_SEED_ALLOCS: u64 = 638_413; // measured on the pre-interning core (PR 4)

/// Absolute ceilings for the same warm run on the dense tableau kernel
/// (measured 102,742 allocations / ~27.7 ms, release). The wall gate
/// takes the minimum of three runs to damp scheduler noise.
const CHOLSKY_WARM_ALLOC_CEILING: u64 = 120_000;
const CHOLSKY_WARM_MS_CEILING: u128 = 30;

/// Absolute ceilings for a *cold* run of the same configuration (fresh
/// solver cache, every delta query a memo miss). Measured 100,950
/// allocations / ~30 ms after the base-checkpoint PR; the
/// pre-checkpoint seed measured 102,744 allocations, so the allocation
/// gate fails if the miss path regresses past the seed.
const CHOLSKY_COLD_ALLOC_CEILING: u64 = 102_000;
const CHOLSKY_COLD_MS_CEILING: u128 = 45;

fn main() -> ExitCode {
    let runs = run_corpus(&Config::extended());
    println!("{}", counters_line(&runs));
    let mut ok = true;

    let cholsky = runs
        .iter()
        .find(|r| r.name == "cholsky")
        .expect("cholsky is in the corpus");
    let hits = cholsky.analysis.stats.cache.hits;
    if hits == 0 {
        eprintln!("smoke: FAIL: memo cache scored no hits on CHOLSKY");
        ok = false;
    } else {
        println!("smoke: cache ok ({hits} hits on CHOLSKY)");
    }

    let skipped: u64 = runs
        .iter()
        .map(|r| r.analysis.stats.prefilter.skipped())
        .sum();
    if skipped == 0 {
        eprintln!("smoke: FAIL: the pre-filter skipped no pair in the whole corpus");
        ok = false;
    } else {
        println!("smoke: prefilter ok ({skipped} pairs skipped corpus-wide)");
    }

    // Per-pair context gate: the pair analyses must derive their refine
    // / cover / kill queries as deltas from one canonicalized base, so
    // CHOLSKY shows (a) delta-keyed queries happening at all and
    // (b) strictly fewer full canonicalizations than cache lookups —
    // without PairContext every memoized query canonicalizes a full
    // problem, making full_canons >= lookups.
    let c = &cholsky.analysis.stats.cache;
    if c.delta_canons == 0 {
        eprintln!("smoke: FAIL: no delta-keyed query on CHOLSKY (per-pair contexts dead)");
        ok = false;
    } else if c.full_canons >= c.lookups() {
        eprintln!(
            "smoke: FAIL: CHOLSKY canonicalized {} full problems for {} lookups \
             (per-pair contexts not eliminating repeat canonicalizations)",
            c.full_canons,
            c.lookups()
        );
        ok = false;
    } else {
        println!(
            "smoke: per-pair contexts ok ({} full / {} delta canons for {} lookups on CHOLSKY)",
            c.full_canons,
            c.delta_canons,
            c.lookups()
        );
    }

    let ropts = ReportOptions::default();
    let render = |analysis: &depend::Analysis| {
        let graph = depend::DepGraph::new(&cholsky.info, analysis);
        (
            depend::live_flow_table(&graph, &ropts),
            depend::dead_flow_table(&graph, &ropts),
            depend::report::to_json(&graph),
        )
    };
    let run = |config: &Config| render(&analyze_program(&cholsky.info, config).unwrap());
    let sequential = run(&Config::extended());
    for threads in [2, 8] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        if run(&config) != sequential {
            eprintln!("smoke: FAIL: CHOLSKY report diverged at threads={threads}");
            ok = false;
        }
    }
    if ok {
        println!("smoke: determinism ok (threads 1/2/8 identical on CHOLSKY)");
    }

    // Persistent-cache gate: a second analysis pointed at the same cache
    // file must run fully warm (every lookup a hit, nothing inserted),
    // beat the cold run's miss count, and report byte-for-byte what the
    // cold run and a --no-cache run report.
    let path = std::env::temp_dir().join(format!("omega_smoke_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = Config {
        cache_file: Some(path.clone()),
        ..Config::extended()
    };
    let cold = analyze_program(&cholsky.info, &config).unwrap();
    let warm = analyze_program(&cholsky.info, &config).unwrap();
    let _ = std::fs::remove_file(&path);
    let (cc, wc) = (&cold.stats.cache, &warm.stats.cache);
    if wc.hits != wc.lookups() || wc.inserts != 0 || wc.misses >= cc.misses {
        eprintln!(
            "smoke: FAIL: warm CHOLSKY run not served from the cache file \
             (cold {}/{} hits, warm {}/{} hits, {} warm inserts)",
            cc.hits,
            cc.lookups(),
            wc.hits,
            wc.lookups(),
            wc.inserts
        );
        ok = false;
    } else {
        println!(
            "smoke: persistent cache ok (cold {}/{} -> warm {}/{} hits)",
            cc.hits,
            cc.lookups(),
            wc.hits,
            wc.lookups()
        );
    }
    let no_cache = Config {
        memo_cache: false,
        ..Config::extended()
    };
    if render(&cold) != sequential
        || render(&warm) != sequential
        || run(&no_cache) != sequential
    {
        eprintln!("smoke: FAIL: CHOLSKY report differs across cache settings");
        ok = false;
    } else {
        println!("smoke: cache transparency ok (cold/warm/no-cache reports identical)");
    }

    // Base-checkpoint gates: the resume machinery must (a) actually fire
    // on a cold CHOLSKY run — both counters nonzero, or the feature is
    // silently dead — and (b) be invisible in the report when disabled.
    let ckpt = &cholsky.analysis.stats.cache;
    if ckpt.checkpoint_resumes == 0 || ckpt.checkpoint_rebuilds == 0 {
        eprintln!(
            "smoke: FAIL: base checkpointing dead on cold CHOLSKY \
             ({} resumes, {} rebuilds)",
            ckpt.checkpoint_resumes, ckpt.checkpoint_rebuilds
        );
        ok = false;
    } else {
        println!(
            "smoke: checkpoints ok ({} resumes, {} rebuilds on cold CHOLSKY)",
            ckpt.checkpoint_resumes, ckpt.checkpoint_rebuilds
        );
    }
    let no_ckpt = Config {
        base_checkpoint: false,
        ..Config::extended()
    };
    if run(&no_ckpt) != sequential {
        eprintln!("smoke: FAIL: CHOLSKY report changes with base checkpointing off");
        ok = false;
    } else {
        println!("smoke: checkpoint transparency ok (report identical with checkpointing off)");
    }

    // Allocation gate: a warm single-threaded extended CHOLSKY analysis
    // must allocate at most half of what the pre-interning core did.
    // The per-thread counter only sees this thread's traffic, so the
    // measurement is exact even under concurrent load.
    let single = Config {
        threads: 1,
        ..Config::extended()
    };
    let _ = analyze_program(&cholsky.info, &single).unwrap();
    let allocs_before = harness::alloc::thread_allocs();
    let _ = analyze_program(&cholsky.info, &single).unwrap();
    let warm_allocs = harness::alloc::thread_allocs() - allocs_before;
    println!("smoke: warm CHOLSKY analysis performed {warm_allocs} allocations");
    if CHOLSKY_SEED_ALLOCS > 0 && warm_allocs * 2 > CHOLSKY_SEED_ALLOCS {
        eprintln!(
            "smoke: FAIL: warm CHOLSKY allocated {warm_allocs} times \
             (pre-interning core: {CHOLSKY_SEED_ALLOCS}; budget is half that)"
        );
        ok = false;
    } else if CHOLSKY_SEED_ALLOCS > 0 {
        println!(
            "smoke: allocation ok ({warm_allocs} <= {} = seed {CHOLSKY_SEED_ALLOCS} / 2)",
            CHOLSKY_SEED_ALLOCS / 2
        );
    }
    if warm_allocs > CHOLSKY_WARM_ALLOC_CEILING {
        eprintln!(
            "smoke: FAIL: warm CHOLSKY allocated {warm_allocs} times \
             (absolute ceiling {CHOLSKY_WARM_ALLOC_CEILING}): the dense \
             tableau kernel stopped reusing its buffers"
        );
        ok = false;
    } else {
        println!(
            "smoke: dense-kernel allocation ok ({warm_allocs} <= {CHOLSKY_WARM_ALLOC_CEILING})"
        );
    }

    // Warm wall-clock gate for the same configuration: minimum of three
    // runs, since a wall gate measures the machine as much as the code.
    let warm_ms = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            let _ = analyze_program(&cholsky.info, &single).unwrap();
            t.elapsed().as_millis()
        })
        .min()
        .unwrap();
    if warm_ms > CHOLSKY_WARM_MS_CEILING {
        eprintln!(
            "smoke: FAIL: warm CHOLSKY analysis took {warm_ms} ms \
             (ceiling {CHOLSKY_WARM_MS_CEILING} ms): the dense-kernel \
             speedup regressed"
        );
        ok = false;
    } else {
        println!("smoke: dense-kernel wall time ok ({warm_ms} ms <= {CHOLSKY_WARM_MS_CEILING} ms)");
    }

    // Cold-path gates for the same single-threaded configuration: a
    // fresh Config per run keeps every delta query a memo miss, so this
    // bounds the miss path the base checkpoint optimizes. Allocation
    // counts are deterministic; the wall gate takes the minimum of
    // three runs.
    let cold_single = || Config {
        threads: 1,
        ..Config::extended()
    };
    let allocs_before = harness::alloc::thread_allocs();
    let _ = analyze_program(&cholsky.info, &cold_single()).unwrap();
    let cold_allocs = harness::alloc::thread_allocs() - allocs_before;
    if cold_allocs > CHOLSKY_COLD_ALLOC_CEILING {
        eprintln!(
            "smoke: FAIL: cold CHOLSKY allocated {cold_allocs} times \
             (ceiling {CHOLSKY_COLD_ALLOC_CEILING}; pre-checkpoint seed 102,744)"
        );
        ok = false;
    } else {
        println!("smoke: cold allocation ok ({cold_allocs} <= {CHOLSKY_COLD_ALLOC_CEILING})");
    }
    let cold_ms = (0..3)
        .map(|_| {
            let config = cold_single();
            let t = std::time::Instant::now();
            let _ = analyze_program(&cholsky.info, &config).unwrap();
            t.elapsed().as_millis()
        })
        .min()
        .unwrap();
    if cold_ms > CHOLSKY_COLD_MS_CEILING {
        eprintln!(
            "smoke: FAIL: cold CHOLSKY analysis took {cold_ms} ms \
             (ceiling {CHOLSKY_COLD_MS_CEILING} ms): the miss path slowed down"
        );
        ok = false;
    } else {
        println!("smoke: cold wall time ok ({cold_ms} ms <= {CHOLSKY_COLD_MS_CEILING} ms)");
    }

    // Corpus-scaling gate: the two-level corpus driver must reproduce
    // every standalone per-program report byte-for-byte at several
    // thread counts, and its multi-threaded wall time must stay inside
    // an overhead ceiling of the sequential run. On a multi-core host
    // the pool should win outright; on a single-core CI box it can only
    // add scheduling overhead, so the gate is a ceiling, not a speedup
    // requirement.
    let infos: Vec<tiny::ProgramInfo> = runs.iter().map(|r| r.info.clone()).collect();
    let render_one = |info: &tiny::ProgramInfo, a: &depend::Analysis| {
        let graph = depend::DepGraph::new(info, a);
        (
            depend::live_flow_table(&graph, &ropts),
            depend::dead_flow_table(&graph, &ropts),
            depend::report::to_json(&graph),
        )
    };
    let standalone: Vec<_> = runs
        .iter()
        .map(|r| render_one(&r.info, &r.analysis))
        .collect();
    let mut corpus_identical = true;
    for threads in [1usize, 8] {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let analyses = analyze_corpus(&infos, &config).unwrap();
        let got: Vec<_> = runs
            .iter()
            .zip(&analyses)
            .map(|(r, a)| render_one(&r.info, a))
            .collect();
        if got != standalone {
            eprintln!(
                "smoke: FAIL: corpus driver diverged from the standalone \
                 driver at threads={threads}"
            );
            ok = false;
            corpus_identical = false;
        }
    }
    if corpus_identical {
        println!("smoke: corpus determinism ok (threads 1/8 match the standalone driver)");
    }
    let time_corpus = |threads: usize| {
        let config = Config {
            threads,
            ..Config::extended()
        };
        (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                let _ = analyze_corpus(&infos, &config).unwrap();
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    // The gate is nproc-aware: a single- or dual-core runner can only
    // add scheduling overhead, so it merely gets an overhead ceiling;
    // a runner with 4+ cores must show a real win — the 8-thread wall
    // time has to come in at or under SPEEDUP_CEILING of sequential.
    const CORPUS_OVERHEAD_CEILING: f64 = 1.5;
    const CORPUS_SPEEDUP_CEILING: f64 = 0.8;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ceiling = if cores >= 4 {
        CORPUS_SPEEDUP_CEILING
    } else {
        CORPUS_OVERHEAD_CEILING
    };
    let seq = time_corpus(1);
    let par = time_corpus(8);
    let ratio = par.as_secs_f64() / seq.as_secs_f64().max(1e-9);
    if ratio > ceiling {
        eprintln!(
            "smoke: FAIL: 8-thread corpus run took {ratio:.2}x the sequential \
             wall time (ceiling {ceiling} on {cores} cores; seq {seq:?}, par {par:?})"
        );
        ok = false;
    } else {
        println!(
            "smoke: corpus scaling ok (8-thread wall time {ratio:.2}x of sequential, \
             ceiling {ceiling} on {cores} cores; seq {seq:?}, par {par:?})"
        );
    }

    if ok {
        println!("smoke: all checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
