//! CI smoke check for the performance machinery: runs the extended
//! analysis over the corpus once and fails (exit 1) when the memo cache
//! or the §4.5 pre-filter is silently dead — nonzero hits on CHOLSKY,
//! nonzero skips corpus-wide (the strided sweeps), and byte-identical
//! reports at several thread counts.

use std::process::ExitCode;

use bench::{counters_line, run_corpus};
use depend::{analyze_program, Config, ReportOptions};

fn main() -> ExitCode {
    let runs = run_corpus(&Config::extended());
    println!("{}", counters_line(&runs));
    let mut ok = true;

    let cholsky = runs
        .iter()
        .find(|r| r.name == "cholsky")
        .expect("cholsky is in the corpus");
    let hits = cholsky.analysis.stats.cache.hits;
    if hits == 0 {
        eprintln!("smoke: FAIL: memo cache scored no hits on CHOLSKY");
        ok = false;
    } else {
        println!("smoke: cache ok ({hits} hits on CHOLSKY)");
    }

    let skipped: u64 = runs
        .iter()
        .map(|r| r.analysis.stats.prefilter.skipped())
        .sum();
    if skipped == 0 {
        eprintln!("smoke: FAIL: the pre-filter skipped no pair in the whole corpus");
        ok = false;
    } else {
        println!("smoke: prefilter ok ({skipped} pairs skipped corpus-wide)");
    }

    let ropts = ReportOptions::default();
    let render = |threads: usize| {
        let config = Config {
            threads,
            ..Config::extended()
        };
        let analysis = analyze_program(&cholsky.info, &config).unwrap();
        (
            depend::live_flow_table(&cholsky.info, &analysis, &ropts),
            depend::dead_flow_table(&cholsky.info, &analysis, &ropts),
            depend::report::to_json(&cholsky.info, &analysis),
        )
    };
    let sequential = render(1);
    for threads in [2, 8] {
        if render(threads) != sequential {
            eprintln!("smoke: FAIL: CHOLSKY report diverged at threads={threads}");
            ok = false;
        }
    }
    if ok {
        println!("smoke: determinism ok (threads 1/2/8 identical on CHOLSKY)");
        println!("smoke: all checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
