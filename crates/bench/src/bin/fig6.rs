//! Regenerates Figure 6: per-pair analysis timing.
//!
//! Left plot — extended vs standard analysis time per write/read array
//! pair, classified as in the paper: plain points (extended capabilities
//! not needed), `*` (general covering/refinement test on one vector),
//! `o` (the dependence was split into several vectors, the paper's `◇`).
//!
//! Right plot — kill-test time vs the time to generate + refine + cover
//! the dependence being killed; quick-test kills cluster at negligible
//! x, Omega-consulted kills to the right.
//!
//! Absolute times are from this host, not a 1992 SPARC IPX; the paper's
//! claims to check are the *shape*: extended ≈ 2–4× standard for tested
//! pairs, three visible cost classes, and most kill tests resolved
//! without consulting the Omega test.

use bench::{ascii_scatter, counters_line, fig6_summary, run_corpus};
use depend::{Config, PairClass};

fn main() {
    let runs = run_corpus(&Config::extended());
    let s = fig6_summary(&runs);
    println!("{}", counters_line(&runs));
    println!();

    println!("=== Figure 6 (left): extended vs standard analysis time per pair ===");
    println!(
        "pairs: {} total | {} no-test (paper: 264) | {} general `*` (paper: 81) | {} split `o` (paper: 72)",
        s.pairs.len(),
        s.no_test,
        s.general,
        s.split
    );
    let pts: Vec<(f64, f64, char)> = s
        .pairs
        .iter()
        .map(|&(std_ns, ext_ns, class)| {
            let c = match class {
                PairClass::NoTest => '.',
                PairClass::General => '*',
                PairClass::Split => 'o',
            };
            (std_ns as f64 / 1000.0, ext_ns as f64 / 1000.0, c)
        })
        .collect();
    println!("{}", ascii_scatter(&pts, 64, 20, "standard us", "extended us"));

    // Ratio distribution for the tested pairs (the paper: "generally 2 or
    // 3 times the amount of time needed to generate the dependence").
    let mut ratios: Vec<f64> = s
        .pairs
        .iter()
        .filter(|(_, _, c)| *c != PairClass::NoTest)
        .map(|&(std_ns, ext_ns, _)| ext_ns as f64 / std_ns.max(1) as f64)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    if !ratios.is_empty() {
        let q = |f: f64| ratios[(f * (ratios.len() - 1) as f64) as usize];
        println!(
            "ext/std ratio over tested pairs: p25={:.2} median={:.2} p75={:.2} p95={:.2}",
            q(0.25),
            q(0.5),
            q(0.75),
            q(0.95)
        );
    }

    println!();
    println!("=== Figure 6 (right): kill test time vs victim generation time ===");
    println!(
        "kill tests: {} total | {} quick (paper: 284) | {} consulted the Omega test (paper: 54)",
        s.kills.len(),
        s.quick_kills,
        s.omega_kills
    );
    let pts: Vec<(f64, f64, char)> = s
        .kills
        .iter()
        .map(|&(kill_ns, gen_ns, consulted)| {
            (
                kill_ns as f64 / 1000.0,
                gen_ns as f64 / 1000.0,
                if consulted { '*' } else { '.' },
            )
        })
        .collect();
    println!(
        "{}",
        ascii_scatter(&pts, 64, 20, "kill test us", "victim extended us")
    );

    // CSV dumps for external plotting.
    println!("--- CSV: pair,std_ns,ext_ns,class ---");
    for (i, &(a, b, c)) in s.pairs.iter().enumerate() {
        println!("{i},{a},{b},{c:?}");
    }
    println!("--- CSV: kill,kill_ns,victim_ext_ns,consulted ---");
    for (i, &(a, b, c)) in s.kills.iter().enumerate() {
        println!("{i},{a},{b},{c}");
    }
}
