//! Regenerates Figures 3 and 4: live and dead flow dependences for the
//! CHOLSKY NAS kernel, printed with the paper's DO-label numbering.

use depend::{analyze_program, Config, ReportOptions};

fn main() {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).expect("CHOLSKY parses");
    let info = tiny::analyze(&program).expect("CHOLSKY analyzes");
    let analysis = analyze_program(&info, &Config::extended()).expect("analysis");
    let graph = depend::DepGraph::new(&info, &analysis);
    let opts = ReportOptions {
        label_map: Some(tiny::corpus::CHOLSKY_PAPER_LABELS.to_vec()),
    };
    println!("=== Figure 3: live flow dependences for CHOLSKY ===");
    print!("{}", depend::live_flow_table(&graph, &opts));
    println!();
    println!("=== Figure 4: dead flow dependences for CHOLSKY ===");
    print!("{}", depend::dead_flow_table(&graph, &opts));
}
