//! Quick timing and allocation breakdown of the CHOLSKY analysis under
//! various configs. Each config is run twice: the cold run pays for row
//! interning and symbol-table population, the warm run is what the
//! perf_guard and smoke gates measure.

use std::time::Instant;

use depend::{analyze_program, Config};

#[global_allocator]
static ALLOC: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc::new();

fn run(name: &str, config: &Config) {
    let program = tiny::Program::parse(tiny::corpus::CHOLSKY).unwrap();
    let info = tiny::analyze(&program).unwrap();
    let report = |phase: &str| {
        let allocs_before = harness::alloc::thread_allocs();
        let t = Instant::now();
        let a = analyze_program(&info, config).unwrap();
        let elapsed = t.elapsed();
        let allocs = harness::alloc::thread_allocs() - allocs_before;
        println!(
            "{name:<28} {phase:<5} {elapsed:>8.2?}  flows={} dead={} allocs={allocs}",
            a.flows.len(),
            a.dead_flows().count()
        );
    };
    report("cold");
    report("warm");
}

fn main() {
    run("standard", &Config::standard());
    run("refine only", &Config { cover: false, kill: false, ..Config::default() });
    run("refine+cover", &Config { kill: false, ..Config::default() });
    run("full, no formula fallback", &Config { formula_fallback: false, ..Config::default() });
    run("full", &Config::default());
    run("full, no quick tests", &Config { quick_tests: false, ..Config::default() });
    // The gated configuration: single-threaded extended analysis, the
    // exact shape of the smoke / perf_guard warm measurements.
    run(
        "extended, threads=1",
        &Config {
            threads: 1,
            ..Config::extended()
        },
    );
}
