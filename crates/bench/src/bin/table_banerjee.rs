//! Baseline-subsumption table over the Banerjee book examples
//! (5.7/5.10/5.11/5.12): for every same-array access pair, what the GCD
//! and Banerjee bounds baselines conclude versus what the Omega test
//! proves, and the count of false dependences only the exact test
//! eliminates. Exits nonzero when the Omega test fails to eliminate any
//! baseline "maybe" — the table is the accuracy claim, not decoration.

use std::process::ExitCode;

use bench::{baseline_vs_omega, BANERJEE_EXAMPLES};
use depend::baseline::Verdict;

fn main() -> ExitCode {
    let rows = baseline_vs_omega(&BANERJEE_EXAMPLES);
    println!(
        "{:<14} {:<7} {:<16} {:<16} {:<12} {:<10} {}",
        "program", "kind", "src", "dst", "gcd+banerjee", "omega", "note"
    );
    let mut eliminated = 0usize;
    let mut confirmed = 0usize;
    for r in &rows {
        let baseline = match r.baseline {
            Verdict::Independent => "independent",
            Verdict::Maybe => "maybe",
        };
        let omega = if r.omega_dependent {
            "dependent"
        } else {
            "independent"
        };
        let note = if r.eliminated_by_omega() {
            eliminated += 1;
            "<- false dependence eliminated"
        } else if r.omega_dependent && r.baseline == Verdict::Maybe {
            confirmed += 1;
            "real (kept by all tests)"
        } else {
            ""
        };
        println!(
            "{:<14} {:<7} {:<16} {:<16} {:<12} {:<10} {}",
            r.program, r.kind, r.src, r.dst, baseline, omega, note
        );
    }
    println!(
        "\n{eliminated} false dependence(s) reported by the baselines eliminated by the \
         Omega test; {confirmed} real dependence(s) kept by every test."
    );
    if eliminated == 0 {
        eprintln!("table_banerjee: FAIL: the Omega test eliminated nothing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
