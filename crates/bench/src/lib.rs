#![warn(missing_docs)]
//! Shared harness utilities for regenerating the paper's tables and
//! figures over the benchmark corpus.

use depend::{analyze_program, Analysis, Config, PairClass};
use tiny::corpus;

/// The analysis results for one corpus program.
#[derive(Debug)]
pub struct CorpusRun {
    /// Program name.
    pub name: &'static str,
    /// The analyzed program.
    pub info: tiny::ProgramInfo,
    /// Extended-analysis results (statistics included).
    pub analysis: Analysis,
}

/// Runs the extended analysis over the full corpus.
///
/// # Panics
///
/// Panics if a corpus program fails to parse or analyze — the corpus is
/// fixed and covered by tests.
pub fn run_corpus(config: &Config) -> Vec<CorpusRun> {
    corpus::all()
        .into_iter()
        .map(|entry| {
            let program = tiny::Program::parse(entry.source)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let info = tiny::analyze(&program).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let analysis = analyze_program(&info, config)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            CorpusRun {
                name: entry.name,
                info,
                analysis,
            }
        })
        .collect()
}

/// Aggregated Figure 6 numbers across the corpus.
#[derive(Debug, Default, Clone)]
pub struct Fig6Summary {
    /// Pairs where the extended capabilities were not needed (the paper's
    /// 264 plain dots).
    pub no_test: usize,
    /// Pairs with a general covering/refinement test on one vector (the
    /// paper's 81 `*`s).
    pub general: usize,
    /// Pairs split into several vectors (the paper's 72 `◇`s).
    pub split: usize,
    /// Kill tests resolved by quick tests (the paper's 284 fast points).
    pub quick_kills: usize,
    /// Kill tests that consulted the Omega test (the paper's 54 slow
    /// points).
    pub omega_kills: usize,
    /// (std_ns, ext_ns, class) per pair.
    pub pairs: Vec<(u64, u64, PairClass)>,
    /// (kill_ns, victim_ext_ns, consulted) per kill test.
    pub kills: Vec<(u64, u64, bool)>,
}

/// Collects Figure 6 statistics from corpus runs.
pub fn fig6_summary(runs: &[CorpusRun]) -> Fig6Summary {
    let mut s = Fig6Summary::default();
    for r in runs {
        for p in &r.analysis.stats.pairs {
            match p.class {
                PairClass::NoTest => s.no_test += 1,
                PairClass::General => s.general += 1,
                PairClass::Split => s.split += 1,
            }
            s.pairs.push((p.std_ns, p.ext_ns, p.class));
        }
        for k in &r.analysis.stats.kills {
            if k.consulted_omega {
                s.omega_kills += 1;
            } else {
                s.quick_kills += 1;
            }
            s.kills.push((k.kill_ns, k.victim_ext_ns, k.consulted_omega));
        }
    }
    s
}

/// Aggregated solver-cache and §4.5 pre-filter counters across runs.
pub fn counter_summary(runs: &[CorpusRun]) -> (omega::CacheStats, depend::PrefilterStats) {
    let mut cache = omega::CacheStats::default();
    let mut prefilter = depend::PrefilterStats::default();
    for r in runs {
        cache.hits += r.analysis.stats.cache.hits;
        cache.misses += r.analysis.stats.cache.misses;
        cache.inserts += r.analysis.stats.cache.inserts;
        cache.full_canons += r.analysis.stats.cache.full_canons;
        cache.delta_canons += r.analysis.stats.cache.delta_canons;
        cache.checkpoint_resumes += r.analysis.stats.cache.checkpoint_resumes;
        cache.checkpoint_rebuilds += r.analysis.stats.cache.checkpoint_rebuilds;
        prefilter.gcd += r.analysis.stats.prefilter.gcd;
        prefilter.range += r.analysis.stats.prefilter.range;
        prefilter.symbolic_range += r.analysis.stats.prefilter.symbolic_range;
        prefilter.passed += r.analysis.stats.prefilter.passed;
    }
    (cache, prefilter)
}

/// The counter summary as a one-line report for the figure drivers.
pub fn counters_line(runs: &[CorpusRun]) -> String {
    let (cache, prefilter) = counter_summary(runs);
    format!(
        "memo cache: {} hits / {} lookups ({:.0}% hit rate, {} inserts) | \
         canon: {} full, {} delta | \
         prefilter: {} skipped of {} pairs (gcd {}, range {}, symbolic {})",
        cache.hits,
        cache.lookups(),
        cache.hit_rate() * 100.0,
        cache.inserts,
        cache.full_canons,
        cache.delta_canons,
        prefilter.skipped(),
        prefilter.tested(),
        prefilter.gcd,
        prefilter.range,
        prefilter.symbolic_range
    )
}

/// One row of the baseline-vs-Omega accuracy table: what the GCD and
/// Banerjee bounds tests conclude about one access pair versus what the
/// Omega test proves.
#[derive(Debug)]
pub struct BaselineRow {
    /// Corpus program name.
    pub program: &'static str,
    /// Dependence kind tested.
    pub kind: depend::DepKind,
    /// Rendered source access, e.g. `1: a(2*i)`.
    pub src: String,
    /// Rendered destination access.
    pub dst: String,
    /// Combined GCD + Banerjee verdict (`Independent` when either test
    /// disproves the dependence).
    pub baseline: depend::baseline::Verdict,
    /// Whether the Omega test found the dependence real.
    pub omega_dependent: bool,
}

impl BaselineRow {
    /// A baseline "maybe" that the Omega test proves away — the false
    /// dependences the paper's exact test eliminates.
    pub fn eliminated_by_omega(&self) -> bool {
        self.baseline == depend::baseline::Verdict::Maybe && !self.omega_dependent
    }
}

/// Runs the GCD/Banerjee baselines and the Omega test over every
/// same-array access pair of the named corpus programs (flow, anti and
/// output kinds), one row per pair.
///
/// # Panics
///
/// Panics when a named program is missing from the corpus or fails the
/// front end — the table drives fixed book examples covered by tests.
pub fn baseline_vs_omega(names: &[&'static str]) -> Vec<BaselineRow> {
    use depend::dep::AccessSite;
    use depend::{baseline, build_dependence, DepKind};

    let mut rows = Vec::new();
    for &name in names {
        let entry = corpus::by_name(name).unwrap_or_else(|| panic!("{name} not in corpus"));
        let program = tiny::Program::parse(entry.source).unwrap();
        let info = tiny::analyze(&program).unwrap();
        let mut budget = omega::Budget::default();
        let sites = |s: &tiny::StmtInfo| {
            let mut v = Vec::new();
            if !s.write.subs.is_empty() {
                v.push(AccessSite::Write);
            }
            for (i, r) in s.reads.iter().enumerate() {
                if !r.subs.is_empty() {
                    v.push(AccessSite::Read(i));
                }
            }
            v
        };
        fn access(s: &tiny::StmtInfo, site: AccessSite) -> &tiny::Access {
            match site {
                AccessSite::Write => &s.write,
                AccessSite::Read(i) => &s.reads[i],
            }
        }
        for src in &info.stmts {
            for dst in &info.stmts {
                for &ss in &sites(src) {
                    for &ds in &sites(dst) {
                        let (sa, da) = (access(src, ss), access(dst, ds));
                        if tiny::ast::name_key(&sa.array) != tiny::ast::name_key(&da.array) {
                            continue;
                        }
                        let kind = match (ss, ds) {
                            (AccessSite::Write, AccessSite::Write) => DepKind::Output,
                            (AccessSite::Write, AccessSite::Read(_)) => DepKind::Flow,
                            (AccessSite::Read(_), AccessSite::Write) => DepKind::Anti,
                            // Read-read pairs carry no dependence.
                            (AccessSite::Read(_), AccessSite::Read(_)) => continue,
                        };
                        // Output pairs are symmetric: keep source order.
                        if kind == DepKind::Output && src.label > dst.label {
                            continue;
                        }
                        let baseline = baseline::baseline_pair_test(src, ss, dst, ds);
                        let omega_dependent =
                            build_dependence(&info, kind, src, ss, dst, ds, &mut budget)
                                .unwrap()
                                .is_some();
                        rows.push(BaselineRow {
                            program: entry.name,
                            kind,
                            src: format!("{}: {}", src.label, sa),
                            dst: format!("{}: {}", dst.label, da),
                            baseline,
                            omega_dependent,
                        });
                    }
                }
            }
        }
    }
    rows
}

/// The names of the Banerjee book examples carried in the corpus.
pub const BANERJEE_EXAMPLES: [&str; 4] = [
    "banerjee_5_7",
    "banerjee_5_10",
    "banerjee_5_11",
    "banerjee_5_12",
];

/// A crude textual scatter plot: `width`×`height` grid over log-log axes.
pub fn ascii_scatter(
    points: &[(f64, f64, char)],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let xs: Vec<f64> = points.iter().map(|p| p.0.max(1.0).log10()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1.max(1.0).log10()).collect();
    let (xmin, xmax) = bounds(&xs);
    let (ymin, ymax) = bounds(&ys);
    let mut grid = vec![vec![' '; width]; height];
    for ((x, y), p) in xs.iter().zip(&ys).zip(points) {
        let cx = scale(*x, xmin, xmax, width);
        let cy = scale(*y, ymin, ymax, height);
        let cell = &mut grid[height - 1 - cy][cx];
        if *cell == ' ' || p.2 != '.' {
            *cell = p.2;
        }
    }
    let mut out = format!("  {y_label} (log) ^\n");
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str(&format!("> {x_label} (log)\n"));
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if !lo.is_finite() || !hi.is_finite() || lo == hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn scale(x: f64, lo: f64, hi: f64, n: usize) -> usize {
    (((x - lo) / (hi - lo)) * (n as f64 - 1.0)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_runs_clean() {
        let runs = run_corpus(&Config::extended());
        assert!(runs.len() >= 25);
        let s = fig6_summary(&runs);
        let total = s.no_test + s.general + s.split;
        assert!(total >= 100, "expected a substantial pair count, got {total}");
        assert!(s.quick_kills + s.omega_kills > 0);
    }

    #[test]
    fn banerjee_examples_show_omega_subsumes_baselines() {
        use depend::baseline::Verdict;
        use depend::DepKind;
        let rows = baseline_vs_omega(&BANERJEE_EXAMPLES);
        let find = |program: &str, kind: DepKind, src: &str| {
            rows.iter()
                .find(|r| r.program == program && r.kind == kind && r.src.contains(src))
                .unwrap_or_else(|| panic!("no row for {program}/{kind}/{src}"))
        };
        // 5.7: the GCD test already disproves the stride-2 flow pair, and
        // the Omega test agrees (subsumption, not divergence).
        let r = find("banerjee_5_7", DepKind::Flow, "a(2*i)");
        assert_eq!(r.baseline, Verdict::Independent);
        assert!(!r.omega_dependent);
        // 5.10: Banerjee's bounds disprove the disjoint ranges; Omega agrees.
        let r = find("banerjee_5_10", DepKind::Flow, "a(i+60)");
        assert_eq!(r.baseline, Verdict::Independent);
        assert!(!r.omega_dependent);
        // 5.11: coupled subscripts — only the exact simultaneous test wins.
        let r = find("banerjee_5_11", DepKind::Flow, "a(i,i)");
        assert!(r.eliminated_by_omega());
        // 5.12: symbolic disjoint regions — only Omega proves independence —
        // while the genuine stride-2 recurrence is kept by every test.
        let r = find("banerjee_5_12", DepKind::Flow, "a(i+n)");
        assert!(r.eliminated_by_omega());
        let r = find("banerjee_5_12", DepKind::Flow, "d(2*i)");
        assert_eq!(r.baseline, Verdict::Maybe);
        assert!(r.omega_dependent);
        // The headline number: a nontrivial set of baseline false
        // dependences vanishes under the exact test.
        let eliminated = rows.iter().filter(|r| r.eliminated_by_omega()).count();
        assert!(eliminated >= 10, "only {eliminated} false dependences eliminated");
    }

    #[test]
    fn scatter_renders() {
        let pts = vec![(10.0, 20.0, '*'), (100.0, 400.0, '.'), (1000.0, 50.0, 'o')];
        let s = ascii_scatter(&pts, 20, 8, "x", "y");
        assert!(s.contains('*') && s.contains('o'));
    }
}
