//! Property-based tests for the Omega test core, cross-checked against
//! brute-force enumeration on small boxes.

use omega::{gist, implies, LinExpr, Problem, VarKind};
use proptest::prelude::*;

const BOX: i64 = 4;

/// Builds a problem over `nvars` input variables confined to
/// `[-BOX, BOX]^n`, with the given random constraint rows
/// (coefficients + constant; `is_eq` selects equality).
fn build(nvars: usize, rows: &[(Vec<i64>, i64, bool)]) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = (0..nvars)
        .map(|i| p.add_var(format!("v{i}"), VarKind::Input))
        .collect();
    for &v in &vars {
        p.add_geq(LinExpr::var(v).plus_const(BOX));
        p.add_geq(LinExpr::term(-1, v).plus_const(BOX));
    }
    for (coeffs, k, is_eq) in rows {
        let mut e = LinExpr::constant_expr(*k);
        for (i, &c) in coeffs.iter().enumerate() {
            if i < nvars {
                e.set_coef(vars[i], c);
            }
        }
        if *is_eq {
            p.add_eq(e);
        } else {
            p.add_geq(e);
        }
    }
    p
}

/// All points of the box, as dense assignments.
fn box_points(nvars: usize) -> Vec<Vec<i64>> {
    let mut pts: Vec<Vec<i64>> = vec![vec![]];
    for _ in 0..nvars {
        let mut next = Vec::new();
        for p in &pts {
            for v in -BOX..=BOX {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        pts = next;
    }
    pts
}

fn row_strategy() -> impl Strategy<Value = (Vec<i64>, i64, bool)> {
    (
        proptest::collection::vec(-5i64..=5, 3),
        -8i64..=8,
        proptest::bool::weighted(0.3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satisfiability agrees with brute force over the box.
    #[test]
    fn sat_matches_brute_force(
        rows in proptest::collection::vec(row_strategy(), 1..4),
        nvars in 1usize..=3,
    ) {
        let p = build(nvars, &rows);
        let brute = box_points(nvars).iter().any(|pt| p.satisfies(pt));
        let solved = p.is_satisfiable().unwrap();
        prop_assert_eq!(solved, brute, "problem: {}", p);
    }

    /// Normalization preserves the solution set.
    #[test]
    fn normalize_preserves_solutions(
        rows in proptest::collection::vec(row_strategy(), 1..4),
        nvars in 1usize..=3,
    ) {
        let p = build(nvars, &rows);
        let mut q = p.clone();
        q.normalize().unwrap();
        for pt in box_points(nvars) {
            prop_assert_eq!(p.satisfies(&pt), q.satisfies(&pt), "at {:?}", pt);
        }
    }

    /// Projection onto the first variable matches brute-forced shadows:
    /// a value is in the union of projection pieces iff some completion
    /// satisfies the original problem.
    #[test]
    fn projection_matches_brute_force(
        rows in proptest::collection::vec(row_strategy(), 1..3),
        nvars in 2usize..=3,
    ) {
        let p = build(nvars, &rows);
        let keep = p.find_var("v0").unwrap();
        let proj = p.project(&[keep]).unwrap();
        for x in -BOX..=BOX {
            let brute = box_points(nvars - 1).iter().any(|rest| {
                let mut pt = vec![x];
                pt.extend(rest);
                p.satisfies(&pt)
            });
            let union = proj.problems().any(|piece| {
                let mut q = piece.clone();
                q.add_eq(LinExpr::var(keep).plus_const(-x));
                q.is_satisfiable().unwrap()
            });
            prop_assert_eq!(union, brute, "x = {}, problem {}", x, p);
        }
    }

    /// Gist semantics: (gist p given q) ∧ q  ≡  p ∧ q, pointwise.
    #[test]
    fn gist_semantics(
        rows_p in proptest::collection::vec(row_strategy(), 1..3),
        rows_q in proptest::collection::vec(row_strategy(), 1..3),
    ) {
        let nvars = 2;
        let p = build(nvars, &rows_p);
        let q = build(nvars, &rows_q);
        let g = gist(&p, &q).unwrap();
        for pt in box_points(nvars) {
            let lhs = g.satisfies(&pt) && q.satisfies(&pt);
            let rhs = p.satisfies(&pt) && q.satisfies(&pt);
            prop_assert_eq!(lhs, rhs, "at {:?}: gist {}", pt, g);
        }
    }

    /// Implication agrees with brute force. Note `implies` quantifies over
    /// all integers while brute force only sees the box; both problems
    /// embed the same box constraints, so the answers must coincide.
    #[test]
    fn implies_matches_brute_force(
        rows_p in proptest::collection::vec(row_strategy(), 1..3),
        rows_q in proptest::collection::vec(row_strategy(), 1..3),
    ) {
        let nvars = 2;
        let p = build(nvars, &rows_p);
        let q = build(nvars, &rows_q);
        let brute = box_points(nvars)
            .iter()
            .all(|pt| !p.satisfies(pt) || q.satisfies(pt));
        // q includes the box constraints; outside the box p is false
        // (its own box constraints), so the implication is equivalent.
        let solved = implies(&p, &q).unwrap();
        prop_assert_eq!(solved, brute, "p {} q {}", p, q);
    }

    /// Witness extraction agrees with satisfiability, and every witness
    /// actually satisfies the problem.
    #[test]
    fn witness_agrees_with_sat(
        rows in proptest::collection::vec(row_strategy(), 1..4),
        nvars in 1usize..=3,
    ) {
        let p = build(nvars, &rows);
        let sat = p.is_satisfiable().unwrap();
        let sol = p.sample_solution().unwrap();
        prop_assert_eq!(sat, sol.is_some(), "sample/sat mismatch on {}", p);
        if let Some(sol) = sol {
            let mut dense = vec![0i64; p.num_vars().max(
                sol.keys().map(|v| v.index() + 1).max().unwrap_or(0),
            )];
            for (v, c) in &sol {
                dense[v.index()] = *c;
            }
            prop_assert!(p.satisfies(&dense), "witness fails {}", p);
        }
    }

    /// The real shadow over-approximates and the dark shadow
    /// under-approximates the projection.
    #[test]
    fn shadow_sandwich(
        rows in proptest::collection::vec(row_strategy(), 1..3),
    ) {
        let nvars = 3;
        let p = build(nvars, &rows);
        let keep = p.find_var("v0").unwrap();
        let proj = p.project(&[keep]).unwrap();
        for x in -BOX..=BOX {
            let brute = box_points(nvars - 1).iter().any(|rest| {
                let mut pt = vec![x];
                pt.extend(rest);
                p.satisfies(&pt)
            });
            // dark ⊆ projection
            let mut d = proj.dark().clone();
            d.add_eq(LinExpr::var(keep).plus_const(-x));
            if d.is_satisfiable().unwrap() {
                prop_assert!(brute, "dark shadow contains x={} not in projection", x);
            }
            // projection ⊆ real
            if brute {
                let mut r = proj.real().clone();
                r.add_eq(LinExpr::var(keep).plus_const(-x));
                prop_assert!(
                    r.is_satisfiable().unwrap(),
                    "real shadow misses x={}",
                    x
                );
            }
        }
    }
}
