//! Property-based tests for the Omega test core, cross-checked against
//! brute-force enumeration on small boxes. Runs on the in-repo
//! `harness` property framework; each property is a plain function so
//! the named regression tests at the bottom can replay historical
//! failure witnesses exactly.

use harness::prop::{check, Config};
use harness::{prop_assert, prop_assert_eq, Rng};
use omega::{gist, implies, LinExpr, Problem, VarKind};

const BOX: i64 = 4;

/// One random constraint: coefficients + constant; `is_eq` selects
/// equality.
type Row = (Vec<i64>, i64, bool);

/// Builds a problem over `nvars` input variables confined to
/// `[-BOX, BOX]^n`, with the given random constraint rows.
fn build(nvars: usize, rows: &[Row]) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = (0..nvars)
        .map(|i| p.add_var(format!("v{i}"), VarKind::Input))
        .collect();
    for &v in &vars {
        p.add_geq(LinExpr::var(v).plus_const(BOX));
        p.add_geq(LinExpr::term(-1, v).plus_const(BOX));
    }
    for (coeffs, k, is_eq) in rows {
        let mut e = LinExpr::constant_expr(*k);
        for (i, &c) in coeffs.iter().enumerate() {
            if i < nvars {
                e.set_coef(vars[i], c);
            }
        }
        if *is_eq {
            p.add_eq(e);
        } else {
            p.add_geq(e);
        }
    }
    p
}

/// All points of the box, as dense assignments.
fn box_points(nvars: usize) -> Vec<Vec<i64>> {
    let mut pts: Vec<Vec<i64>> = vec![vec![]];
    for _ in 0..nvars {
        let mut next = Vec::new();
        for p in &pts {
            for v in -BOX..=BOX {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        pts = next;
    }
    pts
}

fn gen_row(rng: &mut Rng) -> Row {
    (
        (0..3).map(|_| rng.gen_range_i64(-5..=5)).collect(),
        rng.gen_range_i64(-8..=8),
        rng.gen_bool(0.3),
    )
}

/// 1 to `max` (inclusive) random rows.
fn gen_rows(rng: &mut Rng, max: usize) -> Vec<Row> {
    let n = rng.gen_range_usize(1..=max);
    (0..n).map(|_| gen_row(rng)).collect()
}

// ---- the properties, as replayable functions ----

/// Satisfiability agrees with brute force over the box.
fn prop_sat(rows: &[Row], nvars: usize) -> Result<(), String> {
    let p = build(nvars, rows);
    let brute = box_points(nvars).iter().any(|pt| p.satisfies(pt));
    let solved = p.is_satisfiable().unwrap();
    prop_assert_eq!(solved, brute, "problem: {}", p);
    Ok(())
}

/// Normalization preserves the solution set.
fn prop_normalize(rows: &[Row], nvars: usize) -> Result<(), String> {
    let p = build(nvars, rows);
    let mut q = p.clone();
    q.normalize().unwrap();
    for pt in box_points(nvars) {
        prop_assert_eq!(p.satisfies(&pt), q.satisfies(&pt), "at {:?}", pt);
    }
    Ok(())
}

/// Projection onto the first variable matches brute-forced shadows: a
/// value is in the union of projection pieces iff some completion
/// satisfies the original problem.
fn prop_projection(rows: &[Row], nvars: usize) -> Result<(), String> {
    let p = build(nvars, rows);
    let keep = p.find_var("v0").unwrap();
    let proj = p.project(&[keep]).unwrap();
    for x in -BOX..=BOX {
        let brute = box_points(nvars - 1).iter().any(|rest| {
            let mut pt = vec![x];
            pt.extend(rest);
            p.satisfies(&pt)
        });
        let union = proj.problems().any(|piece| {
            let mut q = piece.clone();
            q.add_eq(LinExpr::var(keep).plus_const(-x));
            q.is_satisfiable().unwrap()
        });
        prop_assert_eq!(union, brute, "x = {}, problem {}", x, p);
    }
    Ok(())
}

/// Gist semantics: (gist p given q) ∧ q  ≡  p ∧ q, pointwise.
fn prop_gist(rows_p: &[Row], rows_q: &[Row]) -> Result<(), String> {
    let nvars = 2;
    let p = build(nvars, rows_p);
    let q = build(nvars, rows_q);
    let g = gist(&p, &q).unwrap();
    for pt in box_points(nvars) {
        let lhs = g.satisfies(&pt) && q.satisfies(&pt);
        let rhs = p.satisfies(&pt) && q.satisfies(&pt);
        prop_assert_eq!(lhs, rhs, "at {:?}: gist {}", pt, g);
    }
    Ok(())
}

/// Implication agrees with brute force. Note `implies` quantifies over
/// all integers while brute force only sees the box; both problems
/// embed the same box constraints, so the answers must coincide.
fn prop_implies(rows_p: &[Row], rows_q: &[Row]) -> Result<(), String> {
    let nvars = 2;
    let p = build(nvars, rows_p);
    let q = build(nvars, rows_q);
    let brute = box_points(nvars)
        .iter()
        .all(|pt| !p.satisfies(pt) || q.satisfies(pt));
    let solved = implies(&p, &q).unwrap();
    prop_assert_eq!(solved, brute, "p {} q {}", p, q);
    Ok(())
}

/// Witness extraction agrees with satisfiability, and every witness
/// actually satisfies the problem.
fn prop_witness(rows: &[Row], nvars: usize) -> Result<(), String> {
    let p = build(nvars, rows);
    let sat = p.is_satisfiable().unwrap();
    let sol = p.sample_solution().unwrap();
    prop_assert_eq!(sat, sol.is_some(), "sample/sat mismatch on {}", p);
    if let Some(sol) = sol {
        let mut dense = vec![
            0i64;
            p.num_vars()
                .max(sol.keys().map(|v| v.index() + 1).max().unwrap_or(0))
        ];
        for (v, c) in &sol {
            dense[v.index()] = *c;
        }
        prop_assert!(p.satisfies(&dense), "witness fails {}", p);
    }
    Ok(())
}

/// The real shadow over-approximates and the dark shadow
/// under-approximates the projection.
fn prop_shadow_sandwich(rows: &[Row]) -> Result<(), String> {
    let nvars = 3;
    let p = build(nvars, rows);
    let keep = p.find_var("v0").unwrap();
    let proj = p.project(&[keep]).unwrap();
    for x in -BOX..=BOX {
        let brute = box_points(nvars - 1).iter().any(|rest| {
            let mut pt = vec![x];
            pt.extend(rest);
            p.satisfies(&pt)
        });
        // dark ⊆ projection
        let mut d = proj.dark().clone();
        d.add_eq(LinExpr::var(keep).plus_const(-x));
        if d.is_satisfiable().unwrap() {
            prop_assert!(brute, "dark shadow contains x={} not in projection", x);
        }
        // projection ⊆ real
        if brute {
            let mut r = proj.real().clone();
            r.add_eq(LinExpr::var(keep).plus_const(-x));
            prop_assert!(r.is_satisfiable().unwrap(), "real shadow misses x={}", x);
        }
    }
    Ok(())
}

// ---- random-case drivers ----

#[test]
fn sat_matches_brute_force() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 3), rng.gen_range_usize(1..=3)),
        |(rows, nvars)| prop_sat(rows, (*nvars).clamp(1, 3)),
    );
}

#[test]
fn normalize_preserves_solutions() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 3), rng.gen_range_usize(1..=3)),
        |(rows, nvars)| prop_normalize(rows, (*nvars).clamp(1, 3)),
    );
}

#[test]
fn projection_matches_brute_force() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 2), rng.gen_range_usize(2..=3)),
        |(rows, nvars)| prop_projection(rows, (*nvars).clamp(2, 3)),
    );
}

#[test]
fn gist_semantics() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 2), gen_rows(rng, 2)),
        |(rows_p, rows_q)| prop_gist(rows_p, rows_q),
    );
}

#[test]
fn implies_matches_brute_force() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 2), gen_rows(rng, 2)),
        |(rows_p, rows_q)| prop_implies(rows_p, rows_q),
    );
}

#[test]
fn witness_agrees_with_sat() {
    check(
        &Config::with_cases(256),
        |rng| (gen_rows(rng, 3), rng.gen_range_usize(1..=3)),
        |(rows, nvars)| prop_witness(rows, (*nvars).clamp(1, 3)),
    );
}

#[test]
fn shadow_sandwich() {
    check(
        &Config::with_cases(256),
        |rng| gen_rows(rng, 2),
        |rows| prop_shadow_sandwich(rows),
    );
}

// ---- named regressions, ported from the historical proptest seed
// files (`prop.proptest-regressions`) before they were deleted. Each is
// the recorded minimal witness, replayed through every property whose
// input shape it matches. ----

/// `cc d2f788bc…`: shrank to `rows = [([2, -5, 0], 0, true)], nvars = 2`.
#[test]
fn regression_single_eq_row_two_vars() {
    let rows: Vec<Row> = vec![(vec![2, -5, 0], 0, true)];
    harness::prop::check_value(&(rows, 2usize), |(rows, nvars)| {
        prop_sat(rows, *nvars)?;
        prop_normalize(rows, *nvars)?;
        prop_projection(rows, *nvars)?;
        prop_witness(rows, *nvars)
    });
}

/// `cc c55b9dc7…`: shrank to `rows = [([2, 0, -5], 0, true)]` in the
/// fixed-arity (3-variable) shadow-sandwich property.
#[test]
fn regression_single_eq_row_shadow_sandwich() {
    let rows: Vec<Row> = vec![(vec![2, 0, -5], 0, true)];
    harness::prop::check_value(&rows, |rows| {
        prop_shadow_sandwich(rows)?;
        prop_sat(rows, 3)?;
        prop_normalize(rows, 3)?;
        prop_witness(rows, 3)
    });
}

/// Regression: `set_coef(v, 0)` used to leave trailing zeros in the
/// dense coefficient vector, so logically equal expressions compared
/// unequal and hashed differently — poisoning any map keyed on
/// expressions (the memo cache in particular).
#[test]
fn regression_trailing_zero_equality_and_hash() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);

    // x + 2z, then zero out the z coefficient: must equal plain x.
    let mut a = LinExpr::var(x);
    a.set_coef(z, 2);
    a.set_coef(z, 0);
    let b = LinExpr::var(x);
    assert_eq!(a, b);
    let hash = |e: &LinExpr| {
        let mut h = DefaultHasher::new();
        e.hash(&mut h);
        h.finish()
    };
    assert_eq!(hash(&a), hash(&b));

    // Cancellation through arithmetic must trim too: (x + y) - y == x.
    let mut c = LinExpr::var(x).plus_term(1, y);
    c.add_scaled(-1, &LinExpr::var(y)).unwrap();
    assert_eq!(c, LinExpr::var(x));
    assert_eq!(hash(&c), hash(&LinExpr::var(x)));
}

/// The same bug at the problem level: two problems whose constraints
/// differ only by a zeroed-out trailing coefficient must produce the
/// same canonical memo key, i.e. warm solves must actually hit.
#[test]
fn regression_trailing_zero_reaches_the_memo_cache() {
    use std::sync::Arc;

    let mk = |zero_via_set_coef: bool| {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let z = p.add_var("z", VarKind::Input);
        let mut e = LinExpr::var(x).plus_const(-1);
        if zero_via_set_coef {
            e.set_coef(z, 3);
            e.set_coef(z, 0);
        }
        p.add_geq(e);
        p.add_geq(LinExpr::var(z));
        p
    };
    let cache = Arc::new(omega::SolverCache::new());
    let mut b1 = omega::Budget::default().with_cache(cache.clone());
    let r1 = mk(false).is_satisfiable_with(&mut b1).unwrap();
    let mut b2 = omega::Budget::default().with_cache(cache.clone());
    let r2 = mk(true).is_satisfiable_with(&mut b2).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(cache.stats().hits, 1, "{:?}", cache.stats());
}

// ---- memo-cache properties ----

/// Caching is invisible in two senses: cached verdicts are semantically
/// equal to cold verdicts, and a cache *hit* is indistinguishable from
/// the *miss* that populated it — same value, same budget consumption —
/// so results never depend on which thread or pair computed a key first.
#[test]
fn cached_solves_match_cold_solves() {
    use std::sync::Arc;

    let hits_seen = std::cell::Cell::new(0u64);
    check(
        &Config::with_cases(128),
        |rng| (gen_rows(rng, 3), rng.gen_range_usize(1..=3)),
        |(rows, nvars)| {
            let nvars = (*nvars).clamp(1, 3);
            let p = build(nvars, rows);
            let cache = Arc::new(omega::SolverCache::new());

            // Sat: cold == miss == hit, and miss/hit spend identically.
            let cold_sat = p.is_satisfiable().unwrap();
            let mut miss = omega::Budget::default().with_cache(cache.clone());
            prop_assert_eq!(cold_sat, p.is_satisfiable_with(&mut miss).unwrap());
            let mut hit = omega::Budget::default().with_cache(cache.clone());
            prop_assert_eq!(cold_sat, p.is_satisfiable_with(&mut hit).unwrap());
            prop_assert_eq!(
                miss.remaining(),
                hit.remaining(),
                "hit/miss budgets diverged on {}",
                p
            );

            // Projection: the hit returns the exact value the miss
            // computed, which is semantically equal to the cold result.
            let keep = p.find_var("v0").unwrap();
            let cold_proj = p.project(&[keep]).unwrap();
            let mut miss = omega::Budget::default().with_cache(cache.clone());
            let miss_proj = p.project_with(&[keep], &mut miss).unwrap();
            let mut hit = omega::Budget::default().with_cache(cache.clone());
            let hit_proj = p.project_with(&[keep], &mut hit).unwrap();
            prop_assert_eq!(miss.remaining(), hit.remaining());
            prop_assert_eq!(cold_proj.is_exact(), miss_proj.is_exact());
            prop_assert_eq!(miss_proj.is_exact(), hit_proj.is_exact());
            for x in -BOX..=BOX {
                let member = |proj: &omega::Projection| {
                    proj.problems().any(|piece| {
                        let mut q = piece.clone();
                        q.add_eq(LinExpr::var(keep).plus_const(-x));
                        q.is_satisfiable().unwrap()
                    })
                };
                let in_cold = member(&cold_proj);
                prop_assert_eq!(in_cold, member(&miss_proj), "miss diverged at x={}", x);
                prop_assert_eq!(in_cold, member(&hit_proj), "hit diverged at x={}", x);
            }
            hits_seen.set(hits_seen.get() + cache.stats().hits);
            Ok(())
        },
    );
    // The repeated queries above must actually exercise the cache.
    assert!(hits_seen.get() > 0);
}
