//! Robustness tests: the solver must fail *cleanly* (typed errors, no
//! panics, no wraparound) on adversarial inputs.

use omega::{Budget, Error, LinExpr, Problem, VarKind};

#[test]
fn budget_exhaustion_is_reported_not_diverging() {
    // A chain of coupled inequalities with non-unit coefficients forces
    // real Fourier-Motzkin work; a tiny budget must trip TooComplex.
    let mut p = Problem::new();
    let vars: Vec<_> = (0..8)
        .map(|i| p.add_var(format!("v{i}"), VarKind::Input))
        .collect();
    for w in vars.windows(2) {
        p.add_geq(LinExpr::term(3, w[0]).plus_term(-2, w[1]).plus_const(1));
        p.add_geq(LinExpr::term(-3, w[0]).plus_term(2, w[1]).plus_const(7));
    }
    p.add_geq(LinExpr::var(vars[0]).plus_const(-1));
    p.add_geq(LinExpr::term(-1, vars[7]).plus_const(1000));
    let mut tiny_budget = Budget::new(3);
    match p.is_satisfiable_with(&mut tiny_budget) {
        Err(Error::TooComplex { .. }) => {}
        other => panic!("expected TooComplex, got {other:?}"),
    }
    // With a real budget the same problem resolves.
    assert!(p.is_satisfiable().is_ok());
}

#[test]
fn coefficient_overflow_is_an_error_not_wraparound() {
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let big = i64::MAX / 2;
    // Combining these lower/upper bounds multiplies coefficients past i64.
    p.add_geq(LinExpr::term(big, x).plus_term(-big + 7, y));
    p.add_geq(LinExpr::term(-big + 1, x).plus_term(big - 13, y).plus_const(5));
    p.add_geq(LinExpr::var(y).plus_const(-1));
    p.add_geq(LinExpr::term(-1, y).plus_const(10));
    match p.is_satisfiable() {
        Ok(_) => {} // fine if an exact path avoided the blow-up
        Err(Error::Overflow) => {}
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn empty_and_degenerate_problems() {
    // No variables at all.
    let p = Problem::new();
    assert!(p.is_satisfiable().unwrap());
    assert!(p.sample_solution().unwrap().is_some());

    // Only constant constraints.
    let mut q = Problem::new();
    q.add_geq(LinExpr::constant_expr(0));
    q.add_eq(LinExpr::zero());
    assert!(q.is_satisfiable().unwrap());
    let mut r = Problem::new();
    r.add_eq(LinExpr::constant_expr(3));
    assert!(!r.is_satisfiable().unwrap());

    // A variable with no constraints.
    let mut s = Problem::new();
    let _ = s.add_var("free", VarKind::Input);
    assert!(s.is_satisfiable().unwrap());
    let proj = s.project(&[]).unwrap();
    assert!(proj.is_exact());
}

#[test]
fn many_redundant_constraints_stay_cheap() {
    // 200 parallel copies of the same halfplane: normalization dedup must
    // keep this linear, not quadratic blow-up in FM combinations.
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    for k in 0..200 {
        p.add_geq(LinExpr::var(x).plus_term(1, y).plus_const(-k));
        p.add_geq(LinExpr::term(-1, x).plus_const(1000 + k));
    }
    p.add_geq(LinExpr::var(y).plus_const(-5));
    let mut budget = Budget::new(50_000);
    assert!(p.is_satisfiable_with(&mut budget).unwrap());
}

#[test]
fn deep_equality_chains_terminate() {
    // x0 = 2x1, x1 = 2x2, ...: exercises repeated substitution.
    let mut p = Problem::new();
    let vars: Vec<_> = (0..20)
        .map(|i| p.add_var(format!("x{i}"), VarKind::Input))
        .collect();
    for w in vars.windows(2) {
        p.add_eq(LinExpr::var(w[0]).plus_term(-2, w[1]));
    }
    p.add_geq(LinExpr::var(vars[19]).plus_const(-1)); // x19 >= 1
    assert!(p.is_satisfiable().unwrap());
    let sol = p.sample_solution().unwrap().unwrap();
    assert_eq!(sol[&vars[0]], sol[&vars[19]] << 19);
}

#[test]
fn projection_onto_everything_and_nothing() {
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    p.add_geq(LinExpr::var(x).plus_term(-1, y));
    p.add_geq(LinExpr::var(y).plus_const(-1));

    // Keep everything: the projection is the problem itself (normalized).
    let keep_all = p.project(&[x, y]).unwrap();
    assert!(keep_all.is_exact());
    assert!(keep_all.dark().satisfies(&[3, 2]));
    assert!(!keep_all.dark().satisfies(&[0, 2]));

    // Keep nothing: satisfiability collapses to a constant answer.
    let keep_none = p.project(&[]).unwrap();
    assert!(keep_none.is_exact());
    assert!(!keep_none.dark().is_known_infeasible());
}

#[test]
fn splinter_heavy_problem_resolves_within_budget() {
    // Many inexact pairs at once.
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    let z = p.add_var("z", VarKind::Input);
    p.add_geq(LinExpr::term(5, x).plus_term(-3, y).plus_const(1));
    p.add_geq(LinExpr::term(-5, x).plus_term(3, y).plus_const(1));
    p.add_geq(LinExpr::term(7, y).plus_term(-4, z).plus_const(2));
    p.add_geq(LinExpr::term(-7, y).plus_term(4, z).plus_const(2));
    p.add_geq(LinExpr::var(z).plus_const(-10));
    p.add_geq(LinExpr::term(-1, z).plus_const(100));
    let sat = p.is_satisfiable().unwrap();
    // Cross-check with a witness or brute force.
    let sol = p.sample_solution().unwrap();
    assert_eq!(sat, sol.is_some());
}

#[test]
fn gist_and_implies_survive_budget_pressure() {
    let mut s = Problem::new();
    let x = s.add_var("x", VarKind::Input);
    let mut p = s.clone();
    p.add_geq(LinExpr::var(x).plus_const(-5));
    let mut q = s.clone();
    q.add_geq(LinExpr::var(x).plus_const(-1));
    // Budget too small even for one satisfiability run.
    let mut b = Budget::new(0);
    match omega::implies_with(&p, &q, &mut b) {
        Ok(_) | Err(Error::TooComplex { .. }) => {}
        Err(other) => panic!("unexpected {other:?}"),
    }
}

#[test]
fn dark_shadow_ablation_preserves_answers() {
    use omega::SolverOptions;
    // Correctness must not depend on the dark-shadow fast path — it is
    // purely a performance device. Cross-check on inexact problems.
    let cases: Vec<(i64, i64, i64)> = (2..6)
        .flat_map(|a| (2..6).map(move |b| (a, b, a + b)))
        .collect();
    for (a, b, c) in cases {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::term(a, x).plus_term(-b, y).plus_const(1));
        p.add_geq(LinExpr::term(-a, x).plus_term(b, y).plus_const(c));
        p.add_geq(LinExpr::var(y).plus_const(-1));
        p.add_geq(LinExpr::term(-1, y).plus_const(40));
        let with = p.is_satisfiable().unwrap();
        let mut no_dark = Budget::new(omega::DEFAULT_BUDGET).with_options(SolverOptions {
            dark_shadow: false,
            ..SolverOptions::default()
        });
        let without = p.is_satisfiable_with(&mut no_dark).unwrap();
        assert_eq!(with, without, "({a},{b},{c})");
    }
}

#[test]
fn redundancy_ablation_preserves_projection_semantics() {
    use omega::SolverOptions;
    let mut p = Problem::new();
    let x = p.add_var("x", VarKind::Input);
    let y = p.add_var("y", VarKind::Input);
    p.add_geq(LinExpr::var(x).plus_term(-1, y));
    p.add_geq(LinExpr::var(x).plus_term(-1, y).plus_const(5)); // redundant
    p.add_geq(LinExpr::var(y).plus_const(-1));
    p.add_geq(LinExpr::term(-1, y).plus_const(9));
    let tidy = p.project(&[x]).unwrap();
    let mut raw_budget = Budget::new(omega::DEFAULT_BUDGET).with_options(SolverOptions {
        quick_redundancy: false,
        ..SolverOptions::default()
    });
    let raw = p.project_with(&[x], &mut raw_budget).unwrap();
    for v in -2..15 {
        assert_eq!(
            tidy.dark().satisfies(&[v]),
            raw.dark().satisfies(&[v]),
            "x = {v}"
        );
    }
    assert!(raw.dark().num_constraints() >= tidy.dark().num_constraints());
}
