//! Property tests for the Presburger formula layer: random
//! quantifier-free formulas (and single-level bounded quantifiers) are
//! checked against a direct brute-force evaluator.

use omega::{Constraint, Formula, LinExpr, Problem, VarId, VarKind};
use proptest::prelude::*;

const BOX: i64 = 3;

fn space2() -> (Problem, VarId, VarId) {
    let mut s = Problem::new();
    let x = s.add_var("x", VarKind::Input);
    let y = s.add_var("y", VarKind::Input);
    (s, x, y)
}

/// A random linear atom over (x, y).
#[derive(Debug, Clone)]
struct AtomSpec {
    a: i64,
    b: i64,
    c: i64,
    eq: bool,
}

fn atom_strategy() -> impl Strategy<Value = AtomSpec> {
    (-3i64..=3, -3i64..=3, -5i64..=5, proptest::bool::weighted(0.25)).prop_map(
        |(a, b, c, eq)| AtomSpec { a, b, c, eq },
    )
}

/// A random quantifier-free formula tree (as a serializable spec).
#[derive(Debug, Clone)]
enum Spec {
    Atom(AtomSpec),
    And(Vec<Spec>),
    Or(Vec<Spec>),
    Not(Box<Spec>),
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf = atom_strategy().prop_map(Spec::Atom);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Spec::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Spec::Or),
            inner.prop_map(|s| Spec::Not(Box::new(s))),
        ]
    })
}

fn build(spec: &Spec, x: VarId, y: VarId) -> Formula {
    match spec {
        Spec::Atom(a) => {
            let e = LinExpr::term(a.a, x).plus_term(a.b, y).plus_const(a.c);
            if a.eq {
                Formula::Atom(Constraint::eq(e))
            } else {
                Formula::Atom(Constraint::geq(e))
            }
        }
        Spec::And(fs) => Formula::and(fs.iter().map(|f| build(f, x, y)).collect()),
        Spec::Or(fs) => Formula::or(fs.iter().map(|f| build(f, x, y)).collect()),
        Spec::Not(f) => Formula::not(build(f, x, y)),
    }
}

fn eval(spec: &Spec, xv: i64, yv: i64) -> bool {
    match spec {
        Spec::Atom(a) => {
            let v = a.a * xv + a.b * yv + a.c;
            if a.eq {
                v == 0
            } else {
                v >= 0
            }
        }
        Spec::And(fs) => fs.iter().all(|f| eval(f, xv, yv)),
        Spec::Or(fs) => fs.iter().any(|f| eval(f, xv, yv)),
        Spec::Not(f) => !eval(f, xv, yv),
    }
}

/// The formula `lo <= v <= hi` as atoms.
fn bounds(v: VarId, lo: i64, hi: i64) -> Formula {
    Formula::and(vec![
        Formula::geq0(LinExpr::var(v).plus_const(-lo)),
        Formula::geq0(LinExpr::term(-1, v).plus_const(hi)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Satisfiability of a box-bounded quantifier-free formula agrees with
    /// brute force.
    #[test]
    fn quantifier_free_sat(spec in spec_strategy()) {
        let (s, x, y) = space2();
        let f = Formula::and(vec![
            bounds(x, -BOX, BOX),
            bounds(y, -BOX, BOX),
            build(&spec, x, y),
        ]);
        let mut budget = omega::Budget::default();
        let solved = f.is_satisfiable(&s, &mut budget).unwrap();
        let brute = (-BOX..=BOX)
            .any(|xv| (-BOX..=BOX).any(|yv| eval(&spec, xv, yv)));
        prop_assert_eq!(solved, brute, "{:?}", spec);
    }

    /// `∃y (bounded). f` agrees with brute force over x.
    #[test]
    fn bounded_existential(spec in spec_strategy()) {
        let (s, x, y) = space2();
        let f = Formula::and(vec![
            bounds(x, -BOX, BOX),
            Formula::exists(
                vec![y],
                Formula::and(vec![bounds(y, -BOX, BOX), build(&spec, x, y)]),
            ),
        ]);
        let mut budget = omega::Budget::default();
        let solved = f.is_satisfiable(&s, &mut budget).unwrap();
        let brute = (-BOX..=BOX)
            .any(|xv| (-BOX..=BOX).any(|yv| eval(&spec, xv, yv)));
        prop_assert_eq!(solved, brute, "{:?}", spec);
    }

    /// `∀x (bounded). ∃y (bounded). f` — the paper's query shape — agrees
    /// with brute force.
    #[test]
    fn forall_exists_shape(spec in spec_strategy()) {
        let (s, x, y) = space2();
        let inner = Formula::exists(
            vec![y],
            Formula::and(vec![bounds(y, -BOX, BOX), build(&spec, x, y)]),
        );
        // ∀x. (-BOX <= x <= BOX) ⇒ inner
        let f = Formula::forall(vec![x], bounds(x, -BOX, BOX).implies(inner));
        let mut budget = omega::Budget::default();
        // Deeply alternating formulas may hit the documented complexity
        // guard (negating a union whose pieces share wildcards needs full
        // Presburger QE); those conservative failures are skipped.
        let solved = match f.is_valid(&s, &mut budget) {
            Ok(v) => v,
            Err(omega::Error::TooComplex { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        let brute = (-BOX..=BOX)
            .all(|xv| (-BOX..=BOX).any(|yv| eval(&spec, xv, yv)));
        prop_assert_eq!(solved, brute, "{:?}", spec);
    }

    /// Validity is the dual of the negation's satisfiability.
    #[test]
    fn valid_iff_negation_unsat(spec in spec_strategy()) {
        let (s, x, y) = space2();
        let body = bounds(x, -BOX, BOX)
            .implies(bounds(y, -BOX, BOX).implies(build(&spec, x, y)));
        let mut budget = omega::Budget::default();
        let valid = body.is_valid(&s, &mut budget).unwrap();
        let neg_sat = Formula::not(body)
            .is_satisfiable(&s, &mut budget)
            .unwrap();
        prop_assert_eq!(valid, !neg_sat);
    }
}
