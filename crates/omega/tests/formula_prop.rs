//! Property tests for the Presburger formula layer: random
//! quantifier-free formulas (and single-level bounded quantifiers) are
//! checked against a direct brute-force evaluator, on the in-repo
//! `harness` property framework.

use harness::prop::{check_value, check_with, Config, Shrink};
use harness::{prop_assert_eq, Rng};
use omega::{Constraint, Formula, LinExpr, Problem, VarId, VarKind};

const BOX: i64 = 3;

fn space2() -> (Problem, VarId, VarId) {
    let mut s = Problem::new();
    let x = s.add_var("x", VarKind::Input);
    let y = s.add_var("y", VarKind::Input);
    (s, x, y)
}

/// A random linear atom over (x, y).
#[derive(Debug, Clone)]
struct AtomSpec {
    a: i64,
    b: i64,
    c: i64,
    eq: bool,
}

/// A random quantifier-free formula tree (as a serializable spec).
#[derive(Debug, Clone)]
enum Spec {
    Atom(AtomSpec),
    And(Vec<Spec>),
    Or(Vec<Spec>),
    Not(Box<Spec>),
}

fn gen_atom(rng: &mut Rng) -> AtomSpec {
    AtomSpec {
        a: rng.gen_range_i64(-3..=3),
        b: rng.gen_range_i64(-3..=3),
        c: rng.gen_range_i64(-5..=5),
        eq: rng.gen_bool(0.25),
    }
}

/// Mirrors the old `prop_recursive(3, …)` distribution: at most 3
/// levels of connectives above the atoms.
fn gen_spec(rng: &mut Rng, depth: u32) -> Spec {
    if depth == 0 || rng.gen_bool(0.4) {
        return Spec::Atom(gen_atom(rng));
    }
    let n = rng.gen_range_usize(1..=2);
    match rng.gen_range_usize(0..=2) {
        0 => Spec::And((0..n).map(|_| gen_spec(rng, depth - 1)).collect()),
        1 => Spec::Or((0..n).map(|_| gen_spec(rng, depth - 1)).collect()),
        _ => Spec::Not(Box::new(gen_spec(rng, depth - 1))),
    }
}

fn shrink_spec(spec: &Spec) -> Vec<Spec> {
    match spec {
        Spec::Atom(a) => (a.a, a.b, a.c, a.eq)
            .shrink()
            .into_iter()
            .map(|(a, b, c, eq)| Spec::Atom(AtomSpec { a, b, c, eq }))
            .collect(),
        Spec::And(fs) => {
            let mut out = fs.clone();
            out.extend(
                harness::prop::shrink_vec(fs, shrink_spec, 1)
                    .into_iter()
                    .map(Spec::And),
            );
            out
        }
        Spec::Or(fs) => {
            let mut out = fs.clone();
            out.extend(
                harness::prop::shrink_vec(fs, shrink_spec, 1)
                    .into_iter()
                    .map(Spec::Or),
            );
            out
        }
        Spec::Not(f) => {
            let mut out = vec![(**f).clone()];
            out.extend(
                shrink_spec(f)
                    .into_iter()
                    .map(|s| Spec::Not(Box::new(s))),
            );
            out
        }
    }
}

fn build(spec: &Spec, x: VarId, y: VarId) -> Formula {
    match spec {
        Spec::Atom(a) => {
            let e = LinExpr::term(a.a, x).plus_term(a.b, y).plus_const(a.c);
            if a.eq {
                Formula::Atom(Constraint::eq(e))
            } else {
                Formula::Atom(Constraint::geq(e))
            }
        }
        Spec::And(fs) => Formula::and(fs.iter().map(|f| build(f, x, y)).collect()),
        Spec::Or(fs) => Formula::or(fs.iter().map(|f| build(f, x, y)).collect()),
        Spec::Not(f) => Formula::not(build(f, x, y)),
    }
}

fn eval(spec: &Spec, xv: i64, yv: i64) -> bool {
    match spec {
        Spec::Atom(a) => {
            let v = a.a * xv + a.b * yv + a.c;
            if a.eq {
                v == 0
            } else {
                v >= 0
            }
        }
        Spec::And(fs) => fs.iter().all(|f| eval(f, xv, yv)),
        Spec::Or(fs) => fs.iter().any(|f| eval(f, xv, yv)),
        Spec::Not(f) => !eval(f, xv, yv),
    }
}

/// The formula `lo <= v <= hi` as atoms.
fn bounds(v: VarId, lo: i64, hi: i64) -> Formula {
    Formula::and(vec![
        Formula::geq0(LinExpr::var(v).plus_const(-lo)),
        Formula::geq0(LinExpr::term(-1, v).plus_const(hi)),
    ])
}

// ---- the properties, as replayable functions ----

/// Satisfiability of a box-bounded quantifier-free formula agrees with
/// brute force.
fn prop_quantifier_free_sat(spec: &Spec) -> Result<(), String> {
    let (s, x, y) = space2();
    let f = Formula::and(vec![
        bounds(x, -BOX, BOX),
        bounds(y, -BOX, BOX),
        build(spec, x, y),
    ]);
    let mut budget = omega::Budget::default();
    let solved = f.is_satisfiable(&s, &mut budget).unwrap();
    let brute = (-BOX..=BOX).any(|xv| (-BOX..=BOX).any(|yv| eval(spec, xv, yv)));
    prop_assert_eq!(solved, brute, "{:?}", spec);
    Ok(())
}

/// `∃y (bounded). f` agrees with brute force over x.
fn prop_bounded_existential(spec: &Spec) -> Result<(), String> {
    let (s, x, y) = space2();
    let f = Formula::and(vec![
        bounds(x, -BOX, BOX),
        Formula::exists(
            vec![y],
            Formula::and(vec![bounds(y, -BOX, BOX), build(spec, x, y)]),
        ),
    ]);
    let mut budget = omega::Budget::default();
    let solved = f.is_satisfiable(&s, &mut budget).unwrap();
    let brute = (-BOX..=BOX).any(|xv| (-BOX..=BOX).any(|yv| eval(spec, xv, yv)));
    prop_assert_eq!(solved, brute, "{:?}", spec);
    Ok(())
}

/// `∀x (bounded). ∃y (bounded). f` — the paper's query shape — agrees
/// with brute force.
fn prop_forall_exists_shape(spec: &Spec) -> Result<(), String> {
    let (s, x, y) = space2();
    let inner = Formula::exists(
        vec![y],
        Formula::and(vec![bounds(y, -BOX, BOX), build(spec, x, y)]),
    );
    // ∀x. (-BOX <= x <= BOX) ⇒ inner
    let f = Formula::forall(vec![x], bounds(x, -BOX, BOX).implies(inner));
    let mut budget = omega::Budget::default();
    // Deeply alternating formulas may hit the documented complexity
    // guard (negating a union whose pieces share wildcards needs full
    // Presburger QE); those conservative failures are skipped.
    let solved = match f.is_valid(&s, &mut budget) {
        Ok(v) => v,
        Err(omega::Error::TooComplex { .. }) => return Ok(()),
        Err(e) => return Err(format!("{e}")),
    };
    let brute = (-BOX..=BOX).all(|xv| (-BOX..=BOX).any(|yv| eval(spec, xv, yv)));
    prop_assert_eq!(solved, brute, "{:?}", spec);
    Ok(())
}

/// Validity is the dual of the negation's satisfiability.
fn prop_valid_iff_negation_unsat(spec: &Spec) -> Result<(), String> {
    let (s, x, y) = space2();
    let body = bounds(x, -BOX, BOX).implies(bounds(y, -BOX, BOX).implies(build(spec, x, y)));
    let mut budget = omega::Budget::default();
    let valid = body.is_valid(&s, &mut budget).unwrap();
    let neg_sat = Formula::not(body).is_satisfiable(&s, &mut budget).unwrap();
    prop_assert_eq!(valid, !neg_sat);
    Ok(())
}

// ---- random-case drivers ----

fn run(property: impl Fn(&Spec) -> Result<(), String>) {
    check_with(
        &Config::with_cases(192),
        |rng| gen_spec(rng, 3),
        shrink_spec,
        property,
    );
}

#[test]
fn quantifier_free_sat() {
    run(prop_quantifier_free_sat);
}

#[test]
fn bounded_existential() {
    run(prop_bounded_existential);
}

#[test]
fn forall_exists_shape() {
    run(prop_forall_exists_shape);
}

#[test]
fn valid_iff_negation_unsat() {
    run(prop_valid_iff_negation_unsat);
}

// ---- named regressions, ported from the historical proptest seed
// files (`formula_prop.proptest-regressions`) before they were deleted.
// Each recorded minimal witness is replayed through all four
// properties. ----

fn all_props(spec: &Spec) -> Result<(), String> {
    prop_quantifier_free_sat(spec)?;
    prop_bounded_existential(spec)?;
    prop_forall_exists_shape(spec)?;
    prop_valid_iff_negation_unsat(spec)
}

/// `cc a89ac490…`: shrank to `And([Atom { a: 1, b: 2, c: 0, eq: true }])`.
#[test]
fn regression_single_eq_atom_conjunction() {
    let spec = Spec::And(vec![Spec::Atom(AtomSpec {
        a: 1,
        b: 2,
        c: 0,
        eq: true,
    })]);
    check_value(&spec, all_props);
}

/// `cc 29fa8e06…`: shrank to `And([Atom { a: -3, b: -2, c: 0, eq: true }])`.
#[test]
fn regression_negative_coefficient_eq_atom() {
    let spec = Spec::And(vec![Spec::Atom(AtomSpec {
        a: -3,
        b: -2,
        c: 0,
        eq: true,
    })]);
    check_value(&spec, all_props);
}
