//! Exact projection: the integer shadow of a problem on a subset of its
//! variables, reported as dark shadow + splinters + real shadow (§3).

use crate::cache::{self, CachedValue, MemoKey};
use crate::canon::{canonicalize, CanonKey, Op};
use crate::fourier::Elimination;
use crate::normalize::Outcome;
use crate::problem::{Budget, Problem};
use crate::var::VarId;
use crate::Result;

/// The result of projecting a problem onto a set of protected variables.
///
/// Writing `S` for the original problem, the paper's decomposition is
///
/// ```text
/// π(S) = S₀ ∪ S₁ ∪ … ∪ Sₚ ⊆ T
/// ```
///
/// where `S₀` is the **dark shadow** ([`Projection::dark`]), the `Sᵢ` are
/// the **splinters** ([`Projection::splinters`]), and `T` is the **real
/// shadow** ([`Projection::real`]). When no splintering occurred
/// ([`Projection::is_exact`]), `S₀` alone *is* the projection and equals
/// `T`'s integer points.
#[derive(Debug, Clone)]
pub struct Projection {
    pub(crate) dark: Problem,
    pub(crate) splinters: Vec<Problem>,
    pub(crate) real: Problem,
    pub(crate) exact: bool,
}

impl Projection {
    /// `S₀`: every integer point of the dark shadow lifts to a solution of
    /// the original problem.
    pub fn dark(&self) -> &Problem {
        &self.dark
    }

    /// `S₁…Sₚ`: the splinter problems (already fully projected).
    pub fn splinters(&self) -> &[Problem] {
        &self.splinters
    }

    /// `T`: the real shadow — a superset of the projection that may contain
    /// points with only real (non-integer) witnesses.
    pub fn real(&self) -> &Problem {
        &self.real
    }

    /// True when `dark()` alone is the exact projection.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// All pieces of the exact projection: the dark shadow followed by the
    /// splinters.
    pub fn problems(&self) -> impl Iterator<Item = &Problem> {
        std::iter::once(&self.dark).chain(self.splinters.iter())
    }

    /// Consumes the projection, returning the union pieces.
    pub fn into_problems(self) -> Vec<Problem> {
        let mut v = vec![self.dark];
        v.extend(self.splinters);
        v
    }

    /// Whether any piece of the projection is satisfiable.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_satisfiable(&self) -> Result<bool> {
        for p in self.problems() {
            if p.is_satisfiable()? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl Problem {
    /// Projects onto `keep`: the result constrains only those variables
    /// (plus symbolic constants listed in `keep`), with the same integer
    /// solutions for them as the original problem.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (overflow, exhausted budget).
    ///
    /// # Examples
    ///
    /// The paper's example: projecting `{0 ≤ a ≤ 5, b < a ≤ 5b}` onto `a`
    /// gives `{2 ≤ a ≤ 5}`.
    ///
    /// ```
    /// use omega::{LinExpr, Problem, VarKind};
    ///
    /// let mut p = Problem::new();
    /// let a = p.add_var("a", VarKind::Input);
    /// let b = p.add_var("b", VarKind::Input);
    /// p.add_geq(LinExpr::var(a));
    /// p.add_geq(LinExpr::term(-1, a).plus_const(5));
    /// p.add_geq(LinExpr::var(a).plus_term(-1, b).plus_const(-1));
    /// p.add_geq(LinExpr::term(5, b).plus_term(-1, a));
    /// let proj = p.project(&[a])?;
    /// assert!(proj.is_exact());
    /// let shadow = proj.dark();
    /// assert!(shadow.satisfies(&[2]));
    /// assert!(shadow.satisfies(&[5]));
    /// assert!(!shadow.satisfies(&[1]));
    /// assert!(!shadow.satisfies(&[6]));
    /// # Ok::<(), omega::Error>(())
    /// ```
    pub fn project(&self, keep: &[VarId]) -> Result<Projection> {
        self.project_with(keep, &mut Budget::default())
    }

    /// Projection with an explicit work budget.
    ///
    /// # Errors
    ///
    /// See [`project`](Problem::project).
    pub fn project_with(&self, keep: &[VarId], budget: &mut Budget) -> Result<Projection> {
        let mut p = self.clone();
        for v in p.var_ids().collect::<Vec<_>>() {
            p.set_protected(v, false);
        }
        for &v in keep {
            p.set_protected(v, true);
        }
        if let Some(cache) = budget.active_cache() {
            // Protected flags live in the variable table, so the keep-set
            // is part of the key. The projection is computed on the
            // canonical problem itself, making the cached value a pure
            // function of the key.
            cache.note_full_canon();
            let cp = canonicalize(&p);
            let key = MemoKey::Full(CanonKey::new(Op::Project, &cp));
            return cache::with_memo(
                budget,
                cache,
                key,
                |v: &Projection| CachedValue::Project(v.clone()),
                |v| match v {
                    CachedValue::Project(proj) => Some(proj),
                    _ => None,
                },
                move |b, _| project_prepared(cp, b),
            );
        }
        project_prepared(p, budget)
    }

    /// Projects *away* the listed variables, keeping everything else
    /// (the paper's `π¬x`).
    ///
    /// # Errors
    ///
    /// See [`project`](Problem::project).
    pub fn project_away(&self, remove: &[VarId]) -> Result<Projection> {
        let keep: Vec<VarId> = self
            .var_ids()
            .filter(|v| {
                !remove.contains(v)
                    && !self.is_dead(*v)
                    && self.var_info(*v).kind() != crate::VarKind::Wildcard
            })
            .collect();
        self.project(&keep)
    }
}

const MAX_DEPTH: usize = 64;

/// Projection body, once protected flags are set on `p`. The elimination
/// work runs on the dense tableau kernel or the interned-row pipeline per
/// [`SolverOptions::dense_kernel`](crate::SolverOptions::dense_kernel);
/// the post-processing below is shared and the results are identical.
pub(crate) fn project_prepared(p: Problem, budget: &mut Budget) -> Result<Projection> {
    let parts = if budget.options().dense_kernel {
        crate::tableau::project_parts(&p, budget)?
    } else {
        let real = project_real(p.clone(), budget)?;
        let mut dark_chain = None;
        let mut splinters = Vec::new();
        let mut exact = true;
        project_core(p, budget, &mut dark_chain, &mut splinters, &mut exact, 0)?;
        let dark = dark_chain.expect("projection produces a dark shadow");
        (real, dark, splinters, exact)
    };
    finish_projection(parts, budget)
}

/// Projection resumed from a base-tableau checkpoint: the elimination
/// prefix comes from the recorded snapshot (see
/// [`Checkpoint`](crate::tableau::Checkpoint)), the post-processing is
/// shared with [`project_prepared`], so the result is bit-identical to
/// the from-scratch solve of the same merged problem.
pub(crate) fn project_resumed(
    cp: &crate::tableau::Checkpoint,
    rows: &[crate::tableau::DeltaRow],
    budget: &mut Budget,
) -> Result<Projection> {
    let parts = crate::tableau::resume_project_parts(cp, rows, budget)?;
    finish_projection(parts, budget)
}

/// The post-processing shared by every projection path: quick redundancy
/// removal and pinned-variable demotion on the dark shadow and splinters.
fn finish_projection(
    (real, mut dark, mut splinters, exact): (Problem, Problem, Vec<Problem>, bool),
    budget: &mut Budget,
) -> Result<Projection> {
    if budget.options().quick_redundancy {
        dark.remove_redundant_quick();
    }
    demote_pinned(&mut dark);
    for s in &mut splinters {
        if budget.options().quick_redundancy {
            s.remove_redundant_quick();
        }
        demote_pinned(s);
    }
    Ok(Projection {
        dark,
        splinters,
        real,
        exact,
    })
}

/// Pinned variables of a projection result are existentials: present them
/// as wildcards so callers treat them uniformly.
fn demote_pinned(p: &mut Problem) {
    if !p.vars.iter().any(|v| v.pinned && !v.dead) {
        return;
    }
    for v in p.vars_mut() {
        if v.pinned && !v.dead {
            v.kind = crate::VarKind::Wildcard;
            v.pinned = false;
        }
    }
}

/// Eliminates all unprotected variables; the chain of dark shadows lands in
/// `dark_out`, fully projected splinters accumulate in `splinters`.
fn project_core(
    mut p: Problem,
    budget: &mut Budget,
    dark_out: &mut Option<Problem>,
    splinters: &mut Vec<Problem>,
    exact: &mut bool,
    depth: usize,
) -> Result<()> {
    budget.spend(1)?;
    if depth > MAX_DEPTH {
        return Err(crate::Error::TooComplex { budget: MAX_DEPTH });
    }
    loop {
        if p.eliminate_equalities(budget)? == Outcome::Infeasible {
            store_dark(dark_out, p, depth);
            return Ok(());
        }
        let Some((v, _)) = p.choose_elimination_var() else {
            store_dark(dark_out, p, depth);
            return Ok(());
        };
        match p.fm_eliminate(v, budget)? {
            Elimination::Exact(q) => p = q,
            Elimination::Approx {
                dark,
                real: _,
                splinters: parts,
            } => {
                *exact = false;
                // Continue the dark chain.
                project_core(dark, budget, dark_out, splinters, exact, depth + 1)?;
                // Each splinter is projected fully; all of its pieces are
                // additional members of the union.
                for s in parts {
                    let mut sub_dark = None;
                    project_core(s, budget, &mut sub_dark, splinters, exact, depth + 1)?;
                    if let Some(d) = sub_dark {
                        if !d.is_known_infeasible() {
                            splinters.push(d);
                        }
                    }
                }
                return Ok(());
            }
        }
    }
}

/// Stores the terminal problem of the dark chain. The chain is linear
/// (depth tracking only guards recursion), so the first store at the
/// outermost pending slot wins.
fn store_dark(dark_out: &mut Option<Problem>, p: Problem, _depth: usize) {
    if dark_out.is_none() {
        *dark_out = Some(p);
    }
}

/// Pure real-shadow projection: `T` in the paper's notation.
fn project_real(mut p: Problem, budget: &mut Budget) -> Result<Problem> {
    loop {
        if p.eliminate_equalities(budget)? == Outcome::Infeasible {
            return Ok(p);
        }
        let Some((v, _)) = p.choose_elimination_var() else {
            p.remove_redundant_quick();
            return Ok(p);
        };
        match p.fm_eliminate(v, budget)? {
            Elimination::Exact(q) => p = q,
            Elimination::Approx { real, .. } => p = real,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    #[test]
    fn exact_projection_of_triangle() {
        // 1 <= i <= j <= 10, project onto j: 1 <= j <= 10.
        let mut p = Problem::new();
        let i = p.add_var("i", VarKind::Input);
        let j = p.add_var("j", VarKind::Input);
        p.add_geq(LinExpr::var(i).plus_const(-1));
        p.add_geq(LinExpr::var(j).plus_term(-1, i));
        p.add_geq(LinExpr::term(-1, j).plus_const(10));
        let proj = p.project(&[j]).unwrap();
        assert!(proj.is_exact());
        let d = proj.dark();
        assert!(d.satisfies(&[0, 1]));
        assert!(d.satisfies(&[0, 10]));
        assert!(!d.satisfies(&[0, 0]));
        assert!(!d.satisfies(&[0, 11]));
    }

    #[test]
    fn projection_keeps_symbolic_constraints() {
        // 1 <= x <= n, project away x: requires n >= 1.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let n = p.add_var("n", VarKind::Symbolic);
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::var(n).plus_term(-1, x));
        let proj = p.project_away(&[x]).unwrap();
        assert!(proj.is_exact());
        assert!(proj.dark().satisfies(&[0, 1]));
        assert!(!proj.dark().satisfies(&[0, 0]));
    }

    #[test]
    fn projection_with_equalities_substitutes() {
        // x = 2y, 0 <= x <= 10: projecting onto y gives 0 <= y <= 5.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::var(x).plus_term(-2, y));
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        let proj = p.project(&[y]).unwrap();
        assert!(proj.is_exact());
        let d = proj.dark();
        for yv in -3..=8 {
            assert_eq!(d.satisfies(&[0, yv]), (0..=5).contains(&yv), "y = {yv}");
        }
    }

    #[test]
    fn projection_onto_even_numbers_splinters_or_strides() {
        // x = 2y (y unbounded) projected onto x: x even. The equality
        // forces a wildcard/stride representation; check membership via
        // satisfiability of the union with x pinned.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::var(x).plus_term(-2, y));
        p.add_geq(LinExpr::var(y)); // y >= 0 so x >= 0
        p.add_geq(LinExpr::term(-1, y).plus_const(50));
        let proj = p.project(&[x]).unwrap();
        for xv in 0..=12 {
            let member = proj.problems().any(|piece| {
                let mut q = piece.clone();
                let xq = q.find_var("x").unwrap();
                q.add_eq(LinExpr::var(xq).plus_const(-xv));
                q.is_satisfiable().unwrap()
            });
            assert_eq!(member, xv % 2 == 0, "x = {xv}");
        }
    }

    #[test]
    fn real_shadow_is_superset() {
        // Inexact case: 2x <= y <= 3x with, say, 4 <= y <= 5... pick a
        // problem that splinters when eliminating x: 3x >= y, 2x <= y - 1.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::term(3, x).plus_term(-1, y));
        p.add_geq(LinExpr::term(-2, x).plus_term(1, y).plus_const(-1));
        p.add_geq(LinExpr::var(y));
        p.add_geq(LinExpr::term(-1, y).plus_const(20));
        let proj = p.project(&[y]).unwrap();
        // Any y in the union must satisfy the real shadow too.
        for yv in 0..=20 {
            let in_union = proj.problems().any(|piece| {
                let mut q = piece.clone();
                let yq = q.find_var("y").unwrap();
                q.add_eq(LinExpr::var(yq).plus_const(-yv));
                q.is_satisfiable().unwrap()
            });
            if in_union {
                let mut r = proj.real().clone();
                let yr = r.find_var("y").unwrap();
                r.add_eq(LinExpr::var(yr).plus_const(-yv));
                assert!(r.is_satisfiable().unwrap(), "real shadow missing y={yv}");
            }
        }
    }

    #[test]
    fn projection_union_matches_brute_force() {
        // Exhaustive check of the union semantics on an inexact problem.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        // 2x <= 3y <= 2x + 2, 0 <= x <= 15 - brute force over y.
        p.add_geq(LinExpr::term(3, y).plus_term(-2, x));
        p.add_geq(LinExpr::term(2, x).plus_term(-3, y).plus_const(2));
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::term(-1, x).plus_const(15));
        let proj = p.project(&[y]).unwrap();
        for yv in -2..=13 {
            let brute = (0..=15).any(|xv| p.satisfies(&[xv, yv]));
            let union = proj.problems().any(|piece| {
                let mut q = piece.clone();
                let yq = q.find_var("y").unwrap();
                q.add_eq(LinExpr::var(yq).plus_const(-yv));
                q.is_satisfiable().unwrap()
            });
            assert_eq!(union, brute, "y = {yv}");
        }
    }
}
