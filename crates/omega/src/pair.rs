//! Per-pair solver contexts: canonicalize a dependence pair's base
//! problem **once**, then express each derived query (ordering cases,
//! distance probes, projections for covering/kill tests) as a small
//! constraint *delta* against that base.
//!
//! The memo key for a delta query is `(interned base id, canonical
//! delta)`, so a lookup normalizes only the handful of added constraints
//! instead of re-canonicalizing the whole conjunction. This is sound
//! because canonicalization is per-constraint-local: the canonical form
//! of `base ∧ delta` is exactly the sorted merge of the base's canonical
//! constraint lists with the delta's (see [`crate::canon`]), so the
//! solver runs on the very same canonical problem either way and cached
//! values — and their recorded budget costs — are bit-identical to the
//! full-key path.
//!
//! A base is only eligible for delta keying when it is all-black and its
//! variable table carries no protected/dead/pinned flags (true for every
//! problem dependence analysis builds from scratch); otherwise every
//! query transparently falls back to materializing the full problem,
//! which preserves cache-off behavior exactly.

use std::sync::Arc;

use crate::cache::{self, BaseForm, CachedValue, DeltaKey, MemoKey, SolverCache};
use crate::canon::{canonicalize, canonicalize_delta, merge_sorted, Op};
use crate::linexpr::{Color, Constraint, LinExpr};
use crate::problem::{Budget, Problem};
use crate::project::{project_prepared, project_resumed, Projection};
use crate::sat::solve_sat;
use crate::symbol::Name;
use crate::tableau;
use crate::var::{VarId, VarKind};
use crate::Result;

/// The operations shared by [`Problem`] and [`DeltaProblem`]: building
/// code (iteration spaces, ordering constraints, distance probes) is
/// written against this trait so it can target either a materialized
/// problem or a cheap delta over a [`PairContext`] base.
pub trait ProblemLike: Clone {
    /// Adds a variable and returns its id.
    fn add_var(&mut self, name: impl AsRef<str>, kind: VarKind) -> VarId;

    /// Number of variables in the problem (base plus delta).
    fn num_vars(&self) -> usize;

    /// Adds the equality `expr == 0`.
    fn add_eq(&mut self, expr: LinExpr);

    /// Adds the inequality `expr >= 0`.
    fn add_geq(&mut self, expr: LinExpr);

    /// Adds `lhs >= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    fn constrain_ge(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.add_geq(lhs.combine(1, -1, rhs)?);
        Ok(())
    }

    /// Adds `lhs <= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    fn constrain_le(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.add_geq(rhs.combine(1, -1, lhs)?);
        Ok(())
    }

    /// Adds `lhs < rhs` (i.e. `rhs - lhs - 1 >= 0`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    fn constrain_lt(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        let mut e = rhs.combine(1, -1, lhs)?;
        e.add_constant(-1)?;
        self.add_geq(e);
        Ok(())
    }

    /// Adds `lhs == rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    fn constrain_eq(&mut self, lhs: &LinExpr, rhs: &LinExpr) -> Result<()> {
        self.add_eq(lhs.combine(1, -1, rhs)?);
        Ok(())
    }

    /// Integer satisfiability with an explicit work budget.
    ///
    /// # Errors
    ///
    /// See [`Problem::is_satisfiable`].
    fn is_satisfiable_with(&self, budget: &mut Budget) -> Result<bool>;

    /// Exact projection onto `keep` with an explicit work budget.
    ///
    /// # Errors
    ///
    /// See [`Problem::project`].
    fn project_with(&self, keep: &[VarId], budget: &mut Budget) -> Result<Projection>;

    /// Materializes the conjunction as a standalone [`Problem`].
    fn to_problem(&self) -> Problem;
}

impl ProblemLike for Problem {
    fn add_var(&mut self, name: impl AsRef<str>, kind: VarKind) -> VarId {
        Problem::add_var(self, name, kind)
    }

    fn num_vars(&self) -> usize {
        Problem::num_vars(self)
    }

    fn add_eq(&mut self, expr: LinExpr) {
        Problem::add_eq(self, expr);
    }

    fn add_geq(&mut self, expr: LinExpr) {
        Problem::add_geq(self, expr);
    }

    fn is_satisfiable_with(&self, budget: &mut Budget) -> Result<bool> {
        Problem::is_satisfiable_with(self, budget)
    }

    fn project_with(&self, keep: &[VarId], budget: &mut Budget) -> Result<Projection> {
        Problem::project_with(self, keep, budget)
    }

    fn to_problem(&self) -> Problem {
        self.clone()
    }
}

/// A dependence pair's shared base problem, canonicalized at most once.
///
/// Derive per-query [`DeltaProblem`]s with [`PairContext::derive`]; each
/// query then hits the memo cache under a `(base id, delta)` key without
/// re-normalizing the base's constraints.
///
/// Cloning is cheap (the base is behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omega::{Budget, LinExpr, PairContext, Problem, ProblemLike, SolverCache, VarKind};
///
/// let mut base = Problem::new();
/// let i = base.add_var("i", VarKind::Input);
/// base.add_geq(LinExpr::var(i).plus_const(-1)); // i >= 1
///
/// let cache = Arc::new(SolverCache::new());
/// let mut budget = Budget::default().with_cache(cache.clone());
/// let ctx = PairContext::new(base, &budget);
///
/// let mut q = ctx.derive();
/// q.constrain_le(&LinExpr::var(i), &LinExpr::constant_expr(0))?; // i <= 0
/// assert!(!q.is_satisfiable_with(&mut budget)?);
/// // The base was canonicalized once, the query only its delta.
/// assert_eq!(cache.stats().full_canons, 1);
/// assert_eq!(cache.stats().delta_canons, 1);
/// # Ok::<(), omega::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PairContext {
    inner: Arc<PairInner>,
}

#[derive(Debug)]
struct PairInner {
    base: Problem,
    cached: Option<CachedBase>,
}

#[derive(Debug)]
struct CachedBase {
    cache: Arc<SolverCache>,
    /// The canonical form of `base` (variable table unchanged, constraint
    /// lists GCD-reduced, sorted, deduplicated).
    canon: Problem,
    /// Interned id of `canon` within `cache`.
    id: u64,
}

impl PairContext {
    /// Wraps `base` as a pair context. When `budget` carries an active
    /// memo cache and the base is eligible (all constraints black, no
    /// variable flags set), the base is canonicalized now — once — and
    /// interned; otherwise derived queries transparently materialize and
    /// take the classic full-canonicalization path.
    pub fn new(base: Problem, budget: &Budget) -> Self {
        let cached = budget.active_cache().and_then(|cache| {
            if !delta_eligible(&base) {
                return None;
            }
            cache.note_full_canon();
            let canon = canonicalize(&base);
            let form = BaseForm {
                known_infeasible: canon.known_infeasible,
                vars: canon.vars.iter().map(|v| (v.name, v.kind)).collect(),
                eqs: canon.eqs.clone(),
                geqs: canon.geqs.clone(),
            };
            let id = cache.intern_base(&form);
            Some(CachedBase { cache, canon, id })
        });
        PairContext {
            inner: Arc::new(PairInner { base, cached }),
        }
    }

    /// The base problem this context wraps.
    pub fn base(&self) -> &Problem {
        &self.inner.base
    }

    /// Whether queries derived from this context use delta keys (a cache
    /// was attached and the base was eligible).
    pub fn is_delta_keyed(&self) -> bool {
        self.inner.cached.is_some()
    }

    /// Starts an empty delta over the base.
    pub fn derive(&self) -> DeltaProblem {
        DeltaProblem {
            ctx: self.clone(),
            vars: Vec::new(),
            eqs: Vec::new(),
            geqs: Vec::new(),
        }
    }
}

/// A base is delta-keyable only when solving it is invariant under the
/// preparation the sat/project entry points perform: all-black (blacken
/// is a no-op) and flag-free (clearing protected is a no-op, and the
/// interned [`BaseForm`] needs no flag columns).
fn delta_eligible(base: &Problem) -> bool {
    base.vars
        .iter()
        .all(|v| !v.protected && !v.dead && !v.pinned)
        && base
            .eqs
            .iter()
            .chain(base.geqs.iter())
            .all(|c| c.color() == Color::Black)
}

/// A query problem expressed as `base ∧ delta`: extra variables and
/// constraints layered over a [`PairContext`] base.
///
/// Implements [`ProblemLike`], so the same building code serves both the
/// delta path and plain problems. Satisfiability and projection consult
/// the memo cache under a delta key when the context's cache is the one
/// active on the query budget; in every other configuration the delta is
/// materialized with [`ProblemLike::to_problem`] and behaves exactly like
/// hand-building the problem.
#[derive(Debug, Clone)]
pub struct DeltaProblem {
    ctx: PairContext,
    vars: Vec<(Name, VarKind)>,
    eqs: Vec<Constraint>,
    geqs: Vec<Constraint>,
}

impl DeltaProblem {
    /// The cached base, but only when it is usable with `budget` (same
    /// cache attached and enabled).
    fn active_base(&self, budget: &Budget) -> Option<(&CachedBase, Arc<SolverCache>)> {
        let cb = self.ctx.inner.cached.as_ref()?;
        let active = budget.active_cache()?;
        Arc::ptr_eq(&cb.cache, &active).then_some((cb, active))
    }

    /// Cheap delta-side screen for checkpoint resume, checked *before* a
    /// checkpoint is recorded: a delta that adds variables, or one with a
    /// genuinely new equality (not a duplicate of a base equality), can
    /// never resume cleanly — see `Checkpoint::replay_delta` — so
    /// recording a checkpoint on its account would be wasted setup work.
    fn resume_plausible(cb: &CachedBase, vars: &[(Name, VarKind)], eqs: &[Constraint]) -> bool {
        use std::cmp::Ordering;
        if !vars.is_empty() {
            return false;
        }
        let base = &cb.canon.eqs;
        let mut b = 0usize;
        for d in eqs {
            while b < base.len()
                && crate::canon::cmp_constraints(&base[b], d) == Ordering::Less
            {
                b += 1;
            }
            if b >= base.len() || crate::canon::cmp_constraints(&base[b], d) != Ordering::Equal {
                return false;
            }
        }
        true
    }

    /// The canonical form of `base ∧ delta`, assembled by merging the
    /// base's canonical constraint lists with the canonicalized delta —
    /// identical to canonicalizing the materialized problem.
    fn merged(&self, cb: &CachedBase, eqs: &[Constraint], geqs: &[Constraint]) -> Problem {
        let mut p = Problem {
            vars: cb.canon.vars.clone(),
            eqs: merge_sorted(&cb.canon.eqs, eqs),
            geqs: merge_sorted(&cb.canon.geqs, geqs),
            known_infeasible: cb.canon.known_infeasible,
        };
        for &(name, kind) in &self.vars {
            p.push_var(name, kind);
        }
        p
    }
}

impl ProblemLike for DeltaProblem {
    fn add_var(&mut self, name: impl AsRef<str>, kind: VarKind) -> VarId {
        let id = VarId::from_index(self.num_vars());
        self.vars.push((Name::from_str(name.as_ref(), kind), kind));
        id
    }

    fn num_vars(&self) -> usize {
        self.ctx.inner.base.num_vars() + self.vars.len()
    }

    fn add_eq(&mut self, expr: LinExpr) {
        self.eqs.push(Constraint::eq(expr));
    }

    fn add_geq(&mut self, expr: LinExpr) {
        self.geqs.push(Constraint::geq(expr));
    }

    fn is_satisfiable_with(&self, budget: &mut Budget) -> Result<bool> {
        let Some((cb, cache)) = self.active_base(budget) else {
            return self.to_problem().is_satisfiable_with(budget);
        };
        cache.note_delta_canon();
        let (eqs, geqs) = canonicalize_delta(&self.eqs, &self.geqs);
        // The canonicalized delta moves *into* the key (no clones); on a
        // miss the compute closure reads it back out of the key.
        let key = MemoKey::Delta(DeltaKey {
            op: Op::Sat,
            base: cb.id,
            vars: self.vars.clone(),
            keep: Vec::new(),
            eqs,
            geqs,
        });
        cache::with_memo(
            budget,
            cache,
            key,
            |&v| CachedValue::Sat(v),
            |v| match v {
                CachedValue::Sat(b) => Some(b),
                _ => None,
            },
            |b, key| {
                let MemoKey::Delta(dk) = key else {
                    unreachable!("sat delta computes under a delta key")
                };
                let (eqs, geqs) = (&dk.eqs[..], &dk.geqs[..]);
                // On a miss, try to resume the base's checkpointed tableau
                // with just the delta's rows instead of re-eliminating the
                // base from scratch. `replay_delta` only commits when the
                // resumed solve is step-for-step identical to the cold one.
                if b.options().dense_kernel && b.options().base_checkpoint {
                    if DeltaProblem::resume_plausible(cb, &self.vars, eqs) {
                        let cp = cb
                            .cache
                            .checkpoint_set(cb.id)
                            .sat_checkpoint(|| tableau::record_checkpoint(&cb.canon));
                        if let Some(cp) = cp {
                            if let Some(rows) = cp.replay_delta(&cb.canon, 0, eqs, geqs) {
                                cb.cache.note_checkpoint_resume();
                                let r = tableau::resume_sat(&cp, &rows, b);
                                tableau::recycle_rows(rows);
                                return r;
                            }
                        }
                    }
                    cb.cache.note_checkpoint_rebuild();
                }
                solve_sat(self.merged(cb, eqs, geqs), b)
            },
        )
    }

    fn project_with(&self, keep: &[VarId], budget: &mut Budget) -> Result<Projection> {
        let Some((cb, cache)) = self.active_base(budget) else {
            return self.to_problem().project_with(keep, budget);
        };
        cache.note_delta_canon();
        let (eqs, geqs) = canonicalize_delta(&self.eqs, &self.geqs);
        let mut keep_ids: Vec<u32> = keep.iter().map(|v| v.0).collect();
        keep_ids.sort_unstable();
        keep_ids.dedup();
        // Delta and keep set move *into* the key (no clones); the compute
        // closure reads them back out on a miss.
        let key = MemoKey::Delta(DeltaKey {
            op: Op::Project,
            base: cb.id,
            vars: self.vars.clone(),
            keep: keep_ids,
            eqs,
            geqs,
        });
        cache::with_memo(
            budget,
            cache,
            key,
            |v: &Projection| CachedValue::Project(v.clone()),
            |v| match v {
                CachedValue::Project(proj) => Some(proj),
                _ => None,
            },
            |b, key| {
                let MemoKey::Delta(dk) = key else {
                    unreachable!("project delta computes under a delta key")
                };
                let (eqs, geqs) = (&dk.eqs[..], &dk.geqs[..]);
                if b.options().dense_kernel && b.options().base_checkpoint {
                    // Projection checkpoints carry the keep-set's protected
                    // flags, so they are recorded per keep set. A keep set
                    // naming a delta-added variable can't resume (and its
                    // flags couldn't be applied to the base) — rebuild.
                    if DeltaProblem::resume_plausible(cb, &self.vars, eqs) {
                        let cp = cb.cache.checkpoint_set(cb.id).proj_checkpoint(&dk.keep, || {
                            let mut p = cb.canon.clone();
                            for &v in &dk.keep {
                                p.set_protected(VarId::from_index(v as usize), true);
                            }
                            tableau::record_checkpoint(&p)
                        });
                        if let Some(cp) = cp {
                            if let Some(rows) = cp.replay_delta(&cb.canon, 0, eqs, geqs) {
                                cb.cache.note_checkpoint_resume();
                                let r = project_resumed(&cp, &rows, b);
                                tableau::recycle_rows(rows);
                                return r;
                            }
                        }
                    }
                    cb.cache.note_checkpoint_rebuild();
                }
                let mut merged = self.merged(cb, eqs, geqs);
                for &v in keep {
                    merged.set_protected(v, true);
                }
                project_prepared(merged, b)
            },
        )
    }

    fn to_problem(&self) -> Problem {
        let mut p = self.ctx.inner.base.clone();
        for &(name, kind) in &self.vars {
            p.push_var(name, kind);
        }
        for c in &self.eqs {
            p.add_constraint(c.clone());
        }
        for c in &self.geqs {
            p.add_constraint(c.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_BUDGET;

    /// `1 <= i <= n ∧ 1 <= i' <= n` — the shape of a dependence base.
    fn pair_base() -> (Problem, VarId, VarId, VarId) {
        let mut p = Problem::new();
        let i = p.add_var("i", VarKind::Input);
        let j = p.add_var("i'", VarKind::Input);
        let n = p.add_var("n", VarKind::Symbolic);
        for v in [i, j] {
            p.add_geq(LinExpr::var(v).plus_const(-1));
            p.add_geq(LinExpr::var(n).plus_term(-1, v));
        }
        (p, i, j, n)
    }

    fn cached_budget() -> (Arc<SolverCache>, Budget) {
        let cache = Arc::new(SolverCache::new());
        let budget = Budget::default().with_cache(cache.clone());
        (cache, budget)
    }

    #[test]
    fn delta_sat_matches_materialized_sat() {
        let (base, i, j, _) = pair_base();
        let (_, mut budget) = cached_budget();
        let ctx = PairContext::new(base, &budget);
        assert!(ctx.is_delta_keyed());

        // i < i' (satisfiable) and i == i' ∧ i > i' (not).
        let mut lt = ctx.derive();
        lt.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        assert_eq!(
            lt.is_satisfiable_with(&mut budget).unwrap(),
            lt.to_problem().is_satisfiable().unwrap()
        );
        assert!(lt.is_satisfiable_with(&mut budget).unwrap());

        let mut contra = ctx.derive();
        contra.constrain_eq(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        contra.constrain_lt(&LinExpr::var(j), &LinExpr::var(i)).unwrap();
        assert!(!contra.is_satisfiable_with(&mut budget).unwrap());
        assert!(!contra.to_problem().is_satisfiable().unwrap());
    }

    #[test]
    fn delta_hit_charges_the_same_cost_as_full_key_path() {
        // The delta path must be budget-indistinguishable from the classic
        // full-canonicalization path: both solve the same canonical
        // problem, so hits recorded by one serve the other's cost exactly.
        let (base, i, j, _) = pair_base();
        let (cache, _) = cached_budget();

        // Cold solve through the full path on the materialized problem.
        let ctx_budget = Budget::new(DEFAULT_BUDGET).with_cache(cache.clone());
        let ctx = PairContext::new(base, &ctx_budget);
        let mut q = ctx.derive();
        q.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();

        let mut full_cold = Budget::new(DEFAULT_BUDGET).with_cache(Arc::new(SolverCache::new()));
        q.to_problem().is_satisfiable_with(&mut full_cold).unwrap();
        let full_cost = DEFAULT_BUDGET - full_cold.remaining();

        let mut delta_cold = Budget::new(DEFAULT_BUDGET).with_cache(cache.clone());
        q.is_satisfiable_with(&mut delta_cold).unwrap();
        let delta_cost = DEFAULT_BUDGET - delta_cold.remaining();
        assert_eq!(full_cost, delta_cost);

        // And a warm delta query charges the recorded cold cost.
        let mut warm = Budget::new(DEFAULT_BUDGET).with_cache(cache.clone());
        q.is_satisfiable_with(&mut warm).unwrap();
        assert_eq!(DEFAULT_BUDGET - warm.remaining(), delta_cost);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn delta_projection_matches_materialized_projection() {
        let (base, i, j, n) = pair_base();
        let (_, mut budget) = cached_budget();
        let ctx = PairContext::new(base, &budget);

        let mut q = ctx.derive();
        q.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        let delta_proj = q.project_with(&[j, n], &mut budget).unwrap();
        // The contract is bit-identity with the full *cached* path (which
        // also canonicalizes before projecting).
        let mut full_budget = Budget::default().with_cache(Arc::new(SolverCache::new()));
        let full_proj = q.to_problem().project_with(&[j, n], &mut full_budget).unwrap();
        assert_eq!(delta_proj.is_exact(), full_proj.is_exact());
        assert_eq!(delta_proj.dark().eqs(), full_proj.dark().eqs());
        assert_eq!(delta_proj.dark().geqs(), full_proj.dark().geqs());
        // i' >= 2 must survive; i' <= 1 must not.
        assert!(delta_proj.dark().satisfies(&[0, 2, 5]));
        assert!(!delta_proj.dark().satisfies(&[0, 1, 5]));
    }

    #[test]
    fn base_is_canonicalized_once_across_queries() {
        let (base, i, j, _) = pair_base();
        let (cache, mut budget) = cached_budget();
        let ctx = PairContext::new(base, &budget);
        for k in 0..4 {
            let mut q = ctx.derive();
            q.constrain_eq(
                &LinExpr::var(j),
                &LinExpr::var(i).plus_const(k),
            )
            .unwrap();
            q.is_satisfiable_with(&mut budget).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.full_canons, 1, "base canonicalized more than once");
        assert_eq!(s.delta_canons, 4);
    }

    #[test]
    fn delta_with_new_variables_round_trips() {
        let (base, i, j, _) = pair_base();
        let (_, mut budget) = cached_budget();
        let ctx = PairContext::new(base, &budget);
        let mut q = ctx.derive();
        let d = q.add_var("d", VarKind::Input);
        assert_eq!(d.index(), q.num_vars() - 1);
        // d = i' - i, d >= 1.
        q.add_eq(
            LinExpr::var(d)
                .plus_term(-1, j)
                .plus_term(1, i),
        );
        q.add_geq(LinExpr::var(d).plus_const(-1));
        let delta_proj = q.project_with(&[d], &mut budget).unwrap();
        let mut full_budget = Budget::default().with_cache(Arc::new(SolverCache::new()));
        let full_proj = q.to_problem().project_with(&[d], &mut full_budget).unwrap();
        assert_eq!(delta_proj.dark().geqs(), full_proj.dark().geqs());
    }

    #[test]
    fn foreign_cache_falls_back_to_materialization() {
        let (base, i, j, _) = pair_base();
        let (ctx_cache, ctx_budget) = cached_budget();
        let ctx = PairContext::new(base.clone(), &ctx_budget);
        let mut q = ctx.derive();
        q.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();

        // A budget with a *different* cache: the delta key would dangle, so
        // the query must materialize (and populate the other cache under a
        // full key).
        let other = Arc::new(SolverCache::new());
        let mut other_budget = Budget::default().with_cache(other.clone());
        assert!(q.is_satisfiable_with(&mut other_budget).unwrap());
        assert_eq!(other.stats().full_canons, 1);
        assert_eq!(other.stats().delta_canons, 0);
        // And with no cache at all.
        let mut plain = Budget::default();
        assert!(q.is_satisfiable_with(&mut plain).unwrap());
        assert_eq!(ctx_cache.stats().delta_canons, 0);
    }

    #[test]
    fn ineligible_base_disables_delta_keys() {
        let (mut base, i, _, _) = pair_base();
        base.set_protected(i, true);
        let (cache, mut budget) = cached_budget();
        let ctx = PairContext::new(base, &budget);
        assert!(!ctx.is_delta_keyed());
        let q = ctx.derive();
        q.is_satisfiable_with(&mut budget).unwrap();
        assert_eq!(cache.stats().delta_canons, 0);
        assert_eq!(cache.stats().full_canons, 1); // the materialized query
    }

    #[test]
    fn identical_bases_share_an_interned_id() {
        let (base, i, j, _) = pair_base();
        let (cache, mut budget) = cached_budget();
        let a = PairContext::new(base.clone(), &budget);
        let b = PairContext::new(base, &budget);
        // Same canonical form → same id → a query through one context is
        // a warm hit through the other.
        let mut qa = a.derive();
        qa.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        qa.is_satisfiable_with(&mut budget).unwrap();
        let mut qb = b.derive();
        qb.constrain_lt(&LinExpr::var(i), &LinExpr::var(j)).unwrap();
        qb.is_satisfiable_with(&mut budget).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }
}
