//! Human-readable rendering of expressions, constraints and problems.
//!
//! Rendering is a *boundary*: the string may end up in a server
//! response, a golden file, or a diff, where byte stability matters.
//! [`Problem`]'s `Display` therefore sorts its constraints into the
//! canonical order of [`canon`](crate::canon) before printing, so two
//! problems holding the same constraints in different orders — the
//! documented order-sensitivity of projection and gist output on raw,
//! non-canonical problems — render identically. The problem itself is
//! not rewritten: constraints print with their original coefficients
//! (no GCD reduction), only their order is normalized.

use std::fmt;

use crate::canon::cmp_constraints;
use crate::linexpr::{Constraint, LinExpr, Relation};
use crate::problem::Problem;
use crate::var::VarKind;

impl Problem {
    /// Renders a linear expression with this problem's variable names,
    /// e.g. `2x - y + 3`.
    pub fn expr_to_string(&self, e: &LinExpr) -> String {
        let mut s = String::new();
        let mut first = true;
        for (v, c) in e.terms() {
            let name = self.var_info(v).name();
            if first {
                match c {
                    1 => s.push_str(name),
                    -1 => {
                        s.push('-');
                        s.push_str(name);
                    }
                    _ => s.push_str(&format!("{c}{name}")),
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    s.push_str(&format!(" + {name}"));
                } else {
                    s.push_str(&format!(" + {c}{name}"));
                }
            } else if c == -1 {
                s.push_str(&format!(" - {name}"));
            } else {
                s.push_str(&format!(" - {}{name}", -c));
            }
        }
        let k = e.constant();
        if first {
            s.push_str(&k.to_string());
        } else if k > 0 {
            s.push_str(&format!(" + {k}"));
        } else if k < 0 {
            s.push_str(&format!(" - {}", -k));
        }
        s
    }

    /// Renders a constraint, e.g. `x - y + 3 >= 0`.
    pub fn constraint_to_string(&self, c: &Constraint) -> String {
        let rel = match c.relation() {
            Relation::Zero => "=",
            Relation::NonNegative => ">=",
        };
        format!("{} {rel} 0", self.expr_to_string(c.expr()))
    }
}

impl fmt::Display for Problem {
    /// Prints the problem as `{ c1; c2; ... }`, prefixing existential
    /// wildcards as `exists a,b:`. Equalities print before inequalities
    /// and each list is sorted into canonical constraint order, so the
    /// rendering is independent of the order constraints were added or
    /// produced in (see the module docs).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known_infeasible() {
            return write!(f, "{{ FALSE }}");
        }
        if self.is_trivially_true() {
            return write!(f, "{{ TRUE }}");
        }
        let sorted = |cs: &[Constraint]| {
            let mut out: Vec<Constraint> = cs.to_vec();
            out.sort_by(cmp_constraints);
            out
        };
        let (eqs, geqs) = (sorted(self.eqs()), sorted(self.geqs()));
        let mut wilds: Vec<&str> = Vec::new();
        let mut mentioned = vec![false; self.num_vars()];
        for c in eqs.iter().chain(&geqs) {
            for (v, _) in c.expr().terms() {
                mentioned[v.index()] = true;
            }
        }
        for v in self.var_ids() {
            if mentioned[v.index()] && self.var_info(v).kind() == VarKind::Wildcard {
                wilds.push(self.var_info(v).name());
            }
        }
        write!(f, "{{ ")?;
        if !wilds.is_empty() {
            write!(f, "exists {}: ", wilds.join(","))?;
        }
        let mut first = true;
        for c in eqs.iter().chain(&geqs) {
            if !first {
                write!(f, "; ")?;
            }
            write!(f, "{}", self.constraint_to_string(c))?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    #[test]
    fn expr_rendering() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        assert_eq!(p.expr_to_string(&LinExpr::zero()), "0");
        assert_eq!(p.expr_to_string(&LinExpr::var(x)), "x");
        assert_eq!(
            p.expr_to_string(&LinExpr::term(2, x).plus_term(-1, y).plus_const(3)),
            "2x - y + 3"
        );
        assert_eq!(
            p.expr_to_string(&LinExpr::term(-1, x).plus_const(-7)),
            "-x - 7"
        );
    }

    #[test]
    fn problem_rendering() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_eq(LinExpr::term(2, x).plus_const(-8));
        let s = p.to_string();
        assert!(s.contains("2x - 8 = 0"), "{s}");
        assert!(s.contains("x - 1 >= 0"), "{s}");
    }

    #[test]
    fn trivial_and_infeasible_rendering() {
        let p = Problem::new();
        assert_eq!(p.to_string(), "{ TRUE }");
        let mut q = Problem::new();
        q.add_geq(LinExpr::constant_expr(-1));
        q.normalize().unwrap();
        assert_eq!(q.to_string(), "{ FALSE }");
    }

    #[test]
    fn rendering_is_independent_of_constraint_order() {
        let mut a = Problem::new();
        let x = a.add_var("x", VarKind::Input);
        let y = a.add_var("y", VarKind::Input);
        let mut b = a.clone();
        // Same constraints, opposite insertion order.
        a.add_geq(LinExpr::var(x).plus_const(-1));
        a.add_geq(LinExpr::term(2, y).plus_term(-1, x));
        a.add_eq(LinExpr::var(x).plus_term(-1, y));
        b.add_eq(LinExpr::var(x).plus_term(-1, y));
        b.add_geq(LinExpr::term(2, y).plus_term(-1, x));
        b.add_geq(LinExpr::var(x).plus_const(-1));
        assert_eq!(a.to_string(), b.to_string());
        // Order is normalized at the boundary, never the content: a
        // scaled (non-canonical) constraint still prints as written.
        let mut c = Problem::new();
        let z = c.add_var("z", VarKind::Input);
        c.add_geq(LinExpr::term(3, z).plus_const(-6));
        assert_eq!(c.to_string(), "{ 3z - 6 >= 0 }");
    }

    #[test]
    fn wildcards_are_quantified() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let a = p.add_var("a0", VarKind::Wildcard);
        p.add_eq(LinExpr::var(x).plus_term(-2, a));
        let s = p.to_string();
        assert!(s.starts_with("{ exists a0:"), "{s}");
    }
}
