//! Exact integer arithmetic helpers used throughout the Omega test.
//!
//! All routines are total over their documented domains and panic only on
//! violated preconditions (documented per function). Overflow in the solver
//! proper is handled by doing intermediate arithmetic in `i128` and
//! converting back with [`narrow`], which surfaces [`Error::Overflow`]
//! instead of wrapping.
//!
//! [`Error::Overflow`]: crate::Error::Overflow

use crate::{Error, Result};

/// The coefficient type stored in constraints.
pub type Coef = i64;

/// Greatest common divisor of two integers; always non-negative.
///
/// `gcd(0, 0) == 0` by convention.
///
/// # Examples
///
/// ```
/// assert_eq!(omega::int::gcd(12, -18), 6);
/// assert_eq!(omega::int::gcd(0, 5), 5);
/// ```
pub fn gcd(a: Coef, b: Coef) -> Coef {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as Coef
}

/// Least common multiple, computed without intermediate overflow for
/// arguments whose LCM fits in `i64`.
///
/// # Errors
///
/// Returns [`Error::Overflow`] if the result does
/// not fit in `i64`.
pub fn lcm(a: Coef, b: Coef) -> Result<Coef> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    narrow((a.unsigned_abs() / g.unsigned_abs()) as i128 * b.unsigned_abs() as i128)
}

/// Floor division: the largest integer `q` with `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(omega::int::floor_div(7, 2), 3);
/// assert_eq!(omega::int::floor_div(-7, 2), -4);
/// assert_eq!(omega::int::floor_div(7, -2), -4);
/// ```
pub fn floor_div(a: Coef, b: Coef) -> Coef {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: the smallest integer `q` with `q * b >= a` (for
/// positive `b`).
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn ceil_div(a: Coef, b: Coef) -> Coef {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// The symmetric remainder `a mod̂ b` from Pugh's equality-elimination step:
/// `a - b * floor(a/b + 1/2)`, which lies in `[-b/2, b/2)`.
///
/// The key property exploited by the Omega test is that for `m = |a| + 1`,
/// `a mod̂ m == -sign(a)`, producing a unit coefficient.
///
/// # Panics
///
/// Panics if `b <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(omega::int::mod_hat(3, 4), -1);
/// assert_eq!(omega::int::mod_hat(-3, 4), 1);
/// assert_eq!(omega::int::mod_hat(2, 4), -2);
/// assert_eq!(omega::int::mod_hat(5, 4), 1);
/// ```
pub fn mod_hat(a: Coef, b: Coef) -> Coef {
    assert!(b > 0, "mod_hat requires a positive modulus");
    let r = a.rem_euclid(b);
    if 2 * r >= b {
        r - b
    } else {
        r
    }
}

/// Narrows an `i128` intermediate back to a stored coefficient.
///
/// # Errors
///
/// Returns [`Error::Overflow`] when the value does
/// not fit in `i64`.
#[inline]
pub fn narrow(v: i128) -> Result<Coef> {
    Coef::try_from(v).map_err(|_| Error::Overflow)
}

/// `a * b + c` computed exactly in `i128` and narrowed.
///
/// # Errors
///
/// Returns [`Error::Overflow`] if the result does
/// not fit in `i64`.
#[inline]
pub fn mul_add(a: Coef, b: Coef, c: Coef) -> Result<Coef> {
    narrow(a as i128 * b as i128 + c as i128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, -7), 7);
        assert_eq!(gcd(-12, -8), 4);
        assert_eq!(gcd(13, 7), 1);
        assert_eq!(gcd(48, 36), 12);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 9).unwrap(), 0);
        assert_eq!(lcm(-4, 6).unwrap(), 12);
        assert!(lcm(i64::MAX, i64::MAX - 1).is_err());
    }

    #[test]
    fn floor_and_ceil_division_agree_with_reals() {
        for a in -20..=20 {
            for b in [-7, -3, -1, 1, 2, 5] {
                let f = floor_div(a, b);
                let c = ceil_div(a, b);
                assert!(f * b <= a && (f + 1) * b > a || b < 0 && f * b <= a.max(f * b));
                // Definitional checks.
                assert!((f as f64) <= (a as f64) / (b as f64) + 1e-9);
                assert!((f as f64) > (a as f64) / (b as f64) - 1.0 - 1e-9);
                assert!((c as f64) >= (a as f64) / (b as f64) - 1e-9);
                assert!((c as f64) < (a as f64) / (b as f64) + 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn mod_hat_range_and_congruence() {
        for a in -30..=30 {
            for b in 1..=9 {
                let r = mod_hat(a, b);
                assert!(
                    2 * r >= -b && 2 * r < b,
                    "mod_hat({a},{b}) = {r} outside [-b/2, b/2)"
                );
                assert_eq!((a - r).rem_euclid(b), 0, "not congruent");
            }
        }
    }

    #[test]
    fn mod_hat_unit_coefficient_property() {
        // For m = |a| + 1, a mod̂ m == -sign(a): the pivot of Pugh's
        // equality elimination.
        for a in [-9i64, -5, -2, 2, 3, 7, 100] {
            let m = a.abs() + 1;
            assert_eq!(mod_hat(a, m), -a.signum());
        }
    }

    #[test]
    fn narrow_detects_overflow() {
        assert_eq!(narrow(42).unwrap(), 42);
        assert!(narrow(i64::MAX as i128 + 1).is_err());
        assert!(narrow(i64::MIN as i128 - 1).is_err());
        assert!(mul_add(i64::MAX, 2, 0).is_err());
        assert_eq!(mul_add(3, 4, 5).unwrap(), 17);
    }
}
