#![warn(missing_docs)]
//! # The Omega test
//!
//! An exact integer-programming algorithm for linear constraints, built on
//! extended Fourier–Motzkin variable elimination, as introduced by
//! William Pugh (Supercomputing '91) and extended for dependence analysis
//! by Pugh & Wonnacott (PLDI 1992). This crate provides:
//!
//! * **Satisfiability** of conjunctions of linear equalities and
//!   inequalities over the integers ([`Problem::is_satisfiable`]);
//! * **Exact projection** onto a subset of the variables, decomposed into
//!   the *dark shadow*, *splinters*, and the *real shadow*
//!   ([`Problem::project`], [`Projection`]);
//! * **Gists**: `gist p given q`, the new information in `p` given `q`
//!   ([`gist`]), and fast implication tautology checks ([`implies`]);
//! * A **Presburger formula layer** with `∧ ∨ ¬ ∃ ∀` over linear atoms
//!   ([`Formula`]), decided through DNF + projection.
//!
//! # Quick example
//!
//! ```
//! use omega::{LinExpr, Problem, VarKind};
//!
//! // Does  1 <= i <= n  ∧  i = n + 1  have an integer solution? (No.)
//! let mut p = Problem::new();
//! let i = p.add_var("i", VarKind::Input);
//! let n = p.add_var("n", VarKind::Symbolic);
//! p.add_geq(LinExpr::var(i).plus_const(-1));            // i >= 1
//! p.add_geq(LinExpr::var(n).plus_term(-1, i));          // i <= n
//! p.add_eq(LinExpr::var(i).plus_term(-1, n).plus_const(-1)); // i = n + 1
//! assert!(!p.is_satisfiable()?);
//! # Ok::<(), omega::Error>(())
//! ```
//!
//! # Design notes
//!
//! Coefficients are stored as `i64` and combined in `i128`; overflow is
//! reported as [`Error::Overflow`], never wrapped. Recursive searches are
//! metered by a [`Budget`] so adversarial inputs fail with
//! [`Error::TooComplex`] instead of diverging — integer programming is
//! NP-complete, but as the paper observes, the Omega test is fast on the
//! problems dependence analysis produces.

pub mod int;

mod cache;
mod canon;
mod eliminate;
mod error;
mod formula;
mod fourier;
mod gist;
mod linexpr;
mod normalize;
mod pair;
mod persist;
mod pretty;
mod problem;
mod project;
mod redundant;
mod row;
mod sample;
mod sat;
mod set;
mod symbol;
mod tableau;
mod var;

pub use cache::{CacheStats, SolverCache};
pub use error::{Error, Result};
pub use formula::Formula;
pub use gist::{gist, gist_projected, gist_with, implies, implies_with};
pub use linexpr::{Color, Constraint, LinExpr, Relation};
pub use normalize::Outcome;
pub use pair::{DeltaProblem, PairContext, ProblemLike};
pub use problem::{Budget, Problem, SolverOptions, DEFAULT_BUDGET};
pub use project::Projection;
pub use row::{gc as row_store_gc, stats as row_store_stats, RowShardStats, RowStoreStats};
pub use set::{union_of, ProblemSet};
pub use tableau::tableau_roundtrip;
pub use var::{VarId, VarInfo, VarKind};
