//! Gist computation (§3.3): `gist p given q` is a minimal conjunction `g`
//! drawn from `p`'s constraints with `g ∧ q ≡ p ∧ q` — "the new information
//! in `p`, given that we already know `q`".

use crate::cache::{self, CachedValue, MemoKey};
use crate::canon::{canonicalize, CanonKey, Op};
use crate::linexpr::{Color, Constraint};
use crate::normalize::{single_implies, Outcome};
use crate::problem::{Budget, Problem};
use crate::redundant::{negate_geq, split_equality};
use crate::var::VarId;
use crate::{Error, Result};

/// Computes `gist p given q`.
///
/// `p` and `q` must share a variable table. The result is a problem over
/// the same table containing a minimal subset of `p`'s constraints; it is
/// trivially true exactly when `q ⇒ p`, and marked infeasible when
/// `p ∧ q` is unsatisfiable.
///
/// # Errors
///
/// Returns [`Error::SpaceMismatch`] for incompatible tables and propagates
/// solver errors.
///
/// # Examples
///
/// ```
/// use omega::{gist, LinExpr, Problem, VarKind};
///
/// let mut space = Problem::new();
/// let x = space.add_var("x", VarKind::Input);
///
/// let mut p = space.clone();
/// p.add_geq(LinExpr::var(x).plus_const(-1));            // x >= 1
/// p.add_geq(LinExpr::term(-1, x).plus_const(50));       // x <= 50
///
/// let mut q = space.clone();
/// q.add_geq(LinExpr::term(-1, x).plus_const(50));       // x <= 50 (known)
///
/// let g = gist(&p, &q)?;
/// // Only "x >= 1" is new information.
/// assert_eq!(g.geqs().len(), 1);
/// assert_eq!(g.geqs()[0].expr().coef(x), 1);
/// # Ok::<(), omega::Error>(())
/// ```
pub fn gist(p: &Problem, q: &Problem) -> Result<Problem> {
    gist_with(p, q, &mut Budget::default())
}

/// [`gist`] with an explicit work budget.
///
/// # Errors
///
/// See [`gist`].
pub fn gist_with(p: &Problem, q: &Problem, budget: &mut Budget) -> Result<Problem> {
    let mut combined = q.clone();
    combined.blacken();
    combined.and_colored(p, Color::Red)?;
    combined.gist_red(budget)
}

/// Decides whether `p ⇒ q` is a tautology (over all integer values of the
/// shared variables).
///
/// Implemented as in §3.3.1: `q_i` is implied iff `p ∧ ¬q_i` is
/// unsatisfiable, with syntactic short-circuits; equivalently the gist of
/// `q` given `p` is `True`.
///
/// # Errors
///
/// Returns [`Error::SpaceMismatch`] for incompatible tables and propagates
/// solver errors.
///
/// # Examples
///
/// ```
/// use omega::{implies, LinExpr, Problem, VarKind};
///
/// let mut space = Problem::new();
/// let x = space.add_var("x", VarKind::Input);
///
/// let mut p = space.clone();
/// p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5
/// let mut q = space.clone();
/// q.add_geq(LinExpr::var(x).plus_const(-1)); // x >= 1
///
/// assert!(implies(&p, &q)?);
/// assert!(!implies(&q, &p)?);
/// # Ok::<(), omega::Error>(())
/// ```
pub fn implies(p: &Problem, q: &Problem) -> Result<bool> {
    implies_with(p, q, &mut Budget::default())
}

/// [`implies`] with an explicit work budget.
///
/// # Errors
///
/// See [`implies`].
pub fn implies_with(p: &Problem, q: &Problem, budget: &mut Budget) -> Result<bool> {
    if !p.same_space(q) {
        return Err(Error::SpaceMismatch);
    }
    // q may carry extra (wildcard) columns from a projection; widen p's
    // table so its clones can hold q's constraints.
    let mut p = p.clone();
    p.extend_space_to(q)?;
    let p = &p;
    // Vacuous truth: if p is unsatisfiable, p ⇒ q holds.
    if !p.is_satisfiable_with(budget)? {
        return Ok(true);
    }
    let mut targets: Vec<Constraint> = Vec::new();
    for c in q.eqs() {
        targets.extend(split_equality(c));
    }
    targets.extend(q.geqs().iter().cloned());

    let p_constraints: Vec<&Constraint> = p.eqs().iter().chain(p.geqs()).collect();
    for t in &targets {
        // Syntactic short-circuit.
        if p_constraints.iter().any(|c| single_implies(c, t)) {
            continue;
        }
        let mut test = p.clone();
        test.blacken();
        test.add_constraint(Constraint::geq(negate_geq(t.expr())));
        budget.spend(1)?;
        if test.is_satisfiable_with(budget)? {
            return Ok(false);
        }
    }
    Ok(true)
}

impl Problem {
    /// Computes the gist of this problem's red constraints given its black
    /// ones, consuming the colors (the result is all-black).
    ///
    /// This is the workhorse behind [`gist`] and the combined
    /// projection-plus-gist of §3.3.2.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn gist_red(&self, budget: &mut Budget) -> Result<Problem> {
        if let Some(cache) = budget.active_cache() {
            // Colors carry the red/black split, so the canonical form
            // keeps them; the gist is computed on the canonical problem
            // itself so the cached value is a pure function of the key.
            cache.note_full_canon();
            let cp = canonicalize(self);
            let key = MemoKey::Full(CanonKey::new(Op::Gist, &cp));
            return cache::with_memo(
                budget,
                cache,
                key,
                |v: &Problem| CachedValue::Gist(v.clone()),
                |v| match v {
                    CachedValue::Gist(g) => Some(g),
                    _ => None,
                },
                move |b, _| cp.gist_red_inner(b),
            );
        }
        self.gist_red_inner(budget)
    }

    fn gist_red_inner(&self, budget: &mut Budget) -> Result<Problem> {
        let mut work = self.clone();
        if work.normalize()? == Outcome::Infeasible {
            // p ∧ q unsatisfiable: the paper leaves this case to context;
            // we report an (explicitly) infeasible problem.
            let mut out = empty_like(&work);
            out.known_infeasible = true;
            out.add_geq(crate::LinExpr::constant_expr(-1));
            return Ok(out);
        }

        // Convert red equalities into inequality pairs (§3.3).
        let mut base = empty_like(&work);
        let mut reds: Vec<Constraint> = Vec::new();
        for c in work.eqs() {
            if c.color() == Color::Red {
                reds.extend(split_equality(c));
            } else {
                base.add_constraint(c.clone());
            }
        }
        for c in work.geqs() {
            if c.color() == Color::Red {
                reds.push(c.clone());
            } else {
                base.add_constraint(c.clone());
            }
        }

        let n = reds.len();
        let mut dropped = vec![false; n];
        let mut essential = vec![false; n];

        // Fast check 1: implied by a single constraint of p or q.
        let blacks: Vec<&Constraint> = base.eqs().iter().chain(base.geqs()).collect();
        for i in 0..n {
            let by_black = blacks.iter().any(|c| single_implies(c, &reds[i]));
            let by_red = (0..n).any(|j| {
                j != i && !dropped[j] && single_implies(&reds[j], &reds[i]) && {
                    let identical = reds[j].row == reds[i].row;
                    !(identical && j > i)
                }
            });
            if by_black || by_red {
                dropped[i] = true;
            }
        }

        // Fast check 2 (bound presence) + 3 (normal inner products):
        // a red constraint whose direction is not even partially opposed
        // or shared by any other constraint must be in the gist.
        for i in 0..n {
            if dropped[i] {
                continue;
            }
            let has_support = blacks
                .iter()
                .map(|c| c.expr())
                .chain(
                    (0..n)
                        .filter(|&j| j != i && !dropped[j])
                        .map(|j| reds[j].expr()),
                )
                .any(|e| inner_product_positive(e, reds[i].expr()));
            if !has_support {
                essential[i] = true;
            }
        }

        // Fast check 4: implied by the sum of two other constraints
        // (e.g. x >= 1 ∧ y >= 2 imply x + y >= 3) — the paper's
        // "implied by any two constraints in p and/or q".
        for i in 0..n {
            if dropped[i] || essential[i] {
                continue;
            }
            let others: Vec<&Constraint> = blacks
                .iter()
                .copied()
                .chain((0..n).filter(|&j| j != i && !dropped[j]).map(|j| &reds[j]))
                .collect();
            'pairs: for (a_idx, a) in others.iter().enumerate() {
                for b in &others[a_idx + 1..] {
                    if pair_sum_implies(a, b, &reds[i]) {
                        dropped[i] = true;
                        break 'pairs;
                    }
                }
            }
        }

        // Naive algorithm on the survivors: e is redundant iff
        // ¬e ∧ (other reds) ∧ q is unsatisfiable.
        for i in 0..n {
            if dropped[i] || essential[i] {
                continue;
            }
            let mut test = base.clone();
            test.blacken();
            for (j, r) in reds.iter().enumerate() {
                if j != i && !dropped[j] {
                    test.add_constraint(r.clone().with_color(Color::Black));
                }
            }
            test.add_constraint(Constraint::geq(negate_geq(reds[i].expr())));
            budget.spend(1)?;
            if !test.is_satisfiable_with(budget)? {
                dropped[i] = true;
            }
        }

        let mut out = empty_like(&work);
        for (i, r) in reds.into_iter().enumerate() {
            if !dropped[i] {
                out.add_constraint(r.with_color(Color::Black));
            }
        }
        // Re-coalesce opposed pairs into equalities for presentation.
        out.normalize()?;
        Ok(out)
    }
}

/// Combined projection and gist (§3.3.2): computes
/// `gist π_keep(p ∧ q) given π_keep(q)` in one pass by tagging `p` red and
/// `q` black, projecting, and taking the gist of the surviving reds.
///
/// Returns `None` when the projection splinters (the gist of a union is
/// not a conjunction); callers fall back to conservative treatment.
///
/// # Errors
///
/// Returns [`Error::SpaceMismatch`] for incompatible tables and propagates
/// solver errors.
pub fn gist_projected(
    p: &Problem,
    q: &Problem,
    keep: &[VarId],
    budget: &mut Budget,
) -> Result<Option<Problem>> {
    let mut combined = q.clone();
    combined.blacken();
    combined.and_colored(p, Color::Red)?;
    let proj = combined.project_with(keep, budget)?;
    if !proj.is_exact() {
        return Ok(None);
    }
    proj.dark().gist_red(budget).map(Some)
}

fn empty_like(p: &Problem) -> Problem {
    Problem {
        vars: p.vars.clone(),
        eqs: Vec::new(),
        geqs: Vec::new(),
        known_infeasible: false,
    }
}

/// Whether `target >= 0` follows from `a >= 0 ∧ b >= 0` because
/// `target = a + b + c` with `c >= 0` (inequalities only).
fn pair_sum_implies(a: &Constraint, b: &Constraint, target: &Constraint) -> bool {
    use crate::Relation;
    if a.relation() != Relation::NonNegative
        || b.relation() != Relation::NonNegative
        || target.relation() != Relation::NonNegative
    {
        return false;
    }
    let Ok(sum) = a.expr().combine(1, 1, b.expr()) else {
        return false;
    };
    if sum.coeffs() != target.expr().coeffs() {
        return false;
    }
    target.expr().constant() >= sum.constant()
}

fn inner_product_positive(a: &crate::LinExpr, b: &crate::LinExpr) -> bool {
    let mut acc: i128 = 0;
    for (v, c) in b.terms() {
        acc += c as i128 * a.coef(v) as i128;
    }
    acc > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    fn space1() -> (Problem, VarId) {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        (s, x)
    }

    #[test]
    fn gist_of_known_fact_is_true() {
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-1));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5 already known
        let g = gist(&p, &q).unwrap();
        assert!(g.is_trivially_true(), "gist should be True: {g:?}");
    }

    #[test]
    fn gist_keeps_new_information() {
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-10)); // x >= 10: new
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-5));
        let g = gist(&p, &q).unwrap();
        assert_eq!(g.geqs().len(), 1);
        assert_eq!(g.geqs()[0].expr().constant(), -10);
    }

    #[test]
    fn gist_with_combination_redundancy() {
        // q: x >= 2, y >= 3. p: x + y >= 5 (implied by q, but only via a
        // combination, so the naive satisfiability path must find it).
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_term(1, y).plus_const(-5));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-2));
        q.add_geq(LinExpr::var(y).plus_const(-3));
        let g = gist(&p, &q).unwrap();
        assert!(g.is_trivially_true());
    }

    #[test]
    fn gist_semantics_g_and_q_equals_p_and_q() {
        // Exhaustive semantic check on a small box.
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_term(-1, y)); // x >= y
        p.add_geq(LinExpr::var(x).plus_const(-2)); // x >= 2
        let mut q = s.clone();
        q.add_geq(LinExpr::var(y).plus_const(-3)); // y >= 3 (makes x>=2 redundant? x>=y>=3 -> no, x>=y gives x>=3 so x>=2 redundant)
        let g = gist(&p, &q).unwrap();
        for xv in -1..=6 {
            for yv in -1..=6 {
                let vals = [xv, yv];
                let lhs = g.satisfies(&vals) && q.satisfies(&vals);
                let rhs = p.satisfies(&vals) && q.satisfies(&vals);
                assert_eq!(lhs, rhs, "at ({xv},{yv})");
            }
        }
        // And it should be minimal: only x >= y survives.
        assert_eq!(g.geqs().len(), 1);
    }

    #[test]
    fn gist_of_infeasible_conjunction() {
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-10)); // x >= 10
        let mut q = s.clone();
        q.add_geq(LinExpr::term(-1, x)); // x <= 0
        let g = gist(&p, &q).unwrap();
        assert!(g.is_known_infeasible());
    }

    #[test]
    fn gist_with_red_equalities() {
        // p: x == 5; q: x >= 5. New information is x <= 5.
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_eq(LinExpr::var(x).plus_const(-5));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-5));
        let g = gist(&p, &q).unwrap();
        assert_eq!(g.num_constraints(), 1);
        let c = &g.geqs()[0];
        assert_eq!(c.expr().coef(x), -1);
        assert_eq!(c.expr().constant(), 5);
    }

    #[test]
    fn implies_basics() {
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_eq(LinExpr::var(x).plus_const(-7));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-1));
        q.add_geq(LinExpr::term(-1, x).plus_const(10));
        assert!(implies(&p, &q).unwrap()); // x = 7 ⇒ 1 <= x <= 10
        assert!(!implies(&q, &p).unwrap());
    }

    #[test]
    fn implies_is_vacuously_true_for_infeasible_premise() {
        let (s, x) = space1();
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p.add_geq(LinExpr::term(-1, x).plus_const(1)); // 3 <= x <= 1
        let mut q = s.clone();
        q.add_eq(LinExpr::var(x).plus_const(42));
        assert!(implies(&p, &q).unwrap());
    }

    #[test]
    fn implies_paper_kill_example() {
        // Example 1 of the paper: k = n  ⇒  n <= k <= n + 10.
        let mut s = Problem::new();
        let k = s.add_var("k1", VarKind::Input);
        let n = s.add_var("n", VarKind::Symbolic);
        let mut p = s.clone();
        p.add_eq(LinExpr::var(k).plus_term(-1, n));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(k).plus_term(-1, n)); // k >= n
        q.add_geq(LinExpr::var(n).plus_term(-1, k).plus_const(10)); // k <= n+10
        assert!(implies(&p, &q).unwrap());

        // With the write to a(m): k = m ∧ n <= k <= n+20  ⇏  n <= k <= n+10.
        let mut s2 = Problem::new();
        let k = s2.add_var("k1", VarKind::Input);
        let n = s2.add_var("n", VarKind::Symbolic);
        let m = s2.add_var("m", VarKind::Symbolic);
        let mut p2 = s2.clone();
        p2.add_eq(LinExpr::var(k).plus_term(-1, m));
        p2.add_geq(LinExpr::var(k).plus_term(-1, n));
        p2.add_geq(LinExpr::var(n).plus_term(-1, k).plus_const(20));
        let mut q2 = s2.clone();
        q2.add_geq(LinExpr::var(k).plus_term(-1, n));
        q2.add_geq(LinExpr::var(n).plus_term(-1, k).plus_const(10));
        assert!(!implies(&p2, &q2).unwrap());

        // Asserting n <= m <= n + 10 restores the kill.
        p2.add_geq(LinExpr::var(m).plus_term(-1, n));
        p2.add_geq(LinExpr::var(n).plus_term(-1, m).plus_const(10));
        assert!(implies(&p2, &q2).unwrap());
    }

    #[test]
    fn gist_projected_combined() {
        // p: 1 <= y <= x; q: x <= 9. Project onto x.
        // π(p ∧ q) on x: 1 <= x <= 9; π(q) = x <= 9; gist = x >= 1.
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(y).plus_const(-1));
        p.add_geq(LinExpr::var(x).plus_term(-1, y));
        let mut q = s.clone();
        q.add_geq(LinExpr::term(-1, x).plus_const(9));
        let mut b = Budget::default();
        let g = gist_projected(&p, &q, &[x], &mut b).unwrap().unwrap();
        assert_eq!(g.geqs().len(), 1);
        assert_eq!(g.geqs()[0].expr().coef(x), 1);
        assert_eq!(g.geqs()[0].expr().constant(), -1);
    }

    #[test]
    fn space_mismatch_is_reported() {
        let (s, _) = space1();
        let mut other = Problem::new();
        other.add_var("zzz", VarKind::Input);
        assert_eq!(implies(&s, &other).unwrap_err(), Error::SpaceMismatch);
        assert_eq!(gist(&s, &other).unwrap_err(), Error::SpaceMismatch);
    }
}

#[cfg(test)]
mod pair_check_tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    #[test]
    fn pair_sum_fast_check_drops_diamond() {
        // q: x >= 1, y >= 2; p: x + y >= 2 (implied by the pair sum with
        // slack 1): resolved without the satisfiability path.
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let mut p = s.clone();
        p.add_geq(LinExpr::var(x).plus_term(1, y).plus_const(-2));
        let mut q = s.clone();
        q.add_geq(LinExpr::var(x).plus_const(-1));
        q.add_geq(LinExpr::var(y).plus_const(-2));
        // A tiny budget that cannot afford satisfiability tests: the fast
        // checks alone must resolve the gist.
        let mut tight = Budget::new(40);
        let g = gist_with(&p, &q, &mut tight).unwrap();
        assert!(g.is_trivially_true(), "{g}");
    }

    #[test]
    fn pair_sum_respects_constants() {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        let a = Constraint::geq(LinExpr::var(x).plus_const(-1));
        let b = Constraint::geq(LinExpr::var(y).plus_const(-2));
        let implied = Constraint::geq(LinExpr::var(x).plus_term(1, y).plus_const(-3));
        let not_implied = Constraint::geq(LinExpr::var(x).plus_term(1, y).plus_const(-4));
        assert!(pair_sum_implies(&a, &b, &implied));
        assert!(!pair_sum_implies(&a, &b, &not_implied));
    }
}
