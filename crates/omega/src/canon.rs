//! Canonical forms of [`Problem`]s, used as memo-cache keys.
//!
//! Two problems that normalize to the same canonical form are
//! semantically identical conjunctions over the same variable table, so
//! a solver verdict computed for one is valid for the other. The
//! canonical form is obtained by GCD-reducing every constraint,
//! sign-normalizing equalities, and sorting + deduplicating the
//! constraint lists; coefficient vectors are already dense-trimmed by
//! the [`LinExpr`](crate::LinExpr) storage invariant.
//!
//! Cached *syntactic* results (projections, gists) are computed **on the
//! canonical problem itself**, so that the cached value is a pure
//! function of the key — this is what makes memoization safe under
//! concurrent, schedule-dependent lookup orders.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::linexpr::{Color, Constraint, LinExpr};
use crate::problem::Problem;
use crate::var::VarInfo;

/// The memoized operation a cache key belongs to. Verdicts of different
/// operations on the same problem must not collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    /// Integer satisfiability.
    Sat,
    /// Exact projection onto the protected variables.
    Project,
    /// Gist of the red constraints given the black ones.
    Gist,
}

/// A hashable key identifying (operation, canonical problem). Variable
/// names, kinds and flags are part of the key because projection and
/// gist results embed the variable table.
///
/// Building and hashing the key never re-walks expression content: the
/// variable table is shared by `Arc` (names are interned symbols) and the
/// constraints hash by their interned row ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CanonKey {
    pub(crate) op: Op,
    pub(crate) known_infeasible: bool,
    pub(crate) vars: Arc<Vec<VarInfo>>,
    pub(crate) eqs: Vec<Constraint>,
    pub(crate) geqs: Vec<Constraint>,
}

impl CanonKey {
    /// Builds the key for `op` from an **already canonicalized** problem.
    /// Cheap: the variable table is an `Arc` bump and the constraint lists
    /// clone as reference-count bumps.
    pub(crate) fn new(op: Op, canonical: &Problem) -> Self {
        CanonKey {
            op,
            known_infeasible: canonical.known_infeasible,
            vars: Arc::clone(&canonical.vars),
            eqs: canonical.eqs.clone(),
            geqs: canonical.geqs.clone(),
        }
    }
}

/// GCD-reduces `expr >= 0`: dividing by the coefficient GCD `g` and
/// floor-dividing the constant is exact over the integers
/// (`Σ cᵢxᵢ + k >= 0  ⇔  Σ (cᵢ/g)xᵢ + ⌊k/g⌋ >= 0`).
fn reduce_geq(expr: &LinExpr) -> LinExpr {
    let g = expr.coef_gcd();
    if g <= 1 {
        return expr.clone();
    }
    let mut out = LinExpr::constant_expr(expr.constant().div_euclid(g));
    for (v, c) in expr.terms() {
        out.set_coef(v, c / g);
    }
    out
}

/// GCD-reduces `expr == 0` when the constant is divisible (otherwise the
/// equality is returned unchanged — it is infeasible and normalization
/// will discover that), then sign-normalizes so the leading non-zero
/// coefficient — or, for constant expressions, the constant — is
/// positive.
fn reduce_eq(expr: &LinExpr) -> LinExpr {
    let g = expr.coef_gcd();
    let mut out = if g > 1 && expr.constant() % g == 0 {
        let mut e = LinExpr::constant_expr(expr.constant() / g);
        for (v, c) in expr.terms() {
            e.set_coef(v, c / g);
        }
        e
    } else {
        expr.clone()
    };
    let leading = out.terms().next().map(|(_, c)| c).unwrap_or(out.constant());
    if leading < 0 {
        out.negate();
    }
    out
}

/// Canonicalizes one equality, cloning the interned row handle (an
/// `Arc` bump) when the expression is already in canonical form.
fn canon_eq(c: &Constraint) -> Constraint {
    let e = c.expr();
    let g = e.coef_gcd();
    let reducible = g > 1 && e.constant() % g == 0;
    let leading = e.terms().next().map(|(_, c0)| c0).unwrap_or(e.constant());
    if !reducible && leading >= 0 {
        return c.clone();
    }
    Constraint::eq(reduce_eq(e)).with_color(c.color())
}

/// Canonicalizes one inequality, cloning the interned row handle when
/// the coefficients are already GCD-reduced.
fn canon_geq(c: &Constraint) -> Constraint {
    if c.expr().coef_gcd() <= 1 {
        return c.clone();
    }
    Constraint::geq(reduce_geq(c.expr())).with_color(c.color())
}

/// Deterministic total order on constraints: terms lexicographically,
/// then the constant, then the color. Content-based — never id-based —
/// so canonical constraint order (and with it every report byte) is
/// independent of interning history; but comparison is allocation-free
/// and short-circuits when both constraints share one interned row.
pub(crate) fn cmp_constraints(a: &Constraint, b: &Constraint) -> Ordering {
    let exprs = if a.row == b.row {
        Ordering::Equal
    } else {
        a.expr()
            .terms()
            .cmp(b.expr().terms())
            .then_with(|| a.expr().constant().cmp(&b.expr().constant()))
    };
    exprs.then_with(|| color_rank(a.color()).cmp(&color_rank(b.color())))
}

fn color_rank(c: Color) -> u8 {
    match c {
        Color::Black => 0,
        Color::Red => 1,
    }
}

/// Returns the canonical form of `p`: same variable table, GCD-reduced
/// constraints, sorted and exact-deduplicated constraint lists. The
/// result is semantically equivalent to `p` over the integers.
pub(crate) fn canonicalize(p: &Problem) -> Problem {
    let mut out = Problem {
        vars: p.vars.clone(),
        eqs: Vec::with_capacity(p.eqs.len()),
        geqs: Vec::with_capacity(p.geqs.len()),
        known_infeasible: p.known_infeasible,
    };
    for c in &p.eqs {
        out.eqs.push(canon_eq(c));
    }
    for c in &p.geqs {
        out.geqs.push(canon_geq(c));
    }
    for list in [&mut out.eqs, &mut out.geqs] {
        list.sort_by(cmp_constraints);
        list.dedup();
    }
    out
}

/// Canonical form specialized for satisfiability: colors are irrelevant
/// to the verdict, so constraints are blackened first (increasing hit
/// rates across red/black variants of the same conjunction).
pub(crate) fn canonicalize_for_sat(p: &Problem) -> Problem {
    let mut q = p.clone();
    q.blacken();
    canonicalize(&q)
}

/// Canonicalizes a *delta*: the handful of constraints a derived query
/// adds on top of an already-canonical base. Equalities and inequalities
/// are GCD-reduced exactly as [`canonicalize`] would, then each list is
/// sorted and deduplicated. Reduction is per-constraint-local, so the
/// canonical form of `base ∧ delta` is the sorted merge of the two
/// canonical lists (see [`merge_sorted`]).
pub(crate) fn canonicalize_delta(
    eqs: &[Constraint],
    geqs: &[Constraint],
) -> (Vec<Constraint>, Vec<Constraint>) {
    let mut ceqs: Vec<Constraint> = eqs.iter().map(canon_eq).collect();
    let mut cgeqs: Vec<Constraint> = geqs.iter().map(canon_geq).collect();
    for list in [&mut ceqs, &mut cgeqs] {
        list.sort_by(cmp_constraints);
        list.dedup();
    }
    (ceqs, cgeqs)
}

/// Merges two sorted, individually deduplicated canonical constraint
/// lists into one sorted deduplicated list. Because two constraints
/// comparing [`cmp_constraints`]-equal within one list (eq or geq) are
/// identical, the result equals sorting and deduplicating the
/// concatenation — i.e. what [`canonicalize`] would produce for the
/// conjunction.
pub(crate) fn merge_sorted(a: &[Constraint], b: &[Constraint]) -> Vec<Constraint> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match cmp_constraints(&a[i], &b[j]) {
            Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                // Equal keys within an eq or geq list mean equal
                // constraints: keep one.
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::{VarId, VarKind};

    fn two_var_space() -> (Problem, VarId, VarId) {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        (p, x, y)
    }

    #[test]
    fn constraint_order_does_not_matter() {
        let (base, x, y) = two_var_space();
        let mut a = base.clone();
        a.add_geq(LinExpr::var(x).plus_const(-1));
        a.add_geq(LinExpr::var(y).plus_const(-2));
        let mut b = base.clone();
        b.add_geq(LinExpr::var(y).plus_const(-2));
        b.add_geq(LinExpr::var(x).plus_const(-1));
        assert_eq!(
            CanonKey::new(Op::Sat, &canonicalize(&a)),
            CanonKey::new(Op::Sat, &canonicalize(&b))
        );
    }

    #[test]
    fn gcd_reduction_unifies_scaled_constraints() {
        let (base, x, _) = two_var_space();
        let mut a = base.clone();
        a.add_geq(LinExpr::term(2, x).plus_const(-3)); // 2x >= 3 ⇔ x >= 2
        let mut b = base.clone();
        b.add_geq(LinExpr::var(x).plus_const(-2)); // x >= 2
        assert_eq!(canonicalize(&a).geqs(), canonicalize(&b).geqs());
    }

    #[test]
    fn equality_sign_is_normalized() {
        let (base, x, y) = two_var_space();
        let mut a = base.clone();
        a.add_eq(LinExpr::term(-2, x).plus_term(2, y)); // -2x + 2y == 0
        let mut b = base.clone();
        b.add_eq(LinExpr::var(x).plus_term(-1, y)); // x - y == 0
        assert_eq!(canonicalize(&a).eqs(), canonicalize(&b).eqs());
    }

    #[test]
    fn duplicates_collapse_but_colors_distinguish() {
        let (base, x, _) = two_var_space();
        let mut a = base.clone();
        a.add_geq(LinExpr::var(x));
        a.add_geq(LinExpr::var(x));
        assert_eq!(canonicalize(&a).geqs().len(), 1);
        // A red copy of a black constraint is preserved: the gist
        // machinery resolves that pair itself.
        let mut b = base.clone();
        b.add_geq(LinExpr::var(x));
        b.add_constraint(Constraint::geq(LinExpr::var(x)).with_color(Color::Red));
        assert_eq!(canonicalize(&b).geqs().len(), 2);
    }

    #[test]
    fn ops_do_not_collide() {
        let p = canonicalize(&Problem::new());
        assert_ne!(CanonKey::new(Op::Sat, &p), CanonKey::new(Op::Project, &p));
        assert_ne!(CanonKey::new(Op::Project, &p), CanonKey::new(Op::Gist, &p));
    }

    #[test]
    fn canonical_form_preserves_solutions() {
        let (base, x, y) = two_var_space();
        let mut p = base.clone();
        p.add_geq(LinExpr::term(3, x).plus_term(-3, y).plus_const(-4)); // 3x - 3y >= 4
        p.add_eq(LinExpr::term(-2, x).plus_const(8)); // x == 4
        let c = canonicalize(&p);
        for xv in -6..=6 {
            for yv in -6..=6 {
                assert_eq!(
                    p.satisfies(&[xv, yv]),
                    c.satisfies(&[xv, yv]),
                    "({xv},{yv})"
                );
            }
        }
    }

    #[test]
    fn delta_merge_matches_full_canonicalization() {
        // canonicalize(base ∧ delta) == merge(canonicalize(base),
        // canonicalize_delta(delta)) — the identity the per-pair delta
        // path relies on.
        let (base, x, y) = two_var_space();
        let mut b = base.clone();
        b.add_geq(LinExpr::var(x).plus_const(-1));
        b.add_geq(LinExpr::term(2, y).plus_const(-4)); // reduces to y >= 2
        b.add_eq(LinExpr::term(-3, x).plus_term(3, y)); // reduces to x - y == 0
        let canon_base = canonicalize(&b);

        let delta_eqs = vec![Constraint::eq(LinExpr::term(-2, x).plus_const(8))];
        let delta_geqs = vec![
            Constraint::geq(LinExpr::var(x).plus_const(-1)), // duplicate of base
            Constraint::geq(LinExpr::term(4, x).plus_term(-4, y)),
        ];
        let (ceqs, cgeqs) = canonicalize_delta(&delta_eqs, &delta_geqs);

        let mut full = b.clone();
        for c in &delta_eqs {
            full.add_constraint(c.clone());
        }
        for c in &delta_geqs {
            full.add_constraint(c.clone());
        }
        let canon_full = canonicalize(&full);
        assert_eq!(canon_full.eqs(), merge_sorted(canon_base.eqs(), &ceqs));
        assert_eq!(canon_full.geqs(), merge_sorted(canon_base.geqs(), &cgeqs));
    }

    #[test]
    fn relation_is_part_of_the_key() {
        // x == 0 and x >= 0 reduce to the same expression; the key must
        // keep them apart through the eq/geq split.
        let (base, x, _) = two_var_space();
        let mut a = base.clone();
        a.add_eq(LinExpr::var(x));
        let mut b = base.clone();
        b.add_geq(LinExpr::var(x));
        assert_ne!(
            CanonKey::new(Op::Sat, &canonicalize(&a)),
            CanonKey::new(Op::Sat, &canonicalize(&b))
        );
    }
}
