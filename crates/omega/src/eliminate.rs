//! Exact elimination of equality constraints.
//!
//! An equality with a unit coefficient on an unprotected variable is solved
//! for that variable and substituted everywhere. When no unit coefficient
//! exists, Pugh's "mod̂" reduction introduces a fresh wildcard `σ` and a
//! derived equation in which the pivot variable *does* have a unit
//! coefficient; repeated application shrinks coefficients until a unit
//! pivot appears.
//!
//! **Projection subtlety.** When some variables are protected, an equality
//! like `x − 2y = 0` (project onto `x`) has no eliminable pivot: `y`'s
//! coefficient is not a unit and the mod̂ step would recreate the same
//! shape forever. The integer projection of such a constraint is a *stride*
//! (`x` even), which is inherently existential. We therefore **pin** the
//! unprotected variables of such an equality: they are left in place as
//! existentially quantified wildcards of the result, exactly like the
//! `Exists α` variables the original Omega library prints.

use crate::int::{self, Coef};
use crate::linexpr::{Color, LinExpr};
use crate::normalize::Outcome;
use crate::problem::{Budget, Problem};
use crate::var::{VarId, VarKind};
use crate::Result;

/// Hard cap on mod̂ steps per problem, a safety net for the termination
/// argument in the presence of protected variables.
const MODHAT_CAP: usize = 512;

impl Problem {
    /// Substitutes `v := replacement` into every constraint and marks `v`
    /// dead. `eq_color` is the color of the equality being used: a red
    /// equality substituted into a black constraint taints it red.
    pub(crate) fn substitute_var(
        &mut self,
        v: VarId,
        replacement: &LinExpr,
        eq_color: Color,
    ) -> Result<()> {
        for c in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            if c.expr().coef(v) != 0 {
                let mut e = c.expr().clone();
                e.substitute(v, replacement)?;
                c.set_expr(e);
                c.color = c.color.join(eq_color);
            }
        }
        self.mark_dead(v);
        Ok(())
    }

    /// Eliminates, where possible, every equality that mentions an
    /// unprotected live variable. Equalities over protected variables only
    /// remain, as do *stride residues*: equalities whose unprotected
    /// variables were pinned because integer projection cannot remove them
    /// (they become existentials of the result).
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Overflow`](crate::Error::Overflow) and budget
    /// exhaustion.
    pub(crate) fn eliminate_equalities(&mut self, budget: &mut Budget) -> Result<Outcome> {
        let mut modhat_steps = 0usize;
        loop {
            if self.normalize()? == Outcome::Infeasible {
                return Ok(Outcome::Infeasible);
            }
            match self.pick_equality_action() {
                None => return Ok(Outcome::Consistent),
                Some(Action::Substitute(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    let eq = self.eqs[eq_idx].clone();
                    let a = eq.expr().coef(pivot);
                    debug_assert_eq!(a.abs(), 1);
                    // v = -a * (eq - a*v): unit pivot, direct substitution.
                    let mut rest = eq.expr().clone();
                    rest.set_coef(pivot, 0);
                    rest.scale(-a)?; // a = ±1 so this is exact
                    self.eqs.swap_remove(eq_idx);
                    self.substitute_var(pivot, &rest, eq.color)?;
                }
                Some(Action::ModHat(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    modhat_steps += 1;
                    if modhat_steps > MODHAT_CAP {
                        // Safety net: pin everything still stuck.
                        self.pin_remaining_equality_vars();
                        return Ok(Outcome::Consistent);
                    }
                    self.mod_hat_step(eq_idx, pivot)?;
                }
                Some(Action::Pin(eq_idx)) => {
                    let vars: Vec<VarId> = self.eqs[eq_idx]
                        .expr()
                        .terms()
                        .map(|(v, _)| v)
                        .filter(|&v| !self.is_protected(v) && !self.is_dead(v))
                        .collect();
                    for v in vars {
                        self.mark_pinned(v);
                    }
                }
            }
        }
    }

    fn pin_remaining_equality_vars(&mut self) {
        let mut to_pin = Vec::new();
        for c in &self.eqs {
            for (v, _) in c.expr().terms() {
                if !self.is_protected(v) && !self.is_dead(v) && !self.is_pinned(v) {
                    to_pin.push(v);
                }
            }
        }
        for v in to_pin {
            self.mark_pinned(v);
        }
    }

    /// Picks the next equality-elimination action.
    ///
    /// * A unit-coefficient unprotected, unpinned pivot yields a direct
    ///   substitution (wildcards preferred).
    /// * Otherwise, if the equality's globally smallest coefficient sits on
    ///   a protected or pinned variable with magnitude 1, elimination would
    ///   not terminate: the equality is a stride residue and its
    ///   unprotected variables are pinned.
    /// * Otherwise a mod̂ step on the smallest unprotected coefficient.
    fn pick_equality_action(&self) -> Option<Action> {
        let mut fallback: Option<Action> = None;
        for (i, c) in self.eqs.iter().enumerate() {
            let mut min_free: Option<(VarId, Coef, bool)> = None; // (var, |coef|, wildcard)
            let mut min_stuck: Option<Coef> = None; // min |coef| of protected/pinned vars
            for (v, coef) in c.expr().terms() {
                if self.is_dead(v) {
                    continue;
                }
                if self.is_protected(v) || self.is_pinned(v) {
                    let a = coef.abs();
                    min_stuck = Some(min_stuck.map_or(a, |m: Coef| m.min(a)));
                } else {
                    let is_wild = self.var_info(v).kind() == VarKind::Wildcard;
                    let a = coef.abs();
                    let better = match min_free {
                        None => true,
                        Some((_, b, bw)) => (a, !is_wild) < (b, !bw),
                    };
                    if better {
                        min_free = Some((v, a, is_wild));
                    }
                }
            }
            let Some((v, a, _)) = min_free else { continue };
            if a == 1 {
                return Some(Action::Substitute(i, v));
            }
            if fallback.is_none() {
                // The mod̂ termination argument needs the pivot to hold the
                // globally smallest coefficient of the equality. If a
                // protected (or pinned) variable holds a strictly smaller
                // one, the reduction cannot make progress; the equality is
                // kept as a stride residue with its free variables pinned
                // (existentials of the result), which is exact.
                fallback = Some(match min_stuck {
                    Some(s) if s < a => Action::Pin(i),
                    _ => Action::ModHat(i, v),
                });
            }
        }
        fallback
    }

    /// One step of the mod̂ reduction on equality `eq_idx` with pivot
    /// variable `k` whose coefficient magnitude exceeds 1.
    fn mod_hat_step(&mut self, eq_idx: usize, k: VarId) -> Result<()> {
        let eq = self.eqs[eq_idx].clone();
        let a_k = eq.expr().coef(k);
        debug_assert!(a_k.abs() > 1);
        let m = int::narrow(a_k.unsigned_abs() as i128 + 1)?;
        let sigma = self.add_wildcard();

        // E' : Σ (a_i mod̂ m)·x_i + (c mod̂ m) − m·σ = 0
        let mut reduced = LinExpr::zero();
        for (v, c) in eq.expr().terms() {
            reduced.set_coef(v, int::mod_hat(c, m));
        }
        reduced.set_constant(int::mod_hat(eq.expr().constant(), m));
        reduced.set_coef(sigma, -m);

        // The coefficient of the pivot in E' is -sign(a_k): solve for it.
        let s = a_k.signum();
        debug_assert_eq!(reduced.coef(k), -s);
        let mut replacement = reduced.clone();
        replacement.set_coef(k, 0);
        replacement.scale(s)?;

        // Substitute into every constraint, including the original
        // equality (whose coefficients shrink by roughly m per round).
        self.substitute_var(k, &replacement, eq.color)?;
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
enum Action {
    /// Substitute the unit-coefficient pivot of the indexed equality.
    Substitute(usize, VarId),
    /// Apply a mod̂ step on the indexed equality with the given pivot.
    ModHat(usize, VarId),
    /// The indexed equality is a stride residue: pin its free variables.
    Pin(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    /// Brute-force integer satisfiability over a box, for cross-checking.
    pub(crate) fn brute_force_sat(p: &Problem, lo: Coef, hi: Coef) -> bool {
        let n = p.num_vars();
        let mut vals = vec![lo; n];
        loop {
            if p.satisfies(&vals) {
                return true;
            }
            let mut i = 0;
            loop {
                if i == n {
                    return false;
                }
                vals[i] += 1;
                if vals[i] <= hi {
                    break;
                }
                vals[i] = lo;
                i += 1;
            }
        }
    }

    #[test]
    fn unit_substitution_preserves_solutions() {
        // x = y + 2, x + y = 10  =>  y = 4, x = 6.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::var(x).plus_term(-1, y).plus_const(-2));
        p.add_eq(LinExpr::var(x).plus_term(1, y).plus_const(-10));
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Consistent);
        // Everything eliminated: both equalities consumed, no residue.
        assert!(p.eqs().is_empty());
    }

    #[test]
    fn contradictory_equalities_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_eq(LinExpr::var(x).plus_const(-2));
        p.add_eq(LinExpr::var(x).plus_const(-3));
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Infeasible);
    }

    #[test]
    fn mod_hat_reduction_eliminates_large_coefficients() {
        // 7x + 12y = 31 has integer solutions (x=1, y=2).
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::term(7, x).plus_term(12, y).plus_const(-31));
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Consistent);
        assert!(p.eqs().is_empty(), "equality fully eliminated: {:?}", p.eqs());
    }

    #[test]
    fn mod_hat_respects_unsatisfiable_gcd_after_combination() {
        // 3x + 6y = 2: plain gcd test catches it inside normalize.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::term(3, x).plus_term(6, y).plus_const(-2));
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Infeasible);
    }

    #[test]
    fn substitution_rewrites_inequalities() {
        // x = 2y, x >= 5  =>  2y >= 5  => (tightened) y >= 3.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::var(x).plus_term(-2, y));
        p.add_geq(LinExpr::var(x).plus_const(-5));
        let mut b = Budget::default();
        p.eliminate_equalities(&mut b).unwrap();
        p.normalize().unwrap();
        assert_eq!(p.geqs().len(), 1);
        let g = &p.geqs()[0];
        assert_eq!(g.expr().coef(x), 0);
        assert_eq!(g.expr().coef(y), 1);
        assert_eq!(g.expr().constant(), -3);
    }

    #[test]
    fn protected_only_equalities_survive() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.set_protected(x, true);
        p.set_protected(y, true);
        p.add_eq(LinExpr::var(x).plus_term(-1, y));
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Consistent);
        assert_eq!(p.eqs().len(), 1);
    }

    #[test]
    fn protected_vars_not_substituted_but_unprotected_are() {
        // Protect x; equality x = y + 1 should eliminate y, not x.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.set_protected(x, true);
        p.add_eq(LinExpr::var(x).plus_term(-1, y).plus_const(-1));
        p.add_geq(LinExpr::var(y).plus_const(-3)); // y >= 3
        let mut b = Budget::default();
        p.eliminate_equalities(&mut b).unwrap();
        assert!(p.is_dead(y));
        assert!(!p.is_dead(x));
        // y >= 3 became x - 1 >= 3, i.e. x - 4 >= 0.
        let g = &p.geqs()[0];
        assert_eq!(g.expr().coef(x), 1);
        assert_eq!(g.expr().constant(), -4);
    }

    #[test]
    fn stride_equality_pins_instead_of_looping() {
        // x = 2y with x protected: y cannot be eliminated exactly; it must
        // be pinned and the equality kept as a stride residue.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.set_protected(x, true);
        p.add_eq(LinExpr::var(x).plus_term(-2, y));
        p.add_geq(LinExpr::var(y).plus_const(-5)); // y >= 5
        let mut b = Budget::default();
        assert_eq!(p.eliminate_equalities(&mut b).unwrap(), Outcome::Consistent);
        assert!(p.is_pinned(y));
        assert_eq!(p.eqs().len(), 1);
        // Semantics preserved: x = 12, y = 6 satisfies; x = 13 cannot.
        assert!(p.satisfies(&[12, 6]));
        assert!(!p.satisfies(&[13, 6]));
    }

    #[test]
    fn cross_check_diophantine_against_brute_force() {
        // For a grid of (a, b, c): a·x + b·y = c over x,y ∈ [-8, 8].
        for a in 2..=5i64 {
            for bb in 2..=5i64 {
                for c in -6..=6i64 {
                    let mut p = Problem::new();
                    let x = p.add_var("x", VarKind::Input);
                    let y = p.add_var("y", VarKind::Input);
                    p.add_eq(LinExpr::term(a, x).plus_term(bb, y).plus_const(-c));
                    // Keep the box bounds so brute force and solver agree.
                    p.add_geq(LinExpr::var(x).plus_const(8));
                    p.add_geq(LinExpr::term(-1, x).plus_const(8));
                    p.add_geq(LinExpr::var(y).plus_const(8));
                    p.add_geq(LinExpr::term(-1, y).plus_const(8));
                    let brute = brute_force_sat(&p, -8, 8);
                    let solved = p.is_satisfiable().unwrap();
                    assert_eq!(
                        solved, brute,
                        "mismatch for {a}x + {bb}y = {c}"
                    );
                }
            }
        }
    }
}
