//! Finite unions of conjunctions over a shared variable space.
//!
//! Projection splinters and DNF conversion both naturally produce unions;
//! [`ProblemSet`] makes them first-class, with the set algebra the
//! original Omega library exposes on its relations (union, intersection,
//! subset, emptiness). Complementation is deliberately absent from the
//! core — the paper notes the Omega test "cannot directly form the union
//! of two sets of constraints" as a primitive, and negation of stride
//! constraints routes through the [`Formula`] layer instead.

use crate::formula::Formula;
use crate::int::Coef;
use crate::problem::{Budget, Problem};
use crate::project::Projection;
use crate::var::VarId;
use crate::{Error, Result};

/// A union of conjunctions (`Problem`s) over one variable table.
///
/// The empty union is the empty set; a union with one trivially-true
/// piece is the universe.
///
/// # Examples
///
/// ```
/// use omega::{LinExpr, Problem, ProblemSet, VarKind};
///
/// let mut space = Problem::new();
/// let x = space.add_var("x", VarKind::Input);
///
/// let mut low = space.clone();
/// low.add_geq(LinExpr::term(-1, x).plus_const(3)); // x <= 3
/// let mut high = space.clone();
/// high.add_geq(LinExpr::var(x).plus_const(-7)); // x >= 7
///
/// let set = ProblemSet::from(low).union(ProblemSet::from(high));
/// assert!(set.contains_point(&[2]));
/// assert!(set.contains_point(&[9]));
/// assert!(!set.contains_point(&[5]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProblemSet {
    pieces: Vec<Problem>,
}

impl From<Problem> for ProblemSet {
    fn from(p: Problem) -> Self {
        ProblemSet { pieces: vec![p] }
    }
}

impl From<Projection> for ProblemSet {
    /// The exact projection: dark shadow plus splinters.
    fn from(p: Projection) -> Self {
        ProblemSet {
            pieces: p
                .into_problems()
                .into_iter()
                .filter(|p| !p.is_known_infeasible())
                .collect(),
        }
    }
}

impl ProblemSet {
    /// The empty set (over an as-yet-unknown space).
    pub fn empty() -> ProblemSet {
        ProblemSet::default()
    }

    /// The pieces of the union.
    pub fn pieces(&self) -> &[Problem] {
        &self.pieces
    }

    /// Number of pieces.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Whether the union has no pieces (syntactically empty).
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Set union (piece concatenation).
    #[must_use]
    pub fn union(mut self, other: ProblemSet) -> ProblemSet {
        self.pieces.extend(other.pieces);
        self
    }

    /// Set intersection: the pairwise conjunction of pieces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] for incompatible spaces.
    pub fn intersect(&self, other: &ProblemSet) -> Result<ProblemSet> {
        let mut pieces = Vec::with_capacity(self.pieces.len() * other.pieces.len());
        for a in &self.pieces {
            for b in &other.pieces {
                let mut c = a.clone();
                c.and(b)?;
                pieces.push(c);
            }
        }
        Ok(ProblemSet { pieces })
    }

    /// Whether a concrete point is in the union.
    pub fn contains_point(&self, values: &[Coef]) -> bool {
        self.pieces.iter().any(|p| p.satisfies(values))
    }

    /// Whether the union contains any integer point.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_satisfiable(&self, budget: &mut Budget) -> Result<bool> {
        for p in &self.pieces {
            if p.is_satisfiable_with(budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// A witness point from any satisfiable piece.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn sample(
        &self,
        budget: &mut Budget,
    ) -> Result<Option<std::collections::BTreeMap<VarId, Coef>>> {
        for p in &self.pieces {
            if let Some(sol) = p.sample_solution_with(budget)? {
                return Ok(Some(sol));
            }
        }
        Ok(None)
    }

    /// Drops unsatisfiable pieces and simplifies the survivors.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn simplify(&mut self, budget: &mut Budget) -> Result<()> {
        let mut kept = Vec::with_capacity(self.pieces.len());
        for mut p in std::mem::take(&mut self.pieces) {
            if p.is_satisfiable_with(budget)? {
                p.simplify()?;
                kept.push(p);
            }
        }
        self.pieces = kept;
        Ok(())
    }

    /// Projects every piece onto `keep`, collecting all resulting pieces
    /// (dark shadows and splinters) into one union — exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn project(&self, keep: &[VarId], budget: &mut Budget) -> Result<ProblemSet> {
        let mut out = ProblemSet::empty();
        for p in &self.pieces {
            let proj = p.project_with(keep, budget)?;
            out = out.union(ProblemSet::from(proj));
        }
        Ok(out)
    }

    /// Exact subset test: every point of `self` is in `other`.
    ///
    /// Decided through the Presburger layer: for each piece `p`,
    /// `p ∧ ¬q₁ ∧ … ∧ ¬qₙ` must be unsatisfiable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] for incompatible spaces and
    /// propagates solver errors (including
    /// [`Error::TooComplex`] when stride negation exceeds the
    /// quantifier-elimination budget).
    pub fn is_subset_of(&self, other: &ProblemSet, budget: &mut Budget) -> Result<bool> {
        for p in &self.pieces {
            // Widen the space to cover every operand's wildcards.
            let mut space = p.clone();
            for q in &other.pieces {
                space.extend_space_to(q)?;
            }
            let mut parts = vec![Formula::from_problem(p)];
            parts.extend(
                other
                    .pieces
                    .iter()
                    .map(|q| Formula::not(Formula::from_problem(q))),
            );
            if Formula::and(parts).is_satisfiable(&space, budget)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Exact equality of the two sets.
    ///
    /// # Errors
    ///
    /// See [`is_subset_of`](ProblemSet::is_subset_of).
    pub fn set_eq(&self, other: &ProblemSet, budget: &mut Budget) -> Result<bool> {
        Ok(self.is_subset_of(other, budget)? && other.is_subset_of(self, budget)?)
    }
}

impl std::fmt::Display for ProblemSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pieces.is_empty() {
            return write!(f, "{{ }}");
        }
        for (i, p) in self.pieces.iter().enumerate() {
            if i > 0 {
                write!(f, " union ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Convenience: builds the union of two problems.
///
/// # Errors
///
/// Returns [`Error::SpaceMismatch`] for incompatible spaces.
pub fn union_of(a: &Problem, b: &Problem) -> Result<ProblemSet> {
    if !a.same_space(b) {
        return Err(Error::SpaceMismatch);
    }
    Ok(ProblemSet::from(a.clone()).union(ProblemSet::from(b.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    fn space1() -> (Problem, VarId) {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        (s, x)
    }

    fn interval(space: &Problem, x: VarId, lo: i64, hi: i64) -> Problem {
        let mut p = space.clone();
        p.add_geq(LinExpr::var(x).plus_const(-lo));
        p.add_geq(LinExpr::term(-1, x).plus_const(hi));
        p
    }

    #[test]
    fn union_and_membership() {
        let (s, x) = space1();
        let set = union_of(&interval(&s, x, 0, 3), &interval(&s, x, 7, 9)).unwrap();
        for v in -2..12 {
            assert_eq!(
                set.contains_point(&[v]),
                (0..=3).contains(&v) || (7..=9).contains(&v),
                "x = {v}"
            );
        }
    }

    #[test]
    fn intersection() {
        let (s, x) = space1();
        let a = union_of(&interval(&s, x, 0, 5), &interval(&s, x, 10, 15)).unwrap();
        let b = ProblemSet::from(interval(&s, x, 4, 11));
        let c = a.intersect(&b).unwrap();
        let mut budget = Budget::default();
        assert!(c.is_satisfiable(&mut budget).unwrap());
        for v in -1..17 {
            let expect = (4..=5).contains(&v) || (10..=11).contains(&v);
            assert_eq!(c.contains_point(&[v]), expect, "x = {v}");
        }
    }

    #[test]
    fn subset_tests() {
        let (s, x) = space1();
        let inner = union_of(&interval(&s, x, 1, 2), &interval(&s, x, 8, 9)).unwrap();
        let outer = ProblemSet::from(interval(&s, x, 0, 10));
        let mut budget = Budget::default();
        assert!(inner.is_subset_of(&outer, &mut budget).unwrap());
        assert!(!outer.is_subset_of(&inner, &mut budget).unwrap());
    }

    #[test]
    fn union_covering_is_detected() {
        // [0,5] ∪ [4,10] ⊇ [0,10]: needs the genuine union test, no
        // single piece suffices.
        let (s, x) = space1();
        let cover = union_of(&interval(&s, x, 0, 5), &interval(&s, x, 4, 10)).unwrap();
        let whole = ProblemSet::from(interval(&s, x, 0, 10));
        let mut budget = Budget::default();
        assert!(whole.is_subset_of(&cover, &mut budget).unwrap());
        assert!(whole.set_eq(&cover, &mut budget).unwrap());
    }

    #[test]
    fn simplify_drops_empty_pieces() {
        let (s, x) = space1();
        let mut set = union_of(&interval(&s, x, 5, 1), &interval(&s, x, 0, 2)).unwrap();
        assert_eq!(set.len(), 2);
        let mut budget = Budget::default();
        set.simplify(&mut budget).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn projection_of_union() {
        let mut s = Problem::new();
        let x = s.add_var("x", VarKind::Input);
        let y = s.add_var("y", VarKind::Input);
        // {x = 2y, 0 <= y <= 3} ∪ {x = 2y+1, 10 <= y <= 12}
        let mut even = s.clone();
        even.add_eq(LinExpr::var(x).plus_term(-2, y));
        even.add_geq(LinExpr::var(y));
        even.add_geq(LinExpr::term(-1, y).plus_const(3));
        let mut odd = s.clone();
        odd.add_eq(LinExpr::var(x).plus_term(-2, y).plus_const(-1));
        odd.add_geq(LinExpr::var(y).plus_const(-10));
        odd.add_geq(LinExpr::term(-1, y).plus_const(12));
        let set = union_of(&even, &odd).unwrap();
        let mut budget = Budget::default();
        let proj = set.project(&[x], &mut budget).unwrap();
        // Membership via piece satisfiability with x pinned.
        let member = |v: i64| {
            proj.pieces().iter().any(|p| {
                let mut q = p.clone();
                q.add_eq(LinExpr::var(x).plus_const(-v));
                q.is_satisfiable().unwrap()
            })
        };
        for v in -1..30 {
            let expect = (v % 2 == 0 && (0..=6).contains(&v))
                || (v % 2 == 1 && (21..=25).contains(&v));
            assert_eq!(member(v), expect, "x = {v}");
        }
    }

    #[test]
    fn sample_from_union() {
        let (s, x) = space1();
        let set = union_of(&interval(&s, x, 5, 1), &interval(&s, x, 8, 9)).unwrap();
        let mut budget = Budget::default();
        let sol = set.sample(&mut budget).unwrap().unwrap();
        let v = sol[&x];
        assert!((8..=9).contains(&v));
    }

    #[test]
    fn empty_set_properties() {
        let set = ProblemSet::empty();
        let mut budget = Budget::default();
        assert!(set.is_empty());
        assert!(!set.is_satisfiable(&mut budget).unwrap());
        assert!(!set.contains_point(&[0]));
        let (s, x) = space1();
        let nonempty = ProblemSet::from(interval(&s, x, 0, 1));
        assert!(set.is_subset_of(&nonempty, &mut budget).unwrap());
        assert!(!nonempty.is_subset_of(&set, &mut budget).unwrap());
    }

    #[test]
    fn display() {
        let (s, x) = space1();
        let set = union_of(&interval(&s, x, 0, 1), &interval(&s, x, 3, 4)).unwrap();
        let txt = set.to_string();
        assert!(txt.contains("union"), "{txt}");
    }
}
