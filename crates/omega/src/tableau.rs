//! Dense scratch tableau for the solver inner loop.
//!
//! [`Problem`] keeps its interned-row representation — memo keys,
//! persistence, goldens, and the COW API all depend on it — but the hot
//! solver pipeline (satisfiability and projection) runs on a dense
//! struct-of-arrays scratch representation instead: one flat coefficient
//! matrix per constraint section plus parallel constant/color columns.
//! Substitution becomes a row axpy, the mod̂ reduction a column scan, and
//! Fourier–Motzkin a fused row-pair kernel, with no interning traffic and
//! no per-constraint allocation.
//!
//! Conversion happens only at the canonical boundary: a [`Tableau`] is
//! loaded from a [`Problem`] when a query starts and converted back (rows
//! re-interned) only at projection terminals. Everything in between —
//! budget spends, overflow checks, tie-breaks, constraint ordering — is an
//! exact mirror of the row-based pipeline in `sat.rs` / `eliminate.rs` /
//! `fourier.rs` / `normalize.rs` / `project.rs`, so verdicts, projection
//! results, and budget/error behavior are byte-identical with the kernel
//! on or off (`SolverOptions::dense_kernel`).
//!
//! Finished tableaus return to a per-thread free list, so a warm query
//! reuses the previous query's buffers and performs near-zero heap
//! allocations.

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use crate::int::{self, Coef};
use crate::linexpr::{Color, Constraint, LinExpr, Relation};
use crate::normalize::{direction_hash, same_direction, Outcome};
use crate::problem::{Budget, Problem};
use crate::symbol::Name;
use crate::var::{VarInfo, VarKind};
use crate::Result;

const F_PROTECTED: u8 = 1;
const F_DEAD: u8 = 2;
const F_PINNED: u8 = 4;
const F_WILDCARD: u8 = 8;

/// Spare columns allocated beyond the widest loaded row, so the occasional
/// mod̂ wildcard fits without re-striding the matrix.
const HEADROOM: usize = 8;

/// Mirrors `sat::MAX_DEPTH` / `project::MAX_DEPTH`.
const MAX_DEPTH: usize = 64;

/// Mirrors `eliminate::MODHAT_CAP`.
const MODHAT_CAP: usize = 512;

/// Free-list bounds: how many tableaus a thread parks, and the largest
/// combined coefficient capacity worth keeping around.
const POOL_CAP: usize = 64;
const POOL_RETAIN_COEFFS: usize = 65_536;

thread_local! {
    static POOL: RefCell<Vec<Tableau>> = const { RefCell::new(Vec::new()) };
}

fn acquire() -> Tableau {
    POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

fn release(t: Tableau) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP
            && t.eqs.coeffs.capacity() + t.geqs.coeffs.capacity() <= POOL_RETAIN_COEFFS
        {
            pool.push(t);
        }
    });
}

/// One constraint section (equalities or inequalities) in dense
/// struct-of-arrays form: `n` rows of `stride` coefficients each, plus
/// parallel constant and color columns. The caller threads the stride
/// through because it lives on the owning [`Tableau`].
#[derive(Default)]
struct Section {
    coeffs: Vec<Coef>,
    consts: Vec<Coef>,
    colors: Vec<Color>,
    n: usize,
}

impl Section {
    fn clear(&mut self) {
        self.coeffs.clear();
        self.consts.clear();
        self.colors.clear();
        self.n = 0;
    }

    #[inline]
    fn row(&self, stride: usize, i: usize) -> &[Coef] {
        &self.coeffs[i * stride..(i + 1) * stride]
    }

    #[inline]
    fn row_mut(&mut self, stride: usize, i: usize) -> &mut [Coef] {
        &mut self.coeffs[i * stride..(i + 1) * stride]
    }

    /// Appends a row; `src` may be narrower than the stride (the tail is
    /// zero-filled).
    fn push_row(&mut self, stride: usize, src: &[Coef], cst: Coef, color: Color) {
        debug_assert!(src.len() <= stride);
        let off = self.n * stride;
        debug_assert_eq!(off, self.coeffs.len());
        self.coeffs.resize(off + stride, 0);
        self.coeffs[off..off + src.len()].copy_from_slice(src);
        self.consts.push(cst);
        self.colors.push(color);
        self.n += 1;
    }

    /// Mirrors `Vec::swap_remove`: the last row moves into slot `i`.
    fn swap_remove(&mut self, stride: usize, i: usize) {
        let last = self.n - 1;
        if i != last {
            let (head, tail) = self.coeffs.split_at_mut(last * stride);
            head[i * stride..(i + 1) * stride].copy_from_slice(&tail[..stride]);
        }
        self.consts.swap_remove(i);
        self.colors.swap_remove(i);
        self.n = last;
        self.coeffs.truncate(self.n * stride);
    }

    fn truncate(&mut self, stride: usize, n: usize) {
        debug_assert!(n <= self.n);
        self.n = n;
        self.coeffs.truncate(n * stride);
        self.consts.truncate(n);
        self.colors.truncate(n);
    }

    /// Copies row `from` into row `to` (both already allocated).
    fn copy_row_within(&mut self, stride: usize, from: usize, to: usize) {
        if from == to {
            return;
        }
        let (lo, hi) = (from.min(to), from.max(to));
        let (head, tail) = self.coeffs.split_at_mut(hi * stride);
        let (src, dst) = if from > to {
            (&tail[..stride], &mut head[lo * stride..(lo + 1) * stride])
        } else {
            (&head[lo * stride..(lo + 1) * stride] as &[Coef], &mut tail[..stride])
        };
        // Manual copy to satisfy the borrow split in both directions.
        dst.copy_from_slice(src);
        self.consts[to] = self.consts[from];
        self.colors[to] = self.colors[from];
    }

    /// Drops rows flagged in `dead`, preserving order.
    fn compact(&mut self, stride: usize, dead: &[bool]) {
        let mut w = 0usize;
        for r in 0..self.n {
            if dead[r] {
                continue;
            }
            self.copy_row_within(stride, r, w);
            self.consts[w] = self.consts[r];
            self.colors[w] = self.colors[r];
            w += 1;
        }
        self.truncate(stride, w);
    }

    /// Keeps only rows whose coefficient in column `v` is zero, preserving
    /// order.
    fn retain_zero_col(&mut self, stride: usize, v: usize) {
        let mut w = 0usize;
        for r in 0..self.n {
            if self.coeffs[r * stride + v] != 0 {
                continue;
            }
            self.copy_row_within(stride, r, w);
            self.consts[w] = self.consts[r];
            self.colors[w] = self.colors[r];
            w += 1;
        }
        self.truncate(stride, w);
    }

    fn copy_from(&mut self, stride: usize, src: &Section) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&src.coeffs[..src.n * stride]);
        self.consts.clear();
        self.consts.extend_from_slice(&src.consts);
        self.colors.clear();
        self.colors.extend_from_slice(&src.colors);
        self.n = src.n;
    }

    fn restride(&mut self, old: usize, new: usize) {
        debug_assert!(new > old);
        let mut nc = vec![0 as Coef; self.n * new];
        for i in 0..self.n {
            nc[i * new..i * new + old].copy_from_slice(&self.coeffs[i * old..(i + 1) * old]);
        }
        self.coeffs = nc;
    }
}

#[derive(Clone, Copy, Default)]
struct ColStat {
    n_l: u32,
    n_u: u32,
    max_a: Coef,
    max_b: Coef,
    occurs: bool,
    in_eq: bool,
}

struct Bucket {
    rep: u32,
    rep_flipped: bool,
    pos: Option<u32>,
    neg: Option<u32>,
}

/// Reusable workspace buffers. They are `mem::take`n while in use (the
/// methods below need disjoint borrows of tableau fields) and put back
/// afterwards so their capacity survives across queries.
#[derive(Default)]
struct Scratch {
    row: Vec<Coef>,
    idx_lo: Vec<u32>,
    idx_hi: Vec<u32>,
    bounds: Section,
    buckets: Vec<Bucket>,
    index: HashMap<(u64, u32), u32>,
    row_dead: Vec<bool>,
    stats: Vec<ColStat>,
}

/// Outcome of the dense Fourier–Motzkin step. `Exact` mutated the tableau
/// in place; `Approx` left it untouched and hands back freshly acquired
/// shadow tableaus (return them to the pool with [`release`]).
pub(crate) enum ElimT {
    Exact,
    Approx {
        dark: Tableau,
        real: Tableau,
        splinters: Vec<Tableau>,
    },
}

/// Checkpoint-recording state, attached to a [`Tableau`] only while
/// [`record_checkpoint`] drives the equality-elimination loop. Tracks,
/// per normalize pass, the direction hashes of every inequality row that
/// entered bucketing (the interaction guard replayed deltas are checked
/// against), and, across passes, which canonical input row each
/// surviving inequality slot descends from (for interleaving delta rows
/// at their merged positions on restore).
#[derive(Default)]
struct RecState {
    hashes: Vec<u64>,
    orig: Vec<u32>,
    orig_next: Vec<u32>,
    last_rc: Coef,
}

/// The dense scratch representation of one [`Problem`].
///
/// Columns `0..base_len` correspond to the loaded problem's variable
/// table (shared via `base_vars`); columns `base_len..materialized` are
/// wildcards minted during elimination; columns `materialized..ncols`
/// are phantom (mentioned by some row but absent from the table — the
/// row pipeline treats them as anonymous wildcards, and so do we).
#[derive(Default)]
pub(crate) struct Tableau {
    stride: usize,
    ncols: usize,
    base_len: usize,
    materialized: usize,
    base_vars: Arc<Vec<VarInfo>>,
    flags: Vec<u8>,
    eqs: Section,
    geqs: Section,
    known_infeasible: bool,
    /// Whether the variable table diverged from `base_vars` (a flag
    /// changed or a wildcard was minted); when false, `to_problem` can
    /// share the loaded table.
    vars_dirty: bool,
    scratch: Scratch,
    /// Present only while a base checkpoint is being recorded.
    rec: Option<Box<RecState>>,
}

impl Tableau {
    fn load(&mut self, p: &Problem) {
        let mut ncols = p.vars.len();
        for c in p.eqs.iter().chain(&p.geqs) {
            ncols = ncols.max(c.expr().coeffs().len());
        }
        self.ncols = ncols;
        self.base_len = p.vars.len();
        self.materialized = p.vars.len();
        self.base_vars = Arc::clone(&p.vars);
        self.stride = ncols + HEADROOM;
        self.flags.clear();
        for v in p.vars.iter() {
            let mut f = 0u8;
            if v.protected {
                f |= F_PROTECTED;
            }
            if v.dead {
                f |= F_DEAD;
            }
            if v.pinned {
                f |= F_PINNED;
            }
            if v.kind == VarKind::Wildcard {
                f |= F_WILDCARD;
            }
            self.flags.push(f);
        }
        self.flags.resize(ncols, F_WILDCARD);
        self.eqs.clear();
        self.geqs.clear();
        for c in &p.eqs {
            self.eqs
                .push_row(self.stride, c.expr().coeffs(), c.expr().constant(), c.color);
        }
        for c in &p.geqs {
            self.geqs
                .push_row(self.stride, c.expr().coeffs(), c.expr().constant(), c.color);
        }
        self.known_infeasible = p.known_infeasible;
        self.vars_dirty = false;
    }

    /// Converts back to the interned-row representation. Produces exactly
    /// the `Problem` the row pipeline would hold at this point: same
    /// variable table (wildcards named by column index, like
    /// `Problem::add_wildcard`), same constraint order, colors, and
    /// `known_infeasible` flag.
    fn to_problem(&self) -> Problem {
        let vars = if !self.vars_dirty {
            Arc::clone(&self.base_vars)
        } else {
            let mut v: Vec<VarInfo> = Vec::with_capacity(self.materialized);
            for i in 0..self.materialized {
                if i < self.base_len {
                    let mut info = self.base_vars[i];
                    info.dead = self.flags[i] & F_DEAD != 0;
                    info.pinned = self.flags[i] & F_PINNED != 0;
                    v.push(info);
                } else {
                    v.push(VarInfo {
                        name: Name::Wild(i as u32),
                        kind: VarKind::Wildcard,
                        protected: false,
                        dead: self.flags[i] & F_DEAD != 0,
                        pinned: self.flags[i] & F_PINNED != 0,
                    });
                }
            }
            Arc::new(v)
        };
        let row_to_constraint = |sec: &Section, i: usize, rel: Relation| Constraint {
            row: crate::row::intern(LinExpr::from_dense(
                &sec.row(self.stride, i)[..self.ncols],
                sec.consts[i],
            )),
            rel,
            color: sec.colors[i],
        };
        let eqs = (0..self.eqs.n)
            .map(|i| row_to_constraint(&self.eqs, i, Relation::Zero))
            .collect();
        let geqs = (0..self.geqs.n)
            .map(|i| row_to_constraint(&self.geqs, i, Relation::NonNegative))
            .collect();
        Problem {
            vars,
            eqs,
            geqs,
            known_infeasible: self.known_infeasible,
        }
    }

    /// Full state copy (used for splinters), reusing `self`'s buffers.
    fn copy_from(&mut self, src: &Tableau) {
        self.stride = src.stride;
        self.ncols = src.ncols;
        self.base_len = src.base_len;
        self.materialized = src.materialized;
        self.base_vars = Arc::clone(&src.base_vars);
        self.flags.clear();
        self.flags.extend_from_slice(&src.flags);
        self.eqs.copy_from(src.stride, &src.eqs);
        self.geqs.copy_from(src.stride, &src.geqs);
        self.known_infeasible = src.known_infeasible;
        self.vars_dirty = src.vars_dirty;
    }

    /// Copy of `src` minus every inequality mentioning column `v`, with
    /// `v` marked dead — the `base` problem of `fm_eliminate`.
    fn clone_base_from(&mut self, src: &Tableau, v: usize) {
        self.stride = src.stride;
        self.ncols = src.ncols;
        self.base_len = src.base_len;
        self.materialized = src.materialized;
        self.base_vars = Arc::clone(&src.base_vars);
        self.flags.clear();
        self.flags.extend_from_slice(&src.flags);
        self.eqs.copy_from(src.stride, &src.eqs);
        self.geqs.clear();
        for i in 0..src.geqs.n {
            let row = src.geqs.row(src.stride, i);
            if row[v] == 0 {
                self.geqs
                    .push_row(src.stride, row, src.geqs.consts[i], src.geqs.colors[i]);
            }
        }
        self.known_infeasible = src.known_infeasible;
        self.vars_dirty = src.vars_dirty;
        self.mark_dead(v);
    }

    /// Ensures column `v` is inside the materialized table, minting
    /// anonymous wildcards like `Problem::ensure_var` does.
    fn materialize(&mut self, v: usize) {
        if v >= self.ncols {
            let new_ncols = v + 1;
            if new_ncols > self.stride {
                let new_stride = new_ncols + HEADROOM;
                self.eqs.restride(self.stride, new_stride);
                self.geqs.restride(self.stride, new_stride);
                self.stride = new_stride;
            }
            self.flags.resize(new_ncols, F_WILDCARD);
            self.ncols = new_ncols;
        }
        if v >= self.materialized {
            self.materialized = v + 1;
            self.vars_dirty = true;
        }
    }

    fn mark_dead(&mut self, v: usize) {
        self.materialize(v);
        self.flags[v] |= F_DEAD;
        self.vars_dirty = true;
    }

    fn mark_pinned(&mut self, v: usize) {
        self.materialize(v);
        self.flags[v] |= F_PINNED;
        self.vars_dirty = true;
    }

    /// Mirrors `Problem::add_wildcard`: the new column index is the next
    /// unmaterialized slot (which, like the row pipeline, may alias a
    /// phantom column some row already mentions).
    fn add_wildcard_col(&mut self) -> usize {
        let col = self.materialized;
        self.materialize(col);
        self.flags[col] = F_WILDCARD;
        self.vars_dirty = true;
        col
    }

    #[inline]
    fn is_protected(&self, v: usize) -> bool {
        self.flags[v] & F_PROTECTED != 0
    }

    #[inline]
    fn is_dead(&self, v: usize) -> bool {
        self.flags[v] & F_DEAD != 0
    }

    #[inline]
    fn is_pinned(&self, v: usize) -> bool {
        self.flags[v] & F_PINNED != 0
    }

    // ---- normalize ------------------------------------------------------

    /// Mirrors `Problem::normalize`.
    fn normalize(&mut self) -> Result<Outcome> {
        if self.known_infeasible {
            return Ok(Outcome::Infeasible);
        }
        if self.normalize_eqs()? == Outcome::Infeasible
            || self.normalize_geqs()? == Outcome::Infeasible
        {
            self.known_infeasible = true;
            return Ok(Outcome::Infeasible);
        }
        Ok(Outcome::Consistent)
    }

    /// Mirrors `Problem::normalize_eqs`: gcd reduction + GCD test,
    /// canonical sign, first-encounter dedup with color meet.
    fn normalize_eqs(&mut self) -> Result<Outcome> {
        let stride = self.stride;
        let ncols = self.ncols;
        let mut w = 0usize;
        for r in 0..self.eqs.n {
            let (g, first) = {
                let row = self.eqs.row(stride, r);
                let mut g = 0;
                let mut first = 0 as Coef;
                for &c in &row[..ncols] {
                    if c != 0 && first == 0 {
                        first = c;
                    }
                    g = int::gcd(g, c);
                }
                (g, first)
            };
            if g == 0 {
                if self.eqs.consts[r] != 0 {
                    self.eqs.truncate(stride, w);
                    return Ok(Outcome::Infeasible);
                }
                continue; // 0 == 0
            }
            if self.eqs.consts[r] % g != 0 {
                // GCD test: no integer solution.
                self.eqs.truncate(stride, w);
                return Ok(Outcome::Infeasible);
            }
            if g > 1 {
                for c in &mut self.eqs.row_mut(stride, r)[..ncols] {
                    *c /= g;
                }
                self.eqs.consts[r] /= g;
            }
            if first < 0 {
                for c in &mut self.eqs.row_mut(stride, r)[..ncols] {
                    *c = -*c;
                }
                self.eqs.consts[r] = -self.eqs.consts[r];
            }
            // Dedup against the rows already kept (equality lists are
            // short); identical (coeffs, constant) merges colors with meet.
            let mut dup = None;
            for o in 0..w {
                if self.eqs.consts[o] == self.eqs.consts[r]
                    && self.eqs.row(stride, o)[..ncols] == self.eqs.row(stride, r)[..ncols]
                {
                    dup = Some(o);
                    break;
                }
            }
            match dup {
                Some(o) => {
                    self.eqs.colors[o] = self.eqs.colors[o].meet(self.eqs.colors[r]);
                }
                None => {
                    self.eqs.copy_row_within(stride, r, w);
                    self.eqs.consts[w] = self.eqs.consts[r];
                    self.eqs.colors[w] = self.eqs.colors[r];
                    w += 1;
                }
            }
        }
        self.eqs.truncate(stride, w);
        Ok(Outcome::Consistent)
    }

    /// Mirrors `Problem::normalize_geqs`: gcd tightening, direction
    /// bucketing with tighter-constant merge, opposed-pair coalescing.
    fn normalize_geqs(&mut self) -> Result<Outcome> {
        let mut buckets = std::mem::take(&mut self.scratch.buckets);
        let mut index = std::mem::take(&mut self.scratch.index);
        let mut row_dead = std::mem::take(&mut self.scratch.row_dead);
        buckets.clear();
        index.clear();
        row_dead.clear();
        let r = self.normalize_geqs_inner(&mut buckets, &mut index, &mut row_dead);
        self.scratch.buckets = buckets;
        self.scratch.index = index;
        self.scratch.row_dead = row_dead;
        r
    }

    fn normalize_geqs_inner(
        &mut self,
        buckets: &mut Vec<Bucket>,
        index: &mut HashMap<(u64, u32), u32>,
        row_dead: &mut Vec<bool>,
    ) -> Result<Outcome> {
        let stride = self.stride;
        let ncols = self.ncols;
        let eq_n_before = self.eqs.n;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.orig_next.clear();
        }
        let mut w = 0usize;
        for r in 0..self.geqs.n {
            let g = self.geqs.row(stride, r)[..ncols]
                .iter()
                .fold(0, |g, &c| int::gcd(g, c));
            if g == 0 {
                if self.geqs.consts[r] < 0 {
                    self.geqs.truncate(stride, w);
                    return Ok(Outcome::Infeasible);
                }
                continue; // constant >= 0: tautology
            }
            if g > 1 {
                let k = int::floor_div(self.geqs.consts[r], g);
                for c in &mut self.geqs.row_mut(stride, r)[..ncols] {
                    *c /= g;
                }
                self.geqs.consts[r] = k;
            }

            let (hash, flipped) = direction_hash(&self.geqs.row(stride, r)[..ncols]);
            if let Some(rec) = self.rec.as_deref_mut() {
                // Every row that reaches bucketing contributes to the
                // interaction guard, including rows later coalesced away:
                // a delta row sharing a direction with any of them would
                // change merges or opposed-pair sums.
                rec.hashes.push(hash);
            }
            let mut probe = 0u32;
            let bidx = loop {
                match index.entry((hash, probe)) {
                    Entry::Vacant(e) => {
                        e.insert(buckets.len() as u32);
                        buckets.push(Bucket {
                            rep: w as u32,
                            rep_flipped: flipped,
                            pos: None,
                            neg: None,
                        });
                        break buckets.len() - 1;
                    }
                    Entry::Occupied(e) => {
                        let bi = *e.get() as usize;
                        let b = &buckets[bi];
                        if same_direction(
                            &self.geqs.row(stride, r)[..ncols],
                            &self.geqs.row(stride, b.rep as usize)[..ncols],
                            flipped != b.rep_flipped,
                        ) {
                            break bi;
                        }
                        probe += 1;
                    }
                }
            };
            let bucket = &mut buckets[bidx];
            let slot = if flipped {
                &mut bucket.neg
            } else {
                &mut bucket.pos
            };
            match *slot {
                Some(i) => {
                    // Same direction and orientation, so the coefficient
                    // vectors are identical: only the constant and color
                    // can differ. Keep the tighter constant; equal
                    // constants merge colors.
                    let i = i as usize;
                    if self.geqs.consts[r] < self.geqs.consts[i] {
                        self.geqs.consts[i] = self.geqs.consts[r];
                        self.geqs.colors[i] = self.geqs.colors[r];
                    } else if self.geqs.consts[r] == self.geqs.consts[i] {
                        self.geqs.colors[i] = self.geqs.colors[i].meet(self.geqs.colors[r]);
                    }
                }
                None => {
                    *slot = Some(w as u32);
                    self.geqs.copy_row_within(stride, r, w);
                    self.geqs.consts[w] = self.geqs.consts[r];
                    self.geqs.colors[w] = self.geqs.colors[r];
                    if let Some(rec) = self.rec.as_deref_mut() {
                        let o = rec.orig[r];
                        rec.orig_next.push(o);
                    }
                    w += 1;
                }
            }
        }
        self.geqs.truncate(stride, w);
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.orig = std::mem::take(&mut rec.orig_next);
        }
        row_dead.resize(w, false);

        // Opposed pairs: e + c1 >= 0 and -e + c2 >= 0 require c1 + c2 >= 0.
        for bucket in buckets.iter() {
            if let (Some(i), Some(j)) = (bucket.pos, bucket.neg) {
                let (i, j) = (i as usize, j as usize);
                let sum = self.geqs.consts[i] as i128 + self.geqs.consts[j] as i128;
                if sum < 0 {
                    // Mirror the row pipeline: rows coalesced so far are
                    // dropped, the equalities they minted are discarded.
                    self.geqs.compact(stride, row_dead);
                    self.eqs.truncate(stride, eq_n_before);
                    return Ok(Outcome::Infeasible);
                }
                if sum == 0 {
                    // Coalesce into an equality, reusing the positive
                    // orientation's row content.
                    let color = self.geqs.colors[i].join(self.geqs.colors[j]);
                    let cst = self.geqs.consts[i];
                    let Tableau { eqs, geqs, .. } = self;
                    let row = geqs.row(stride, i);
                    eqs.push_row(stride, row, cst, color);
                    row_dead[i] = true;
                    row_dead[j] = true;
                }
            }
        }
        self.geqs.compact(stride, row_dead);
        if let Some(rec) = self.rec.as_deref_mut() {
            let mut w2 = 0usize;
            for i in 0..rec.orig.len() {
                if !row_dead[i] {
                    rec.orig[w2] = rec.orig[i];
                    w2 += 1;
                }
            }
            rec.orig.truncate(w2);
        }
        if self.eqs.n > eq_n_before {
            // Newly created equalities need their own normalization.
            if self.normalize_eqs()? == Outcome::Infeasible {
                return Ok(Outcome::Infeasible);
            }
        }
        Ok(Outcome::Consistent)
    }

    // ---- equality elimination -------------------------------------------

    /// Mirrors `Problem::eliminate_equalities`.
    fn eliminate_equalities(&mut self, budget: &mut Budget) -> Result<Outcome> {
        let mut modhat_steps = 0usize;
        loop {
            if self.normalize()? == Outcome::Infeasible {
                return Ok(Outcome::Infeasible);
            }
            match self.pick_equality_action() {
                None => return Ok(Outcome::Consistent),
                Some(Action::Substitute(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    self.substitute_step(eq_idx, pivot)?;
                }
                Some(Action::ModHat(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    modhat_steps += 1;
                    if modhat_steps > MODHAT_CAP {
                        self.pin_remaining_equality_vars();
                        return Ok(Outcome::Consistent);
                    }
                    self.mod_hat_step(eq_idx, pivot)?;
                }
                Some(Action::Pin(eq_idx)) => {
                    let stride = self.stride;
                    for j in 0..self.ncols {
                        if self.eqs.coeffs[eq_idx * stride + j] != 0
                            && !self.is_protected(j)
                            && !self.is_dead(j)
                        {
                            self.mark_pinned(j);
                        }
                    }
                }
            }
        }
    }

    fn pin_remaining_equality_vars(&mut self) {
        let stride = self.stride;
        for i in 0..self.eqs.n {
            for j in 0..self.ncols {
                if self.eqs.coeffs[i * stride + j] != 0
                    && !self.is_protected(j)
                    && !self.is_dead(j)
                    && !self.is_pinned(j)
                {
                    self.mark_pinned(j);
                }
            }
        }
    }

    /// Mirrors `Problem::pick_equality_action`, including its tie-breaks:
    /// smallest |coef| wins, wildcards preferred, first equality's
    /// fallback sticks.
    fn pick_equality_action(&self) -> Option<Action> {
        let stride = self.stride;
        let ncols = self.ncols;
        let mut fallback: Option<Action> = None;
        for i in 0..self.eqs.n {
            let row = self.eqs.row(stride, i);
            let mut min_free: Option<(usize, Coef, bool)> = None;
            let mut min_stuck: Option<Coef> = None;
            for (v, &coef) in row[..ncols].iter().enumerate() {
                if coef == 0 || self.is_dead(v) {
                    continue;
                }
                if self.is_protected(v) || self.is_pinned(v) {
                    let a = coef.abs();
                    min_stuck = Some(min_stuck.map_or(a, |m: Coef| m.min(a)));
                } else {
                    let is_wild = self.flags[v] & F_WILDCARD != 0;
                    let a = coef.abs();
                    let better = match min_free {
                        None => true,
                        Some((_, b, bw)) => (a, !is_wild) < (b, !bw),
                    };
                    if better {
                        min_free = Some((v, a, is_wild));
                    }
                }
            }
            let Some((v, a, _)) = min_free else { continue };
            if a == 1 {
                return Some(Action::Substitute(i, v));
            }
            if fallback.is_none() {
                fallback = Some(match min_stuck {
                    Some(s) if s < a => Action::Pin(i),
                    _ => Action::ModHat(i, v),
                });
            }
        }
        fallback
    }

    /// Unit-pivot substitution: mirrors the `Action::Substitute` arm of
    /// `Problem::eliminate_equalities`.
    fn substitute_step(&mut self, eq_idx: usize, pivot: usize) -> Result<()> {
        let stride = self.stride;
        let ncols = self.ncols;
        let mut repl = std::mem::take(&mut self.scratch.row);
        repl.clear();
        repl.extend_from_slice(&self.eqs.row(stride, eq_idx)[..ncols]);
        let a = repl[pivot];
        debug_assert_eq!(a.abs(), 1);
        let mut rc = self.eqs.consts[eq_idx];
        let color = self.eqs.colors[eq_idx];
        // v = -a * (eq - a*v): zero the pivot, scale by -a (a = ±1).
        repl[pivot] = 0;
        if a == 1 {
            for c in repl.iter_mut() {
                *c = -*c;
            }
            rc = -rc;
        }
        self.eqs.swap_remove(stride, eq_idx);
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.last_rc = rc;
        }
        let r = self.substitute_col(pivot, &repl, rc, color);
        self.scratch.row = repl;
        r
    }

    /// Mirrors `Problem::substitute_var`: row axpy into every constraint
    /// whose pivot coefficient is non-zero, then mark the column dead.
    fn substitute_col(
        &mut self,
        v: usize,
        repl: &[Coef],
        repl_const: Coef,
        color: Color,
    ) -> Result<()> {
        let stride = self.stride;
        let ncols = self.ncols;
        let Tableau { eqs, geqs, .. } = self;
        for sec in [eqs, geqs] {
            for i in 0..sec.n {
                let off = i * stride;
                let c = sec.coeffs[off + v];
                if c == 0 {
                    continue;
                }
                sec.coeffs[off + v] = 0;
                let row = &mut sec.coeffs[off..off + ncols];
                for (j, &rc) in repl[..ncols].iter().enumerate() {
                    if rc != 0 {
                        row[j] = int::mul_add(c, rc, row[j])?;
                    }
                }
                sec.consts[i] = int::mul_add(c, repl_const, sec.consts[i])?;
                sec.colors[i] = sec.colors[i].join(color);
            }
        }
        self.mark_dead(v);
        Ok(())
    }

    /// Mirrors `Problem::mod_hat_step`: introduce σ, build the reduced
    /// equation's replacement by a column scan, substitute.
    fn mod_hat_step(&mut self, eq_idx: usize, k: usize) -> Result<()> {
        let a_k = self.eqs.coeffs[eq_idx * self.stride + k];
        debug_assert!(a_k.abs() > 1);
        let m = int::narrow(a_k.unsigned_abs() as i128 + 1)?;
        let sigma = self.add_wildcard_col();
        let stride = self.stride; // may have re-strided
        let ncols = self.ncols;
        let mut repl = std::mem::take(&mut self.scratch.row);
        repl.clear();
        repl.resize(ncols, 0);
        {
            let row = self.eqs.row(stride, eq_idx);
            for j in 0..ncols {
                repl[j] = int::mod_hat(row[j], m);
            }
        }
        let mut rc = int::mod_hat(self.eqs.consts[eq_idx], m);
        repl[sigma] = -m;
        // The reduced equation's pivot coefficient is -sign(a_k): solving
        // for the pivot zeroes it and scales the rest by sign(a_k).
        let s = a_k.signum();
        debug_assert_eq!(repl[k], -s);
        repl[k] = 0;
        if s < 0 {
            for c in repl.iter_mut() {
                *c = -*c;
            }
            rc = -rc;
        }
        let color = self.eqs.colors[eq_idx];
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.last_rc = rc;
        }
        let r = self.substitute_col(k, &repl, rc, color);
        self.scratch.row = repl;
        r
    }

    // ---- inequality elimination -----------------------------------------

    /// Mirrors `Problem::choose_elimination_var` with a single fused
    /// column-statistics pass instead of per-variable rescans.
    fn choose_elimination_var(&mut self) -> Option<usize> {
        let stride = self.stride;
        let ncols = self.ncols;
        let mut stats = std::mem::take(&mut self.scratch.stats);
        stats.clear();
        stats.resize(ncols, ColStat::default());
        for i in 0..self.eqs.n {
            for (j, &c) in self.eqs.row(stride, i)[..ncols].iter().enumerate() {
                if c != 0 {
                    stats[j].occurs = true;
                    stats[j].in_eq = true;
                }
            }
        }
        for i in 0..self.geqs.n {
            for (j, &c) in self.geqs.row(stride, i)[..ncols].iter().enumerate() {
                if c > 0 {
                    stats[j].occurs = true;
                    stats[j].n_l += 1;
                    stats[j].max_b = stats[j].max_b.max(c);
                } else if c < 0 {
                    stats[j].occurs = true;
                    stats[j].n_u += 1;
                    stats[j].max_a = stats[j].max_a.max(-c);
                }
            }
        }
        let mut best: Option<(usize, bool, usize)> = None;
        for (v, st) in stats.iter().enumerate() {
            if !st.occurs
                || self.is_dead(v)
                || self.is_protected(v)
                || self.is_pinned(v)
                || st.in_eq
            {
                continue;
            }
            let exact = st.n_l == 0 || st.n_u == 0 || st.max_a == 1 || st.max_b == 1;
            let cost = st.n_l as usize * st.n_u as usize;
            let better = match best {
                None => true,
                Some((_, bex, bcost)) => (!exact, cost) < (!bex, bcost),
            };
            if better {
                best = Some((v, exact, cost));
            }
        }
        self.scratch.stats = stats;
        best.map(|(v, _, _)| v)
    }

    /// Mirrors `Problem::fm_eliminate`. The exact case rewrites this
    /// tableau in place (the row pipeline's `Exact(problem)` payload);
    /// the approximate case leaves it untouched and returns pooled
    /// dark/real/splinter tableaus.
    fn fm_eliminate(&mut self, v: usize, budget: &mut Budget) -> Result<ElimT> {
        let mut idx_lo = std::mem::take(&mut self.scratch.idx_lo);
        let mut idx_hi = std::mem::take(&mut self.scratch.idx_hi);
        let mut bounds = std::mem::take(&mut self.scratch.bounds);
        let mut srow = std::mem::take(&mut self.scratch.row);
        let r = self.fm_inner(v, budget, &mut idx_lo, &mut idx_hi, &mut bounds, &mut srow);
        self.scratch.idx_lo = idx_lo;
        self.scratch.idx_hi = idx_hi;
        self.scratch.bounds = bounds;
        self.scratch.row = srow;
        r
    }

    fn fm_inner(
        &mut self,
        v: usize,
        budget: &mut Budget,
        idx_lo: &mut Vec<u32>,
        idx_hi: &mut Vec<u32>,
        bounds: &mut Section,
        srow: &mut Vec<Coef>,
    ) -> Result<ElimT> {
        let stride = self.stride;
        let ncols = self.ncols;
        debug_assert!(
            (0..self.eqs.n).all(|i| self.eqs.coeffs[i * stride + v] == 0),
            "fm_eliminate called with column {v} still in an equality"
        );
        idx_lo.clear();
        idx_hi.clear();
        for i in 0..self.geqs.n {
            let c = self.geqs.coeffs[i * stride + v];
            if c > 0 {
                idx_lo.push(i as u32);
            } else if c < 0 {
                idx_hi.push(i as u32);
            }
        }
        if idx_lo.is_empty() || idx_hi.is_empty() {
            // Unbounded in one direction: drop every bound on v.
            self.geqs.retain_zero_col(stride, v);
            self.mark_dead(v);
            return Ok(ElimT::Exact);
        }
        budget.spend(idx_lo.len() * idx_hi.len())?;

        // Whether any pair has (a-1)(b-1) != 0; every lower crosses every
        // upper, so this is "some lower has b > 1 and some upper a > 1".
        let inexact = idx_lo
            .iter()
            .any(|&i| self.geqs.coeffs[i as usize * stride + v] > 1)
            && idx_hi
                .iter()
                .any(|&i| self.geqs.coeffs[i as usize * stride + v] < -1);

        srow.clear();
        srow.resize(ncols, 0);

        if !inexact {
            // Exact: rewrite in place. Save the bound rows, compact the
            // zero-coefficient rows, then append the combined rows
            // lower-major exactly like the row pipeline pushes them.
            bounds.clear();
            for &i in idx_lo.iter().chain(idx_hi.iter()) {
                let i = i as usize;
                bounds.push_row(
                    stride,
                    self.geqs.row(stride, i),
                    self.geqs.consts[i],
                    self.geqs.colors[i],
                );
            }
            let nl = idx_lo.len();
            let nu = idx_hi.len();
            self.geqs.retain_zero_col(stride, v);
            self.mark_dead(v);
            for li in 0..nl {
                for ui in 0..nu {
                    let cst = combine_pair(
                        bounds.row(stride, li),
                        bounds.consts[li],
                        bounds.row(stride, nl + ui),
                        bounds.consts[nl + ui],
                        v,
                        ncols,
                        srow,
                    )?;
                    let color = bounds.colors[li].join(bounds.colors[nl + ui]);
                    self.geqs.push_row(stride, &srow[..ncols], cst, color);
                }
            }
            return Ok(ElimT::Exact);
        }

        // Approximate: build dark and real shadows plus splinters without
        // touching `self`.
        let mut dark = acquire();
        dark.clone_base_from(self, v);
        let mut real = acquire();
        real.clone_base_from(self, v);
        for &li in idx_lo.iter() {
            let li = li as usize;
            for &ui in idx_hi.iter() {
                let ui = ui as usize;
                let lrow = self.geqs.row(stride, li);
                let urow = self.geqs.row(stride, ui);
                let b = lrow[v];
                let a = -urow[v];
                let cst = combine_pair(
                    lrow,
                    self.geqs.consts[li],
                    urow,
                    self.geqs.consts[ui],
                    v,
                    ncols,
                    srow,
                )?;
                let color = self.geqs.colors[li].join(self.geqs.colors[ui]);
                real.geqs.push_row(stride, &srow[..ncols], cst, color);
                let slack = (a as i128 - 1) * (b as i128 - 1);
                if slack == 0 {
                    dark.geqs.push_row(stride, &srow[..ncols], cst, color);
                } else {
                    let adj = int::narrow(-slack)?;
                    let dc = int::narrow(cst as i128 + adj as i128)?;
                    dark.geqs.push_row(stride, &srow[..ncols], dc, color);
                }
            }
        }

        // Splinters: for each lower bound b·z ≥ β, pin b·z = β + i.
        let a_max = idx_hi
            .iter()
            .map(|&i| -self.geqs.coeffs[i as usize * stride + v])
            .max()
            .expect("uppers nonempty");
        let mut splinters = Vec::new();
        for &li in idx_lo.iter() {
            let li = li as usize;
            let b = self.geqs.coeffs[li * stride + v];
            let num = a_max as i128 * b as i128 - a_max as i128 - b as i128;
            let max_i = int::floor_div(int::narrow(num)?, a_max);
            for i in 0..=max_i.max(-1) {
                budget.spend(1)?;
                let mut s = acquire();
                s.copy_from(self);
                let cst = int::narrow(self.geqs.consts[li] as i128 - i as i128)?;
                s.eqs.push_row(
                    stride,
                    self.geqs.row(stride, li),
                    cst,
                    self.geqs.colors[li],
                );
                splinters.push(s);
            }
        }
        Ok(ElimT::Approx {
            dark,
            real,
            splinters,
        })
    }
}

/// `a·L + b·U` with `a = -U[v] > 0`, `b = L[v] > 0`, written into `out`.
/// The per-column checked arithmetic matches `LinExpr::combine` call for
/// call: `mul_add(a, l_j, 0)` when `l_j != 0`, then `mul_add(b, u_j, acc)`
/// when `u_j != 0`; constants unconditionally. Returns the combined
/// constant.
fn combine_pair(
    lrow: &[Coef],
    lconst: Coef,
    urow: &[Coef],
    uconst: Coef,
    v: usize,
    ncols: usize,
    out: &mut [Coef],
) -> Result<Coef> {
    let b = lrow[v];
    let a = -urow[v];
    debug_assert!(a > 0 && b > 0);
    for j in 0..ncols {
        let mut acc = 0;
        if lrow[j] != 0 {
            acc = int::mul_add(a, lrow[j], 0)?;
        }
        if urow[j] != 0 {
            acc = int::mul_add(b, urow[j], acc)?;
        }
        out[j] = acc;
    }
    debug_assert_eq!(out[v], 0);
    let mut cst = int::mul_add(a, lconst, 0)?;
    cst = int::mul_add(b, uconst, cst)?;
    Ok(cst)
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Substitute(usize, usize),
    ModHat(usize, usize),
    Pin(usize),
}

// ---- base checkpoints -----------------------------------------------------

/// What one equality-elimination pass did to the tableau, as far as a
/// delta row is concerned. `Step` is a substitution (unit-pivot or mod̂):
/// delta rows mentioning the pivot take the same axpy the base rows took
/// (the replacement row lives in the checkpoint's flat `trail_repls`
/// arena). `Noop` covers Pin actions, the mod̂-cap fallback, and the
/// terminal pass — flag-only effects that never touch row content.
#[derive(Debug, Clone, Copy)]
enum TrailAction {
    Step {
        pivot: usize,
        repl_start: usize,
        repl_end: usize,
        rc: Coef,
    },
    Noop,
}

/// One pass of the recorded equality-elimination loop: the column count
/// the pass's normalize ran at, the sorted direction hashes of every
/// base inequality that entered bucketing (the interaction guard, a
/// range into the checkpoint's flat `trail_hashes`), the action taken,
/// and its budget spend.
#[derive(Debug, Clone, Copy)]
struct TrailPass {
    ncols: usize,
    hash_start: usize,
    hash_end: usize,
    action: TrailAction,
    spend: usize,
}

/// The recorded trail under construction: per-pass records plus the two
/// flat arenas they index, so a checkpoint costs three allocations for
/// its whole trail instead of two per pass.
#[derive(Debug, Default)]
struct TrailBuf {
    passes: Vec<TrailPass>,
    hashes: Vec<u64>,
    repls: Vec<Coef>,
}

/// A solved-to-the-resume-point snapshot of a delta-eligible base
/// problem: the tableau state after `eliminate_equalities` returned
/// `Consistent`, plus the per-pass trail needed to map a delta's
/// constraints into the reduced variable space. Shared read-only across
/// threads; loading it into a pooled [`Tableau`] and replaying a delta
/// against the trail reproduces, bit for bit, the state the from-scratch
/// solve of `base ∧ delta` reaches after its equality-elimination
/// prefix — or reports `None`, in which case the caller falls back to
/// the from-scratch path.
#[derive(Debug)]
pub(crate) struct Checkpoint {
    resumable: bool,
    trail: Vec<TrailPass>,
    /// Flat arena of the per-pass sorted direction-hash sets.
    trail_hashes: Vec<u64>,
    /// Flat arena of the per-pass substitution replacement rows.
    trail_repls: Vec<Coef>,
    ncols: usize,
    base_len: usize,
    materialized: usize,
    flags: Vec<u8>,
    vars_dirty: bool,
    base_vars: Arc<Vec<VarInfo>>,
    /// Number of equality rows in the snapshot; the first `eq_n` entries
    /// of `consts`/`colors` (and rows of `coeffs`) are equalities, the
    /// rest inequalities.
    eq_n: usize,
    /// Dense `ncols`-wide rows, equalities first then inequalities.
    coeffs: Vec<Coef>,
    consts: Vec<Coef>,
    colors: Vec<Color>,
    /// For each surviving inequality row, the index of the canonical
    /// input row it descends from (first-encounter representative),
    /// used to interleave delta rows at their merged positions.
    geq_orig: Vec<u32>,
}

/// A delta inequality transformed through the recorded base trail,
/// ready to be interleaved into the restored tableau: `p` is its
/// insertion rank in the merged canonical inequality list (delta rows
/// stay in delta order among themselves), and the dense row is in the
/// checkpoint's reduced variable space.
#[derive(Debug)]
pub(crate) struct DeltaRow {
    p: u32,
    coeffs: Vec<Coef>,
    cst: Coef,
}

/// Reusable buffers for checkpoint recording and delta replay, parked
/// per thread like the tableau pool: a warm replay draws its row storage
/// and per-pass marks from here instead of the allocator.
#[derive(Default)]
struct ReplayScratch {
    dead: Vec<bool>,
    dirs: Vec<(u64, bool)>,
    /// Empty row vector (retaining capacity) handed to the next replay.
    rows: Vec<DeltaRow>,
    /// Recycled coefficient rows for [`DeltaRow`]s.
    spare: Vec<Vec<Coef>>,
    /// Recording state reused across `record_checkpoint` calls.
    rec: Option<Box<RecState>>,
}

/// How many coefficient rows a thread's replay scratch parks.
const REPLAY_SPARE_CAP: usize = 32;

thread_local! {
    static REPLAY: RefCell<ReplayScratch> = RefCell::new(ReplayScratch::default());
}

/// Returns a replay's delta rows to the thread's scratch so the next
/// replay (on any checkpoint) reuses their storage.
pub(crate) fn recycle_rows(mut rows: Vec<DeltaRow>) {
    REPLAY.with(|s| {
        let s = &mut *s.borrow_mut();
        for r in rows.drain(..) {
            if s.spare.len() < REPLAY_SPARE_CAP {
                s.spare.push(r.coeffs);
            }
        }
        if rows.capacity() > s.rows.capacity() {
            s.rows = rows;
        }
    });
}

impl Tableau {
    /// Duplicate of [`Tableau::eliminate_equalities`] that records one
    /// [`TrailPass`] per loop pass. Runs with an effectively unlimited
    /// budget (recording happens outside any query's budget); any error
    /// or infeasible outcome makes the checkpoint non-resumable.
    fn record_eliminate(&mut self, budget: &mut Budget, trail: &mut TrailBuf) -> Result<Outcome> {
        let mut modhat_steps = 0usize;
        loop {
            let pass_ncols = self.ncols;
            self.rec.as_deref_mut().expect("recording state").hashes.clear();
            if self.normalize()? == Outcome::Infeasible {
                return Ok(Outcome::Infeasible);
            }
            let hash_start = trail.hashes.len();
            {
                let rec = self.rec.as_deref_mut().expect("recording state");
                rec.hashes.sort_unstable();
                rec.hashes.dedup();
                trail.hashes.extend_from_slice(&rec.hashes);
            }
            let hash_end = trail.hashes.len();
            let step = |trail: &mut TrailBuf, scratch_row: &[Coef], rc: Coef, pivot: usize| {
                let repl_start = trail.repls.len();
                trail.repls.extend_from_slice(scratch_row);
                TrailAction::Step {
                    pivot,
                    repl_start,
                    repl_end: trail.repls.len(),
                    rc,
                }
            };
            match self.pick_equality_action() {
                None => {
                    trail.passes.push(TrailPass {
                        ncols: pass_ncols,
                        hash_start,
                        hash_end,
                        action: TrailAction::Noop,
                        spend: 0,
                    });
                    return Ok(Outcome::Consistent);
                }
                Some(Action::Substitute(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    self.substitute_step(eq_idx, pivot)?;
                    let rc = self.rec.as_deref().expect("recording state").last_rc;
                    let action = step(trail, &self.scratch.row, rc, pivot);
                    trail.passes.push(TrailPass {
                        ncols: pass_ncols,
                        hash_start,
                        hash_end,
                        action,
                        spend: 1,
                    });
                }
                Some(Action::ModHat(eq_idx, pivot)) => {
                    budget.spend(1)?;
                    modhat_steps += 1;
                    if modhat_steps > MODHAT_CAP {
                        self.pin_remaining_equality_vars();
                        trail.passes.push(TrailPass {
                            ncols: pass_ncols,
                            hash_start,
                            hash_end,
                            action: TrailAction::Noop,
                            spend: 1,
                        });
                        return Ok(Outcome::Consistent);
                    }
                    self.mod_hat_step(eq_idx, pivot)?;
                    let rc = self.rec.as_deref().expect("recording state").last_rc;
                    let action = step(trail, &self.scratch.row, rc, pivot);
                    trail.passes.push(TrailPass {
                        ncols: pass_ncols,
                        hash_start,
                        hash_end,
                        action,
                        spend: 1,
                    });
                }
                Some(Action::Pin(eq_idx)) => {
                    let stride = self.stride;
                    for j in 0..self.ncols {
                        if self.eqs.coeffs[eq_idx * stride + j] != 0
                            && !self.is_protected(j)
                            && !self.is_dead(j)
                        {
                            self.mark_pinned(j);
                        }
                    }
                    trail.passes.push(TrailPass {
                        ncols: pass_ncols,
                        hash_start,
                        hash_end,
                        action: TrailAction::Noop,
                        spend: 0,
                    });
                }
            }
        }
    }
}

/// Solves `base` up to the equality-elimination resume point and records
/// the checkpoint. `base` must be the canonical base of a `PairContext`
/// (for projection checkpoints, with the keep-set's protected flags
/// already applied). A base whose elimination is infeasible, overflows,
/// or mentions columns beyond its variable table yields a non-resumable
/// checkpoint — every query then takes the from-scratch path.
pub(crate) fn record_checkpoint(base: &Problem) -> Checkpoint {
    let unresumable = || Checkpoint {
        resumable: false,
        trail: Vec::new(),
        ncols: 0,
        base_len: 0,
        materialized: 0,
        flags: Vec::new(),
        vars_dirty: false,
        base_vars: Arc::new(Vec::new()),
        trail_hashes: Vec::new(),
        trail_repls: Vec::new(),
        eq_n: 0,
        coeffs: Vec::new(),
        consts: Vec::new(),
        colors: Vec::new(),
        geq_orig: Vec::new(),
    };
    let mut t = acquire();
    t.load(base);
    if t.ncols != t.base_len {
        // Phantom columns (rows wider than the table) complicate rank
        // tracking; such bases never arise from pair contexts.
        release(t);
        return unresumable();
    }
    let mut rec = REPLAY
        .with(|s| s.borrow_mut().rec.take())
        .unwrap_or_default();
    rec.hashes.clear();
    rec.orig.clear();
    rec.orig.extend(0..t.geqs.n as u32);
    rec.orig_next.clear();
    rec.last_rc = 0;
    t.rec = Some(rec);
    let mut trail = TrailBuf::default();
    // Recording is charged to a throwaway budget: it is shared setup work
    // done once per base, outside any query's accounting.
    let mut budget = Budget::new(usize::MAX);
    let outcome = t.record_eliminate(&mut budget, &mut trail);
    let cp = match outcome {
        Ok(Outcome::Consistent) => {
            let rec = t.rec.as_deref().expect("recording state");
            let ncols = t.ncols;
            let mut coeffs = Vec::with_capacity((t.eqs.n + t.geqs.n) * ncols);
            let mut consts = Vec::with_capacity(t.eqs.n + t.geqs.n);
            let mut colors = Vec::with_capacity(t.eqs.n + t.geqs.n);
            for sec in [&t.eqs, &t.geqs] {
                for i in 0..sec.n {
                    coeffs.extend_from_slice(&sec.row(t.stride, i)[..ncols]);
                }
                consts.extend_from_slice(&sec.consts);
                colors.extend_from_slice(&sec.colors);
            }
            debug_assert_eq!(rec.orig.len(), t.geqs.n);
            Checkpoint {
                resumable: true,
                trail: trail.passes,
                trail_hashes: trail.hashes,
                trail_repls: trail.repls,
                ncols,
                base_len: t.base_len,
                materialized: t.materialized,
                flags: t.flags.clone(),
                vars_dirty: t.vars_dirty,
                base_vars: Arc::clone(&t.base_vars),
                eq_n: t.eqs.n,
                coeffs,
                consts,
                colors,
                geq_orig: rec.orig.clone(),
            }
        }
        _ => unresumable(),
    };
    if let Some(rec) = t.rec.take() {
        REPLAY.with(|s| s.borrow_mut().rec = Some(rec));
    }
    release(t);
    cp
}

impl Checkpoint {
    /// Pure phase of a resume: maps the canonical delta constraints
    /// through the recorded trail. Returns the transformed delta rows
    /// with their merged insertion ranks, or `None` whenever exact step
    /// parity with the from-scratch solve of `base ∧ delta` is not
    /// guaranteed — the caller must then rebuild via the from-scratch
    /// path (which is definitionally correct, including for deltas that
    /// make the problem infeasible or overflow mid-elimination).
    ///
    /// Mutates nothing: no tableau is touched and no budget is charged,
    /// so a `None` costs only the replay attempt itself.
    pub(crate) fn replay_delta(
        &self,
        base: &Problem,
        delta_vars: usize,
        deqs: &[Constraint],
        dgeqs: &[Constraint],
    ) -> Option<Vec<DeltaRow>> {
        use std::cmp::Ordering;
        if !self.resumable || delta_vars != 0 {
            return None;
        }
        // Delta equalities must vanish in the merge (each a duplicate of
        // a base equality): any new equality changes which eliminations
        // the merged solve picks.
        {
            let mut b = 0usize;
            for d in deqs {
                while b < base.eqs.len()
                    && crate::canon::cmp_constraints(&base.eqs[b], d) == Ordering::Less
                {
                    b += 1;
                }
                if b >= base.eqs.len()
                    || crate::canon::cmp_constraints(&base.eqs[b], d) != Ordering::Equal
                {
                    return None;
                }
            }
        }
        REPLAY.with(|cell| {
            let s = &mut *cell.borrow_mut();
            let mut rows = std::mem::take(&mut s.rows);
            debug_assert!(rows.is_empty());
            if self.replay_rows(base, dgeqs, &mut rows, &mut s.dead, &mut s.dirs, &mut s.spare) {
                Some(rows)
            } else {
                for r in rows.drain(..) {
                    if s.spare.len() < REPLAY_SPARE_CAP {
                        s.spare.push(r.coeffs);
                    }
                }
                s.rows = rows;
                None
            }
        })
    }

    /// The body of [`Checkpoint::replay_delta`] working on the thread's
    /// scratch buffers; `false` means "rebuild from scratch".
    fn replay_rows(
        &self,
        base: &Problem,
        dgeqs: &[Constraint],
        rows: &mut Vec<DeltaRow>,
        dead: &mut Vec<bool>,
        dirs: &mut Vec<(u64, bool)>,
        spare: &mut Vec<Vec<Coef>>,
    ) -> bool {
        use std::cmp::Ordering;
        // Dense delta rows plus their merged insertion ranks. Delta rows
        // comparing equal to a base row are dropped, exactly as
        // `merge_sorted` deduplicates them.
        let mut b = 0usize;
        for d in dgeqs {
            while b < base.geqs.len()
                && crate::canon::cmp_constraints(&base.geqs[b], d) == Ordering::Less
            {
                b += 1;
            }
            if b < base.geqs.len()
                && crate::canon::cmp_constraints(&base.geqs[b], d) == Ordering::Equal
            {
                continue;
            }
            let e = d.expr();
            if e.coeffs().len() > self.base_len {
                return false;
            }
            let mut coeffs = spare.pop().unwrap_or_default();
            coeffs.clear();
            coeffs.resize(self.ncols, 0);
            coeffs[..e.coeffs().len()].copy_from_slice(e.coeffs());
            rows.push(DeltaRow {
                p: b as u32,
                coeffs,
                cst: e.constant(),
            });
        }
        // Replay the trail. Each pass mirrors what the merged solve's
        // normalize + action would do to these rows, with guards wherever
        // a delta row could interact with base rows (and thereby change
        // the recorded base steps).
        for pass in &self.trail {
            let nc = pass.ncols;
            let hashes = &self.trail_hashes[pass.hash_start..pass.hash_end];
            dead.clear();
            dead.resize(rows.len(), false);
            dirs.clear();
            dirs.resize(rows.len(), (0, false));
            for i in 0..rows.len() {
                // GCD-tighten over the pass's column window.
                let g = rows[i].coeffs[..nc].iter().fold(0, |g, &c| int::gcd(g, c));
                if g == 0 {
                    if rows[i].cst < 0 {
                        // Immediate contradiction: the merged solve stops
                        // inside normalize. Rebuild to reproduce its
                        // truncation state and spend point exactly.
                        return false;
                    }
                    dead[i] = true;
                    continue;
                }
                if g > 1 {
                    rows[i].cst = int::floor_div(rows[i].cst, g);
                    for c in &mut rows[i].coeffs[..nc] {
                        *c /= g;
                    }
                }
                let (hash, flipped) = direction_hash(&rows[i].coeffs[..nc]);
                if hashes.binary_search(&hash).is_ok() {
                    // Shares a direction hash with a base row this pass:
                    // the merged solve could merge constants, coalesce an
                    // opposed pair, or reorder a probe chain.
                    return false;
                }
                dirs[i] = (hash, flipped);
                // Delta-local bucketing: the first live row with the same
                // direction and orientation is the slot (first-encounter,
                // like the real normalize); keep the tighter constant
                // there (colors are all black here). Opposed orientations
                // are checked pairwise below.
                for j in 0..i {
                    if dead[j]
                        || dirs[j] != (hash, flipped)
                        || !same_direction(&rows[i].coeffs[..nc], &rows[j].coeffs[..nc], false)
                    {
                        continue;
                    }
                    if rows[i].cst < rows[j].cst {
                        rows[j].cst = rows[i].cst;
                    }
                    dead[i] = true;
                    break;
                }
            }
            // Opposed pairs among surviving delta rows: a negative sum is
            // a contradiction, a zero sum coalesces into a new equality —
            // both change the recorded base steps, so rebuild.
            for i in 0..rows.len() {
                if dead[i] {
                    continue;
                }
                for j in i + 1..rows.len() {
                    if dead[j] || dirs[i].0 != dirs[j].0 || dirs[i].1 == dirs[j].1 {
                        continue;
                    }
                    if !same_direction(&rows[j].coeffs[..nc], &rows[i].coeffs[..nc], true) {
                        continue;
                    }
                    let sum = rows[i].cst as i128 + rows[j].cst as i128;
                    if sum <= 0 {
                        return false;
                    }
                }
            }
            let mut keep = 0usize;
            for i in 0..rows.len() {
                if !dead[i] {
                    rows.swap(keep, i);
                    keep += 1;
                }
            }
            for r in rows.drain(keep..) {
                if spare.len() < REPLAY_SPARE_CAP {
                    spare.push(r.coeffs);
                }
            }
            // Apply the pass's substitution to rows mentioning the pivot.
            if let TrailAction::Step {
                pivot,
                repl_start,
                repl_end,
                rc,
            } = pass.action
            {
                let repl = &self.trail_repls[repl_start..repl_end];
                for row in rows.iter_mut() {
                    let c = row.coeffs[pivot];
                    if c == 0 {
                        continue;
                    }
                    row.coeffs[pivot] = 0;
                    for (j, &rj) in repl.iter().enumerate() {
                        if rj != 0 {
                            let Ok(v) = int::mul_add(c, rj, row.coeffs[j]) else {
                                return false;
                            };
                            row.coeffs[j] = v;
                        }
                    }
                    let Ok(v) = int::mul_add(c, rc, row.cst) else {
                        return false;
                    };
                    row.cst = v;
                }
            }
        }
        true
    }

    /// Restores the snapshot into `t` with the transformed delta rows
    /// interleaved at their merged positions: a delta row with insertion
    /// rank `p` precedes every base survivor descending from canonical
    /// input row `p` or later.
    fn restore_into(&self, t: &mut Tableau, rows: &[DeltaRow]) {
        debug_assert!(self.resumable);
        t.ncols = self.ncols;
        t.stride = self.ncols + HEADROOM;
        t.base_len = self.base_len;
        t.materialized = self.materialized;
        t.base_vars = Arc::clone(&self.base_vars);
        t.flags.clear();
        t.flags.extend_from_slice(&self.flags);
        t.known_infeasible = false;
        t.vars_dirty = self.vars_dirty;
        t.eqs.clear();
        for i in 0..self.eq_n {
            t.eqs.push_row(
                t.stride,
                &self.coeffs[i * self.ncols..(i + 1) * self.ncols],
                self.consts[i],
                self.colors[i],
            );
        }
        t.geqs.clear();
        let nb = self.consts.len() - self.eq_n;
        let (mut bi, mut di) = (0usize, 0usize);
        while bi < nb || di < rows.len() {
            let take_delta = di < rows.len()
                && (bi >= nb || rows[di].p <= self.geq_orig[bi]);
            if take_delta {
                let r = &rows[di];
                t.geqs
                    .push_row(t.stride, &r.coeffs[..self.ncols], r.cst, Color::Black);
                di += 1;
            } else {
                let i = self.eq_n + bi;
                t.geqs.push_row(
                    t.stride,
                    &self.coeffs[i * self.ncols..(i + 1) * self.ncols],
                    self.consts[i],
                    self.colors[i],
                );
                bi += 1;
            }
        }
    }

    /// Charges the recorded per-pass spends in order, reproducing the
    /// from-scratch elimination's budget trajectory (including the exact
    /// exhaustion point).
    fn charge_trail(&self, budget: &mut Budget) -> Result<()> {
        for pass in &self.trail {
            if pass.spend > 0 {
                budget.spend(pass.spend)?;
            }
        }
        Ok(())
    }
}

/// Satisfiability resumed from a base checkpoint: charges exactly what
/// the from-scratch `sat` entry plus the recorded elimination passes
/// would have charged, restores the snapshot with the delta rows
/// interleaved, and continues the solve loop.
pub(crate) fn resume_sat(cp: &Checkpoint, rows: &[DeltaRow], budget: &mut Budget) -> Result<bool> {
    budget.spend(1)?;
    cp.charge_trail(budget)?;
    let mut t = acquire();
    cp.restore_into(&mut t, rows);
    let r = sat_loop(&mut t, budget, 0);
    release(t);
    r
}

/// Projection resumed from a base checkpoint, mirroring `project_parts`:
/// the real-shadow pass first (no entry spend), then the core pass (entry
/// spend plus its own replay of the elimination charges, exactly like
/// the from-scratch solve re-eliminates on its second tableau).
pub(crate) fn resume_project_parts(
    cp: &Checkpoint,
    rows: &[DeltaRow],
    budget: &mut Budget,
) -> Result<(Problem, Problem, Vec<Problem>, bool)> {
    cp.charge_trail(budget)?;
    let mut rt = acquire();
    cp.restore_into(&mut rt, rows);
    let real = project_real_t(rt, budget)?;
    budget.spend(1)?;
    cp.charge_trail(budget)?;
    let mut t = acquire();
    cp.restore_into(&mut t, rows);
    let mut dark_out = None;
    let mut splinters = Vec::new();
    let mut exact = true;
    project_core_loop(t, budget, &mut dark_out, &mut splinters, &mut exact, 0)?;
    let dark = dark_out.expect("projection produces a dark shadow");
    Ok((real, dark, splinters, exact))
}

// ---- drivers -------------------------------------------------------------

/// Dense mirror of `sat::sat_rec`.
fn sat_t(t: &mut Tableau, budget: &mut Budget, depth: usize) -> Result<bool> {
    budget.spend(1)?;
    if depth > MAX_DEPTH {
        return Err(crate::Error::TooComplex { budget: MAX_DEPTH });
    }
    sat_loop(t, budget, depth)
}

/// The body of [`sat_t`] after its entry spend and depth check — the
/// resume point for checkpointed bases.
fn sat_loop(t: &mut Tableau, budget: &mut Budget, depth: usize) -> Result<bool> {
    loop {
        if t.eliminate_equalities(budget)? == Outcome::Infeasible {
            return Ok(false);
        }
        let Some(v) = t.choose_elimination_var() else {
            return Ok(true);
        };
        match t.fm_eliminate(v, budget)? {
            ElimT::Exact => {}
            ElimT::Approx {
                mut dark,
                mut real,
                mut splinters,
            } => {
                let r = (|| {
                    if budget.options().dark_shadow && sat_t(&mut dark, budget, depth + 1)? {
                        return Ok(true);
                    }
                    if !sat_t(&mut real, budget, depth + 1)? {
                        return Ok(false);
                    }
                    for s in splinters.iter_mut() {
                        if sat_t(s, budget, depth + 1)? {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                })();
                release(dark);
                release(real);
                for s in splinters {
                    release(s);
                }
                return r;
            }
        }
    }
}

/// Satisfiability on the dense kernel: loads `p` into a pooled tableau and
/// runs the mirrored recursion. Same verdicts, budget spends, and errors
/// as `sat_rec`.
pub(crate) fn sat_problem(p: &Problem, budget: &mut Budget) -> Result<bool> {
    let mut t = acquire();
    t.load(p);
    let r = sat_t(&mut t, budget, 0);
    release(t);
    r
}

/// Borrow-based satisfiability entry: like [`sat_problem`] after the
/// public API's "clone and clear protection" prelude, but the clearing
/// happens on the loaded flags instead of on a cloned constraint list —
/// a warm query allocates nothing at all.
pub(crate) fn sat_problem_unprotected(p: &Problem, budget: &mut Budget) -> Result<bool> {
    let mut t = acquire();
    t.load(p);
    for f in &mut t.flags {
        *f &= !F_PROTECTED;
    }
    let r = sat_t(&mut t, budget, 0);
    release(t);
    r
}

/// Dense mirror of `project::project_real`.
fn project_real_t(mut t: Tableau, budget: &mut Budget) -> Result<Problem> {
    loop {
        if t.eliminate_equalities(budget)? == Outcome::Infeasible {
            let p = t.to_problem();
            release(t);
            return Ok(p);
        }
        let Some(v) = t.choose_elimination_var() else {
            let mut p = t.to_problem();
            release(t);
            p.remove_redundant_quick();
            return Ok(p);
        };
        match t.fm_eliminate(v, budget)? {
            ElimT::Exact => {}
            ElimT::Approx {
                dark,
                real,
                splinters,
            } => {
                release(dark);
                for s in splinters {
                    release(s);
                }
                release(t);
                t = real;
            }
        }
    }
}

/// Dense mirror of `project::project_core`.
fn project_core_t(
    t: Tableau,
    budget: &mut Budget,
    dark_out: &mut Option<Problem>,
    splinters_out: &mut Vec<Problem>,
    exact: &mut bool,
    depth: usize,
) -> Result<()> {
    budget.spend(1)?;
    if depth > MAX_DEPTH {
        return Err(crate::Error::TooComplex { budget: MAX_DEPTH });
    }
    project_core_loop(t, budget, dark_out, splinters_out, exact, depth)
}

/// The body of [`project_core_t`] after its entry spend and depth check —
/// the resume point for checkpointed bases.
fn project_core_loop(
    mut t: Tableau,
    budget: &mut Budget,
    dark_out: &mut Option<Problem>,
    splinters_out: &mut Vec<Problem>,
    exact: &mut bool,
    depth: usize,
) -> Result<()> {
    loop {
        if t.eliminate_equalities(budget)? == Outcome::Infeasible {
            if dark_out.is_none() {
                *dark_out = Some(t.to_problem());
            }
            release(t);
            return Ok(());
        }
        let Some(v) = t.choose_elimination_var() else {
            if dark_out.is_none() {
                *dark_out = Some(t.to_problem());
            }
            release(t);
            return Ok(());
        };
        match t.fm_eliminate(v, budget)? {
            ElimT::Exact => {}
            ElimT::Approx {
                dark,
                real,
                splinters,
            } => {
                release(real);
                release(t);
                *exact = false;
                project_core_t(dark, budget, dark_out, splinters_out, exact, depth + 1)?;
                for s in splinters {
                    let mut sub_dark = None;
                    project_core_t(s, budget, &mut sub_dark, splinters_out, exact, depth + 1)?;
                    if let Some(d) = sub_dark {
                        if !d.is_known_infeasible() {
                            splinters_out.push(d);
                        }
                    }
                }
                return Ok(());
            }
        }
    }
}

/// Projection body on the dense kernel: returns `(real, dark, splinters,
/// exact)` for `project_prepared` to post-process exactly as it does for
/// the row pipeline.
pub(crate) fn project_parts(
    p: &Problem,
    budget: &mut Budget,
) -> Result<(Problem, Problem, Vec<Problem>, bool)> {
    let mut t = acquire();
    t.load(p);
    let mut rt = acquire();
    rt.copy_from(&t);
    let real = match project_real_t(rt, budget) {
        Ok(real) => real,
        Err(e) => {
            release(t);
            return Err(e);
        }
    };
    let mut dark_out = None;
    let mut splinters = Vec::new();
    let mut exact = true;
    project_core_t(t, budget, &mut dark_out, &mut splinters, &mut exact, 0)?;
    let dark = dark_out.expect("projection produces a dark shadow");
    Ok((real, dark, splinters, exact))
}

/// Rows → dense tableau → rows round trip, exposed for representation
/// tests: the result states the same conjunction as `p`, with the same
/// variable table, constraint order, colors, and feasibility flag.
pub fn tableau_roundtrip(p: &Problem) -> Problem {
    let mut t = acquire();
    t.load(p);
    let q = t.to_problem();
    release(t);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::var::VarKind;

    #[test]
    fn roundtrip_preserves_content() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Symbolic);
        p.add_eq(LinExpr::term(3, x).plus_term(5, y).plus_const(-12));
        p.add_geq(LinExpr::var(x).plus_const(4));
        p.add_geq(LinExpr::term(-7, y).plus_const(100));
        let q = tableau_roundtrip(&p);
        assert_eq!(p.canonical_digest(), q.canonical_digest());
        assert_eq!(p.eqs().len(), q.eqs().len());
        assert_eq!(p.geqs().len(), q.geqs().len());
        for (a, b) in p.eqs().iter().chain(p.geqs()).zip(q.eqs().iter().chain(q.geqs())) {
            assert_eq!(a.expr(), b.expr());
            assert_eq!(a.relation(), b.relation());
            assert_eq!(a.color(), b.color());
        }
    }

    #[test]
    fn dense_sat_matches_rows_on_knapsack() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_eq(LinExpr::term(3, x).plus_term(5, y).plus_const(-7));
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::var(y));
        let mut dense = Budget::default();
        let mut rows = Budget::default();
        rows.options.dense_kernel = false;
        assert_eq!(
            p.is_satisfiable_with(&mut dense).unwrap(),
            p.is_satisfiable_with(&mut rows).unwrap()
        );
        // Identical budget consumption is part of the contract.
        assert_eq!(dense.remaining(), rows.remaining());
    }

    #[test]
    fn pool_reuse_keeps_results_stable() {
        // Run several queries on one thread so tableaus are reused dirty.
        for n in 0..20 {
            let mut p = Problem::new();
            let x = p.add_var("x", VarKind::Input);
            let y = p.add_var("y", VarKind::Input);
            p.add_geq(LinExpr::term(2, x).plus_term(-3, y).plus_const(n));
            p.add_geq(LinExpr::term(-2, x).plus_term(3, y).plus_const(1 - n));
            p.add_geq(LinExpr::var(x).plus_const(-1));
            p.add_geq(LinExpr::term(-1, x).plus_const(10));
            let mut dense = Budget::default();
            let mut rows = Budget::default();
            rows.options.dense_kernel = false;
            assert_eq!(
                p.is_satisfiable_with(&mut dense).unwrap(),
                p.is_satisfiable_with(&mut rows).unwrap(),
                "n = {n}"
            );
            assert_eq!(dense.remaining(), rows.remaining(), "n = {n}");
        }
    }
}
