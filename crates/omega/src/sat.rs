//! Integer satisfiability via the Omega test.

use crate::cache::{self, CachedValue, MemoKey};
use crate::canon::{canonicalize_for_sat, CanonKey, Op};
use crate::fourier::Elimination;
use crate::normalize::Outcome;
use crate::problem::{Budget, Problem};
use crate::Result;

impl Problem {
    /// Decides whether the conjunction has an **integer** solution.
    ///
    /// Uses the default work budget; see
    /// [`is_satisfiable_with`](Problem::is_satisfiable_with) to control it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) or
    /// [`Error::TooComplex`](crate::Error::TooComplex) on pathological
    /// inputs; both are rare in dependence analysis practice.
    ///
    /// # Examples
    ///
    /// ```
    /// use omega::{LinExpr, Problem, VarKind};
    ///
    /// let mut p = Problem::new();
    /// let x = p.add_var("x", VarKind::Input);
    /// // 2x == 1 has a real solution but no integer one.
    /// p.add_eq(LinExpr::term(2, x).plus_const(-1));
    /// assert!(!p.is_satisfiable()?);
    /// # Ok::<(), omega::Error>(())
    /// ```
    pub fn is_satisfiable(&self) -> Result<bool> {
        self.is_satisfiable_with(&mut Budget::default())
    }

    /// Satisfiability with an explicit work budget.
    ///
    /// # Errors
    ///
    /// See [`is_satisfiable`](Problem::is_satisfiable).
    pub fn is_satisfiable_with(&self, budget: &mut Budget) -> Result<bool> {
        if budget.active_cache().is_none() && budget.options().dense_kernel {
            // Borrow-based fast path: protection is cleared on the loaded
            // tableau's flag bytes instead of on a cloned problem, so a
            // warm query (pooled workspace) allocates nothing at all.
            // Observationally identical to the clone-and-clear prelude
            // below — `load` reads the same rows and the same flags.
            return crate::tableau::sat_problem_unprotected(self, budget);
        }
        let mut p = self.clone();
        if p.vars.iter().any(|v| v.protected) {
            let vars = p.vars_mut();
            for v in vars.iter_mut() {
                v.protected = false;
            }
        }
        if let Some(cache) = budget.active_cache() {
            // Colors and constraint order do not affect the verdict, so
            // solve the blackened canonical form: the verdict is then a
            // pure function of the key.
            cache.note_full_canon();
            let cp = canonicalize_for_sat(&p);
            let key = MemoKey::Full(CanonKey::new(Op::Sat, &cp));
            return cache::with_memo(
                budget,
                cache,
                key,
                |&v| CachedValue::Sat(v),
                |v| match v {
                    CachedValue::Sat(b) => Some(b),
                    _ => None,
                },
                move |b, _| solve_sat(cp, b),
            );
        }
        solve_sat(p, budget)
    }
}

/// Dispatches a satisfiability query to the dense tableau kernel or the
/// interned-row recursion, per [`SolverOptions::dense_kernel`]. The two
/// paths are observationally identical (verdicts, budget spends, errors),
/// so callers — including the memo cache — never need to know which ran.
///
/// [`SolverOptions::dense_kernel`]: crate::SolverOptions::dense_kernel
pub(crate) fn solve_sat(p: Problem, budget: &mut Budget) -> Result<bool> {
    if budget.options().dense_kernel {
        crate::tableau::sat_problem(&p, budget)
    } else {
        sat_rec(p, budget, 0)
    }
}

/// Recursion limit guarding against adversarial splinter chains.
const MAX_DEPTH: usize = 64;

pub(crate) fn sat_rec(mut p: Problem, budget: &mut Budget, depth: usize) -> Result<bool> {
    budget.spend(1)?;
    if depth > MAX_DEPTH {
        return Err(crate::Error::TooComplex {
            budget: MAX_DEPTH,
        });
    }
    loop {
        // Normalization can coalesce opposed inequalities into fresh
        // equalities, so equality elimination re-runs every iteration (it
        // is a cheap no-op when no equalities remain).
        if p.eliminate_equalities(budget)? == Outcome::Infeasible {
            return Ok(false);
        }
        let Some((v, _)) = p.choose_elimination_var() else {
            // No live variables remain: all residual constraints were
            // constant and normalize() kept the problem consistent.
            return Ok(true);
        };
        match p.fm_eliminate(v, budget)? {
            Elimination::Exact(q) => p = q,
            Elimination::Approx {
                dark,
                real,
                splinters,
            } => {
                // §3: first check S₀ ≠ ∅, then T = ∅; only if both fail
                // examine S₁ … Sₚ. (The dark-shadow fast path can be
                // ablated via SolverOptions.)
                if budget.options().dark_shadow && sat_rec(dark, budget, depth + 1)? {
                    return Ok(true);
                }
                if !sat_rec(real, budget, depth + 1)? {
                    return Ok(false);
                }
                for s in splinters {
                    if sat_rec(s, budget, depth + 1)? {
                        return Ok(true);
                    }
                }
                return Ok(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::linexpr::LinExpr;
    use crate::problem::Problem;
    use crate::var::VarKind;

    fn vars2() -> (Problem, crate::VarId, crate::VarId) {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        (p, x, y)
    }

    #[test]
    fn empty_problem_is_satisfiable() {
        assert!(Problem::new().is_satisfiable().unwrap());
    }

    #[test]
    fn simple_box_is_satisfiable() {
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        p.add_geq(LinExpr::var(y).plus_term(-1, x));
        assert!(p.is_satisfiable().unwrap());
    }

    #[test]
    fn empty_interval_is_unsatisfiable() {
        let (mut p, x, _) = vars2();
        p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5
        p.add_geq(LinExpr::term(-1, x).plus_const(4)); // x <= 4
        assert!(!p.is_satisfiable().unwrap());
    }

    #[test]
    fn integer_gap_detected() {
        // 2 <= 3x <= 4 requires 3x in {2,3,4}: x = 1 works. But
        // 4 <= 3x <= 5 has no integer x.
        let (mut p, x, _) = vars2();
        p.add_geq(LinExpr::term(3, x).plus_const(-4));
        p.add_geq(LinExpr::term(-3, x).plus_const(5));
        assert!(!p.is_satisfiable().unwrap());

        let (mut q, x, _) = vars2();
        q.add_geq(LinExpr::term(3, x).plus_const(-2));
        q.add_geq(LinExpr::term(-3, x).plus_const(4));
        assert!(q.is_satisfiable().unwrap());
    }

    #[test]
    fn dark_shadow_shortcut_finds_solution() {
        // 2y <= 2x + 1 and 2x <= 2y + 1: x = y integer solutions.
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::term(2, x).plus_term(-2, y).plus_const(1));
        p.add_geq(LinExpr::term(-2, x).plus_term(2, y).plus_const(1));
        assert!(p.is_satisfiable().unwrap());
    }

    #[test]
    fn splinter_case_knapsack() {
        // The classic splinter example: 3x + 5y = 12 with 0 <= x,y <= 10:
        // x=4,y=0 works. Then 3x + 5y = 7 with x,y >= 0: no... actually
        // x=4? 3*4=12>7. 7 = 3*4/... 7-5=2 not div 3; 7-0=7 not div 3;
        // no non-negative solution.
        let (mut p, x, y) = vars2();
        p.add_eq(LinExpr::term(3, x).plus_term(5, y).plus_const(-12));
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::var(y));
        assert!(p.is_satisfiable().unwrap());

        let (mut q, x, y) = vars2();
        q.add_eq(LinExpr::term(3, x).plus_term(5, y).plus_const(-7));
        q.add_geq(LinExpr::var(x));
        q.add_geq(LinExpr::var(y));
        assert!(!q.is_satisfiable().unwrap());
    }

    #[test]
    fn inexact_inequalities_requiring_splinters() {
        // From Pugh '91 discussion: constraints where real shadow is
        // nonempty, dark shadow empty, but an integer point exists only in
        // a splinter. 3 <= 2x - 3y... construct: 2x = 3y exactly has
        // solutions (x=3,y=2); express as inequalities 2x >= 3y and
        // 2x <= 3y with box 1 <= x,y <= 10.
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::term(2, x).plus_term(-3, y));
        p.add_geq(LinExpr::term(-2, x).plus_term(3, y)); // coalesces to eq
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::var(y).plus_const(-1));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        p.add_geq(LinExpr::term(-1, y).plus_const(10));
        assert!(p.is_satisfiable().unwrap());
    }

    #[test]
    fn symbolic_variables_participate() {
        // 1 <= x <= n is satisfiable (choose n >= 1) but
        // 1 <= x <= n && n <= 0 is not.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let n = p.add_var("n", VarKind::Symbolic);
        p.add_geq(LinExpr::var(x).plus_const(-1));
        p.add_geq(LinExpr::var(n).plus_term(-1, x));
        assert!(p.is_satisfiable().unwrap());
        p.add_geq(LinExpr::term(-1, n));
        assert!(!p.is_satisfiable().unwrap());
    }

    #[test]
    fn brute_force_cross_check_random_inequalities() {
        // Deterministic pseudo-random cross-check against brute force on a
        // small box. Uses a simple LCG to stay dependency-free here.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 11) as i64 - 5
        };
        for trial in 0..300 {
            let mut p = Problem::new();
            let x = p.add_var("x", VarKind::Input);
            let y = p.add_var("y", VarKind::Input);
            // Box [-4, 4]^2 to keep brute force fast and the problem bounded.
            p.add_geq(LinExpr::var(x).plus_const(4));
            p.add_geq(LinExpr::term(-1, x).plus_const(4));
            p.add_geq(LinExpr::var(y).plus_const(4));
            p.add_geq(LinExpr::term(-1, y).plus_const(4));
            for _ in 0..3 {
                let (a, b, c) = (next(), next(), next());
                p.add_geq(LinExpr::term(a, x).plus_term(b, y).plus_const(c));
            }
            let brute = {
                let mut found = false;
                'outer: for xv in -4..=4 {
                    for yv in -4..=4 {
                        if p.satisfies(&[xv, yv]) {
                            found = true;
                            break 'outer;
                        }
                    }
                }
                found
            };
            assert_eq!(
                p.is_satisfiable().unwrap(),
                brute,
                "trial {trial} disagreed with brute force: {p:?}"
            );
        }
    }
}
