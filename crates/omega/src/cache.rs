//! A thread-safe memo cache for solver verdicts, keyed by the canonical
//! problem form of [`canon`](crate::canon).
//!
//! The cache is attached to a [`Budget`] (see [`Budget::with_cache`]) and
//! consulted by satisfiability, projection and gist entry points when
//! [`SolverOptions::memo_cache`](crate::SolverOptions::memo_cache) is on.
//!
//! # Determinism contract
//!
//! Results served from the cache must be indistinguishable — in value
//! *and* in budget consumption — from a cold computation, so that an
//! analysis run is bit-identical whether a key was computed here or by
//! another worker thread moments earlier:
//!
//! * cached values are pure functions of the key: syntactic results
//!   (projections, gists) are computed on the canonicalized problem, not
//!   the original;
//! * every entry records the exact number of budget steps the cold
//!   computation spent; a hit charges that amount;
//! * a hit is only taken when the remaining budget covers the recorded
//!   cost — otherwise the computation re-runs cold and exhausts the
//!   budget exactly as an uncached run would;
//! * during a cold (miss) computation the cache is detached, so nested
//!   queries also run cold and the recorded cost is schedule-independent;
//! * errors are never cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::canon::{CanonKey, Op};
use crate::linexpr::Constraint;
use crate::problem::{Budget, Problem};
use crate::symbol::Name;
use crate::project::Projection;
use crate::var::VarKind;
use crate::Result;

/// A memoized solver verdict.
#[derive(Debug, Clone)]
pub(crate) enum CachedValue {
    /// Satisfiability verdict.
    Sat(bool),
    /// Projection result (computed on the canonical problem).
    Project(Projection),
    /// Gist result (computed on the canonical problem).
    Gist(Problem),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Budget steps the cold computation spent.
    pub(crate) cost: usize,
    pub(crate) value: CachedValue,
}

/// The canonical form of a per-pair base problem, interned in the cache so
/// delta keys can reference it by a small id instead of embedding the
/// whole constraint system in every key.
///
/// Bases are only interned for flag-free, all-black problems (see
/// [`PairContext`](crate::PairContext)), so no protected/dead/pinned bits
/// appear here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BaseForm {
    pub(crate) known_infeasible: bool,
    pub(crate) vars: Vec<(Name, VarKind)>,
    pub(crate) eqs: Vec<Constraint>,
    pub(crate) geqs: Vec<Constraint>,
}

/// A memo key for a query expressed as a small delta over an interned
/// base: the base's canonicalization is shared by every query of the
/// pair instead of being recomputed per lookup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct DeltaKey {
    /// The memoized operation.
    pub(crate) op: Op,
    /// Interned id of the base's canonical form.
    pub(crate) base: u64,
    /// Extra variables appended after the base's table.
    pub(crate) vars: Vec<(Name, VarKind)>,
    /// Protected (kept) variable indices for projections, sorted and
    /// deduplicated; empty for satisfiability.
    pub(crate) keep: Vec<u32>,
    /// Canonicalized delta equalities.
    pub(crate) eqs: Vec<Constraint>,
    /// Canonicalized delta inequalities.
    pub(crate) geqs: Vec<Constraint>,
}

/// A cache key: either the full canonical form of the query problem, or
/// a delta against an interned base. The two key spaces are disjoint, so
/// the same logical query may appear under both (a duplicate entry, never
/// an unsound one).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum MemoKey {
    /// Full canonical-form key (the classic path).
    Full(CanonKey),
    /// Delta key against an interned base.
    Delta(DeltaKey),
}

/// Base interning table: id assignment order is insertion order, so a
/// cache loaded from disk repopulates it in stored-id order.
#[derive(Debug, Default)]
pub(crate) struct BaseIntern {
    pub(crate) ids: HashMap<BaseForm, u64>,
    pub(crate) forms: Vec<BaseForm>,
}

/// Entry cap: dependence analysis working sets are far smaller; the cap
/// only bounds memory on adversarial inputs. Insertions beyond it are
/// dropped (counted as misses on re-query).
const MAX_ENTRIES: usize = 1 << 16;

/// A shared, thread-safe memo cache of solver verdicts with hit/miss/
/// insert counters. Create one per analysis and attach it to every
/// [`Budget`] with [`Budget::with_cache`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omega::{Budget, LinExpr, Problem, SolverCache, VarKind};
///
/// let cache = Arc::new(SolverCache::new());
/// let mut p = Problem::new();
/// let x = p.add_var("x", VarKind::Input);
/// p.add_geq(LinExpr::var(x).plus_const(-1));
///
/// let mut b1 = Budget::default().with_cache(cache.clone());
/// assert!(p.is_satisfiable_with(&mut b1)?);
/// let mut b2 = Budget::default().with_cache(cache.clone());
/// assert!(p.is_satisfiable_with(&mut b2)?); // served from the cache
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), omega::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct SolverCache {
    pub(crate) map: Mutex<HashMap<MemoKey, Entry>>,
    pub(crate) bases: Mutex<BaseIntern>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    full_canons: AtomicU64,
    delta_canons: AtomicU64,
}

impl SolverCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> Self {
        SolverCache::default()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            full_canons: self.full_canons.load(Ordering::Relaxed),
            delta_canons: self.delta_canons.load(Ordering::Relaxed),
        }
    }

    /// Records one full (whole-problem) canonicalization.
    pub(crate) fn note_full_canon(&self) {
        self.full_canons.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one delta-only canonicalization (a per-pair query that
    /// reused its base's canonical form).
    pub(crate) fn note_delta_canon(&self) {
        self.delta_canons.fetch_add(1, Ordering::Relaxed);
    }

    /// Interns a base's canonical form, returning its stable id within
    /// this cache.
    pub(crate) fn intern_base(&self, form: &BaseForm) -> u64 {
        let mut bases = self.bases.lock().expect("cache lock poisoned");
        if let Some(&id) = bases.ids.get(form) {
            return id;
        }
        let id = bases.forms.len() as u64;
        bases.forms.push(form.clone());
        bases.ids.insert(form.clone(), id);
        id
    }

    fn get(&self, key: &MemoKey) -> Option<Entry> {
        self.map.lock().expect("cache lock poisoned").get(key).cloned()
    }

    fn put(&self, key: MemoKey, cost: usize, value: CachedValue) {
        let mut map = self.map.lock().expect("cache lock poisoned");
        if map.len() >= MAX_ENTRIES {
            return;
        }
        // Concurrent computations of the same key insert the same value
        // (pure function of the key); first insert wins.
        if map.try_insert_like(key, Entry { cost, value }) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// `HashMap::try_insert` is unstable; emulate "insert if absent".
trait TryInsertLike {
    fn try_insert_like(&mut self, key: MemoKey, entry: Entry) -> bool;
}

impl TryInsertLike for HashMap<MemoKey, Entry> {
    fn try_insert_like(&mut self, key: MemoKey, entry: Entry) -> bool {
        use std::collections::hash_map::Entry as MapEntry;
        match self.entry(key) {
            MapEntry::Occupied(_) => false,
            MapEntry::Vacant(v) => {
                v.insert(entry);
                true
            }
        }
    }
}

/// Counter snapshot of a [`SolverCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold computation.
    pub misses: u64,
    /// Entries inserted (≤ misses: errors and capacity overflows are not
    /// inserted, and concurrent misses of one key insert once).
    pub inserts: u64,
    /// Full (whole-problem) canonicalizations performed before lookup,
    /// including one per [`PairContext`](crate::PairContext) base.
    pub full_canons: u64,
    /// Delta-only canonicalizations: queries that reused their pair's
    /// already-canonical base and normalized just the added constraints.
    pub delta_canons: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups, in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// The memoization wrapper shared by the sat/project/gist entry points.
/// `compute` must be a pure function of `key` (compute on the canonical
/// problem!) and report its whole cost through `budget`.
pub(crate) fn with_memo<T: Clone>(
    budget: &mut Budget,
    cache: Arc<SolverCache>,
    key: MemoKey,
    wrap: fn(&T) -> CachedValue,
    unwrap: fn(CachedValue) -> Option<T>,
    compute: impl FnOnce(&mut Budget) -> Result<T>,
) -> Result<T> {
    if let Some(entry) = cache.get(&key) {
        // Only serve the hit when the budget covers the cold cost; a
        // poorer budget must fail exactly where the cold run would.
        if budget.remaining() >= entry.cost {
            if let Some(value) = unwrap(entry.value) {
                cache.hits.fetch_add(1, Ordering::Relaxed);
                budget.spend(entry.cost)?;
                return Ok(value);
            }
        }
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let detached = budget.detach_cache();
    let before = budget.remaining();
    let out = compute(budget);
    budget.attach_cache(detached);
    let out = out?;
    cache.put(key, before - budget.remaining(), wrap(&out));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::{LinExpr, Problem, VarKind};

    fn sat_key(p: &Problem) -> MemoKey {
        MemoKey::Full(CanonKey::new(Op::Sat, &canonicalize(p)))
    }

    fn small_problem() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p
    }

    #[test]
    fn hit_charges_the_recorded_cost() {
        let cache = Arc::new(SolverCache::new());
        let p = small_problem();

        let mut cold = Budget::new(10_000).with_cache(cache.clone());
        assert!(p.is_satisfiable_with(&mut cold).unwrap());
        let cold_spent = 10_000 - cold.remaining();
        assert!(cold_spent > 0);

        let mut warm = Budget::new(10_000).with_cache(cache.clone());
        assert!(p.is_satisfiable_with(&mut warm).unwrap());
        assert_eq!(10_000 - warm.remaining(), cold_spent);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_ignores_the_cache() {
        let cache = Arc::new(SolverCache::new());
        let p = small_problem();
        let mut cold = Budget::new(10_000).with_cache(cache.clone());
        p.is_satisfiable_with(&mut cold).unwrap();
        let cost = 10_000 - cold.remaining();

        // A budget below the recorded cost must fail exactly like an
        // uncached run: same error, same (partial) consumption.
        let mut tight_cached = Budget::new(cost - 1).with_cache(cache.clone());
        let cached_err = p.is_satisfiable_with(&mut tight_cached);
        let mut tight_plain = Budget::new(cost - 1);
        let plain_err = p.is_satisfiable_with(&mut tight_plain);
        assert_eq!(cached_err.is_err(), plain_err.is_err());
        assert_eq!(tight_cached.remaining(), tight_plain.remaining());
    }

    #[test]
    fn capacity_cap_stops_inserts() {
        let cache = SolverCache::new();
        let p = small_problem();
        {
            let mut map = cache.map.lock().unwrap();
            for i in 0..MAX_ENTRIES {
                let mut q = Problem::new();
                q.add_var(format!("pad{i}"), VarKind::Input);
                map.insert(
                    sat_key(&q),
                    Entry {
                        cost: 1,
                        value: CachedValue::Sat(true),
                    },
                );
            }
        }
        cache.put(sat_key(&p), 1, CachedValue::Sat(true));
        assert_eq!(cache.stats().inserts, 0);
        assert!(cache.get(&sat_key(&p)).is_none());
    }
}
