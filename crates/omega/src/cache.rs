//! A thread-safe memo cache for solver verdicts, keyed by the canonical
//! problem form of [`canon`](crate::canon).
//!
//! The cache is attached to a [`Budget`] (see [`Budget::with_cache`]) and
//! consulted by satisfiability, projection and gist entry points when
//! [`SolverOptions::memo_cache`](crate::SolverOptions::memo_cache) is on.
//!
//! # Determinism contract
//!
//! Results served from the cache must be indistinguishable — in value
//! *and* in budget consumption — from a cold computation, so that an
//! analysis run is bit-identical whether a key was computed here or by
//! another worker thread moments earlier:
//!
//! * cached values are pure functions of the key: syntactic results
//!   (projections, gists) are computed on the canonicalized problem, not
//!   the original;
//! * every entry records the exact number of budget steps the cold
//!   computation spent; a hit charges that amount;
//! * a hit is only taken when the remaining budget covers the recorded
//!   cost — otherwise the computation re-runs cold and exhausts the
//!   budget exactly as an uncached run would;
//! * during a cold (miss) computation the cache is detached, so nested
//!   queries also run cold and the recorded cost is schedule-independent;
//! * errors are never cached.
//!
//! # Sharding
//!
//! The entry map and the base-intern table are split across
//! [`SHARD_COUNT`] independently locked shards (mirroring the row
//! store's sharding), picked by key hash. Simultaneous analyses — the
//! two-level corpus pool runs many programs against one cache — mostly
//! touch different shards and share hits instead of serializing on one
//! global lock. Sharding is placement only: it cannot affect results,
//! and eviction (entry caps, base sweeps) can only cause extra misses,
//! never a wrong hit.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::canon::{CanonKey, Op};
use crate::linexpr::Constraint;
use crate::problem::{Budget, Problem};
use crate::symbol::Name;
use crate::project::Projection;
use crate::tableau::Checkpoint;
use crate::var::VarKind;
use crate::Result;

/// A memoized solver verdict.
#[derive(Debug, Clone)]
pub(crate) enum CachedValue {
    /// Satisfiability verdict.
    Sat(bool),
    /// Projection result (computed on the canonical problem).
    Project(Projection),
    /// Gist result (computed on the canonical problem).
    Gist(Problem),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Budget steps the cold computation spent.
    pub(crate) cost: usize,
    pub(crate) value: CachedValue,
}

/// The canonical form of a per-pair base problem, interned in the cache so
/// delta keys can reference it by a small id instead of embedding the
/// whole constraint system in every key.
///
/// Bases are only interned for flag-free, all-black problems (see
/// [`PairContext`](crate::PairContext)), so no protected/dead/pinned bits
/// appear here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct BaseForm {
    pub(crate) known_infeasible: bool,
    pub(crate) vars: Vec<(Name, VarKind)>,
    pub(crate) eqs: Vec<Constraint>,
    pub(crate) geqs: Vec<Constraint>,
}

/// A memo key for a query expressed as a small delta over an interned
/// base: the base's canonicalization is shared by every query of the
/// pair instead of being recomputed per lookup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct DeltaKey {
    /// The memoized operation.
    pub(crate) op: Op,
    /// Interned id of the base's canonical form.
    pub(crate) base: u64,
    /// Extra variables appended after the base's table.
    pub(crate) vars: Vec<(Name, VarKind)>,
    /// Protected (kept) variable indices for projections, sorted and
    /// deduplicated; empty for satisfiability.
    pub(crate) keep: Vec<u32>,
    /// Canonicalized delta equalities.
    pub(crate) eqs: Vec<Constraint>,
    /// Canonicalized delta inequalities.
    pub(crate) geqs: Vec<Constraint>,
}

/// A cache key: either the full canonical form of the query problem, or
/// a delta against an interned base. The two key spaces are disjoint, so
/// the same logical query may appear under both (a duplicate entry, never
/// an unsound one).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum MemoKey {
    /// Full canonical-form key (the classic path).
    Full(CanonKey),
    /// Delta key against an interned base.
    Delta(DeltaKey),
}

/// Shards for both the entry map and the base intern, mirroring the row
/// store. Must be a power of two.
const SHARD_COUNT: usize = 16;

/// Entry cap (total across shards, enforced per shard): dependence
/// analysis working sets are far smaller; the cap only bounds memory on
/// adversarial inputs. Insertions beyond it are dropped (counted as
/// misses on re-query).
const MAX_ENTRIES: usize = 1 << 16;

/// Base-intern cap. Unlike entries, bases used to grow without bound —
/// an unbounded memory leak in a long-lived `--serve` daemon where every
/// novel pair interns a base. At the cap a sweep drops every form whose
/// id no entry references; ids are handed out from a monotonic counter
/// and never reused, so an evicted id can only cause future misses,
/// never a wrong hit.
pub(crate) const MAX_BASES: usize = 4096;

/// Poison-proof lock: cache critical sections are plain reads/writes
/// with no invariant a mid-section panic could break, and a contained
/// panic elsewhere (the analysis server catches per-request panics)
/// must not wedge the shared cache.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shard placement by `std` hash. `DefaultHasher::new()` is fixed-seed
/// within a process, which is all placement needs; nothing persisted
/// depends on it.
fn shard_index<K: Hash + ?Sized>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARD_COUNT - 1)
}

/// Base interning table: a bounded, sharded `form → id` map with a
/// monotonic id counter (see [`MAX_BASES`]). Loaded caches repopulate it
/// in stored-id order.
#[derive(Debug, Default)]
struct BaseIntern {
    shards: [Mutex<HashMap<BaseForm, u64>>; SHARD_COUNT],
    /// Next id to hand out; never decremented, so ids are unique for the
    /// cache's lifetime even across sweeps.
    next_id: AtomicU64,
    /// Forms currently resident (kept exact under the shard locks'
    /// insert/retain, read without them for the cap check).
    len: AtomicU64,
    /// Sweeps run and forms evicted, for stats.
    sweeps: AtomicU64,
    evicted: AtomicU64,
}

/// The checkpointed base tableaus of one interned base: one satisfiability
/// checkpoint plus one projection checkpoint per protected-variable set
/// seen. Recording waits for the *second* resumable miss of a slot —
/// a base queried once pays nothing, a reused base amortizes its one
/// recording over every later miss. Checkpoints are pure functions of
/// the base's canonical form (and the keep set), so concurrent recorders
/// produce identical snapshots and which insert wins is unobservable.
///
/// Never persisted: checkpoints are cheap to re-record and their layout
/// is an internal solver detail.
#[derive(Debug, Default)]
pub(crate) struct CheckpointSet {
    /// Whether a resumable sat miss has been seen (the recording trigger).
    sat_seen: AtomicBool,
    sat: OnceLock<Arc<Checkpoint>>,
    proj: Mutex<HashMap<Vec<u32>, Option<Arc<Checkpoint>>>>,
}

impl CheckpointSet {
    /// The satisfiability checkpoint: `None` on the first resumable miss
    /// (noted; the caller rebuilds from scratch), recorded and returned
    /// from the second on.
    pub(crate) fn sat_checkpoint(
        &self,
        record: impl FnOnce() -> Checkpoint,
    ) -> Option<Arc<Checkpoint>> {
        if let Some(cp) = self.sat.get() {
            return Some(cp.clone());
        }
        if !self.sat_seen.swap(true, Ordering::Relaxed) {
            return None;
        }
        Some(self.sat.get_or_init(|| Arc::new(record())).clone())
    }

    /// The projection checkpoint for a sorted, deduplicated keep set:
    /// `None` on the keep set's first resumable miss, recorded from the
    /// second on. Recording runs outside the lock; a concurrent
    /// recorder's identical snapshot may win the insert.
    pub(crate) fn proj_checkpoint(
        &self,
        keep: &[u32],
        record: impl FnOnce() -> Checkpoint,
    ) -> Option<Arc<Checkpoint>> {
        {
            let mut m = lock(&self.proj);
            match m.get(keep) {
                Some(Some(cp)) => return Some(cp.clone()),
                Some(None) => {}
                None => {
                    m.insert(keep.to_vec(), None);
                    return None;
                }
            }
        }
        let cp = Arc::new(record());
        let mut m = lock(&self.proj);
        match m.get_mut(keep) {
            Some(slot) => {
                if let Some(existing) = slot {
                    return Some(existing.clone());
                }
                *slot = Some(cp.clone());
            }
            None => {
                m.insert(keep.to_vec(), Some(cp.clone()));
            }
        }
        Some(cp)
    }
}

/// A shared, thread-safe memo cache of solver verdicts with hit/miss/
/// insert counters. Create one per analysis and attach it to every
/// [`Budget`] with [`Budget::with_cache`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omega::{Budget, LinExpr, Problem, SolverCache, VarKind};
///
/// let cache = Arc::new(SolverCache::new());
/// let mut p = Problem::new();
/// let x = p.add_var("x", VarKind::Input);
/// p.add_geq(LinExpr::var(x).plus_const(-1));
///
/// let mut b1 = Budget::default().with_cache(cache.clone());
/// assert!(p.is_satisfiable_with(&mut b1)?);
/// let mut b2 = Budget::default().with_cache(cache.clone());
/// assert!(p.is_satisfiable_with(&mut b2)?); // served from the cache
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), omega::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct SolverCache {
    shards: [Mutex<HashMap<MemoKey, Entry>>; SHARD_COUNT],
    bases: BaseIntern,
    /// Base-tableau checkpoints, keyed by interned base id. Sharded like
    /// the intern table; swept alongside it (live [`PairContext`]s keep
    /// their own `Arc` to the set, so a sweep never invalidates them —
    /// ids are monotonic, so a re-interned base gets a fresh, empty set).
    ckpts: [Mutex<HashMap<u64, Arc<CheckpointSet>>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    full_canons: AtomicU64,
    delta_canons: AtomicU64,
    checkpoint_resumes: AtomicU64,
    checkpoint_rebuilds: AtomicU64,
}

impl SolverCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> Self {
        SolverCache::default()
    }

    /// A snapshot of the counters and occupancy gauges.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            full_canons: self.full_canons.load(Ordering::Relaxed),
            delta_canons: self.delta_canons.load(Ordering::Relaxed),
            entries: self.entry_count() as u64,
            base_forms: self.bases.len.load(Ordering::Relaxed),
            base_sweeps: self.bases.sweeps.load(Ordering::Relaxed),
            base_evicted: self.bases.evicted.load(Ordering::Relaxed),
            checkpoint_resumes: self.checkpoint_resumes.load(Ordering::Relaxed),
            checkpoint_rebuilds: self.checkpoint_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Records one full (whole-problem) canonicalization.
    pub(crate) fn note_full_canon(&self) {
        self.full_canons.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one delta-only canonicalization (a per-pair query that
    /// reused its base's canonical form).
    pub(crate) fn note_delta_canon(&self) {
        self.delta_canons.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one memo miss solved by resuming a base checkpoint.
    pub(crate) fn note_checkpoint_resume(&self) {
        self.checkpoint_resumes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one memo miss that fell back to the from-scratch path
    /// (delta not cleanly resumable, or the base was not checkpointable).
    pub(crate) fn note_checkpoint_rebuild(&self) {
        self.checkpoint_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// The checkpoint set for an interned base id, created on first use.
    pub(crate) fn checkpoint_set(&self, id: u64) -> Arc<CheckpointSet> {
        let mut shard = lock(&self.ckpts[shard_index(&id)]);
        shard.entry(id).or_default().clone()
    }

    /// Interns a base's canonical form, returning an id that is stable
    /// for as long as the form stays resident. Re-interning an evicted
    /// form yields a fresh id (its old entries become unreachable —
    /// misses, never wrong hits).
    pub(crate) fn intern_base(&self, form: &BaseForm) -> u64 {
        let shard = &self.bases.shards[shard_index(form)];
        if let Some(&id) = lock(shard).get(form) {
            return id;
        }
        if self.bases.len.load(Ordering::Relaxed) as usize >= MAX_BASES {
            self.sweep_bases();
        }
        let mut ids = lock(shard);
        // Another thread may have interned it while we swept.
        if let Some(&id) = ids.get(form) {
            return id;
        }
        let id = self.bases.next_id.fetch_add(1, Ordering::Relaxed);
        if self.bases.len.load(Ordering::Relaxed) as usize >= MAX_BASES {
            // Still full after the sweep: every resident base is
            // referenced by live entries. Hand out a unique unrecorded
            // id — this pair's delta queries run uncached.
            return id;
        }
        ids.insert(form.clone(), id);
        self.bases.len.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Drops every interned base whose id no resident entry references.
    /// Locks are taken one shard at a time, entry shards strictly before
    /// base shards, never nested with each other.
    fn sweep_bases(&self) {
        let mut referenced: HashSet<u64> = HashSet::new();
        for shard in &self.shards {
            for key in lock(shard).keys() {
                if let MemoKey::Delta(dk) = key {
                    referenced.insert(dk.base);
                }
            }
        }
        let mut removed = 0u64;
        for shard in &self.bases.shards {
            let mut ids = lock(shard);
            let before = ids.len();
            ids.retain(|_, id| referenced.contains(id));
            removed += (before - ids.len()) as u64;
        }
        // Checkpoints of swept bases go with them; live pair contexts
        // still hold their own `Arc` to the set, so nothing they resume
        // from is invalidated, and the swept id is never handed out again.
        for shard in &self.ckpts {
            lock(shard).retain(|id, _| referenced.contains(id));
        }
        if removed > 0 {
            self.bases.len.fetch_sub(removed, Ordering::Relaxed);
        }
        self.bases.sweeps.fetch_add(1, Ordering::Relaxed);
        self.bases.evicted.fetch_add(removed, Ordering::Relaxed);
    }

    fn get(&self, key: &MemoKey) -> Option<Entry> {
        lock(&self.shards[shard_index(key)]).get(key).cloned()
    }

    fn put(&self, key: MemoKey, cost: usize, value: CachedValue) {
        let mut shard = lock(&self.shards[shard_index(&key)]);
        if shard.len() >= MAX_ENTRIES / SHARD_COUNT {
            return;
        }
        // Concurrent computations of the same key insert the same value
        // (pure function of the key); first insert wins.
        if shard.try_insert_like(key, Entry { cost, value }) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total resident entries across shards.
    pub(crate) fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Clones out every resident entry (serialization; tests).
    pub(crate) fn snapshot_entries(&self) -> Vec<(MemoKey, Entry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(lock(shard).iter().map(|(k, e)| (k.clone(), e.clone())));
        }
        out
    }

    /// Clones out every interned base with its id (serialization).
    pub(crate) fn snapshot_bases(&self) -> Vec<(BaseForm, u64)> {
        let mut out = Vec::new();
        for shard in &self.bases.shards {
            out.extend(lock(shard).iter().map(|(f, &id)| (f.clone(), id)));
        }
        out
    }

    /// Installs a base read back from disk under its stored id. Only for
    /// deserialization, which owns the cache exclusively; keeps `next_id`
    /// above every loaded id.
    pub(crate) fn insert_loaded_base(&self, form: BaseForm, id: u64) {
        let shard = &self.bases.shards[shard_index(&form)];
        if lock(shard).insert(form, id).is_none() {
            self.bases.len.fetch_add(1, Ordering::Relaxed);
        }
        self.bases.next_id.fetch_max(id + 1, Ordering::Relaxed);
    }

    /// Installs an entry read back from disk (deserialization only).
    pub(crate) fn insert_loaded_entry(&self, key: MemoKey, entry: Entry) {
        lock(&self.shards[shard_index(&key)]).insert(key, entry);
    }
}

/// `HashMap::try_insert` is unstable; emulate "insert if absent".
trait TryInsertLike {
    fn try_insert_like(&mut self, key: MemoKey, entry: Entry) -> bool;
}

impl TryInsertLike for HashMap<MemoKey, Entry> {
    fn try_insert_like(&mut self, key: MemoKey, entry: Entry) -> bool {
        use std::collections::hash_map::Entry as MapEntry;
        match self.entry(key) {
            MapEntry::Occupied(_) => false,
            MapEntry::Vacant(v) => {
                v.insert(entry);
                true
            }
        }
    }
}

/// Counter snapshot of a [`SolverCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold computation.
    pub misses: u64,
    /// Entries inserted (≤ misses: errors and capacity overflows are not
    /// inserted, and concurrent misses of one key insert once).
    pub inserts: u64,
    /// Full (whole-problem) canonicalizations performed before lookup,
    /// including one per [`PairContext`](crate::PairContext) base.
    pub full_canons: u64,
    /// Delta-only canonicalizations: queries that reused their pair's
    /// already-canonical base and normalized just the added constraints.
    pub delta_canons: u64,
    /// Entries currently resident — a gauge, not a counter; bounded by
    /// the per-shard entry caps.
    pub entries: u64,
    /// Base forms currently interned — a gauge, not a counter; bounded
    /// by the intern cap, which long-lived servers rely on.
    pub base_forms: u64,
    /// Base-intern sweeps triggered by the cap.
    pub base_sweeps: u64,
    /// Base forms evicted by sweeps (unreferenced by any entry).
    pub base_evicted: u64,
    /// Memo misses answered by resuming a checkpointed base tableau
    /// instead of solving `base ∧ delta` from scratch.
    pub checkpoint_resumes: u64,
    /// Memo misses that attempted a checkpoint resume but fell back to
    /// the from-scratch path (non-resumable base, or a delta that could
    /// interact with the recorded elimination steps).
    pub checkpoint_rebuilds: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups, in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// The memoization wrapper shared by the sat/project/gist entry points.
/// `compute` must be a pure function of `key` (compute on the canonical
/// problem!) and report its whole cost through `budget`. The key is
/// lent back to `compute` so callers can move their canonical forms
/// into it instead of cloning them for the lookup.
pub(crate) fn with_memo<T: Clone>(
    budget: &mut Budget,
    cache: Arc<SolverCache>,
    key: MemoKey,
    wrap: fn(&T) -> CachedValue,
    unwrap: fn(CachedValue) -> Option<T>,
    compute: impl FnOnce(&mut Budget, &MemoKey) -> Result<T>,
) -> Result<T> {
    if let Some(entry) = cache.get(&key) {
        // Only serve the hit when the budget covers the cold cost; a
        // poorer budget must fail exactly where the cold run would.
        if budget.remaining() >= entry.cost {
            if let Some(value) = unwrap(entry.value) {
                cache.hits.fetch_add(1, Ordering::Relaxed);
                budget.spend(entry.cost)?;
                return Ok(value);
            }
        }
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let detached = budget.detach_cache();
    let before = budget.remaining();
    let out = compute(budget, &key);
    budget.attach_cache(detached);
    let out = out?;
    cache.put(key, before - budget.remaining(), wrap(&out));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::{LinExpr, Problem, VarKind};

    fn sat_key(p: &Problem) -> MemoKey {
        MemoKey::Full(CanonKey::new(Op::Sat, &canonicalize(p)))
    }

    fn small_problem() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p
    }

    fn base_form(tag: usize) -> BaseForm {
        BaseForm {
            known_infeasible: false,
            vars: vec![(Name::from_str(&format!("b{tag}"), VarKind::Input), VarKind::Input)],
            eqs: vec![],
            geqs: vec![],
        }
    }

    #[test]
    fn hit_charges_the_recorded_cost() {
        let cache = Arc::new(SolverCache::new());
        let p = small_problem();

        let mut cold = Budget::new(10_000).with_cache(cache.clone());
        assert!(p.is_satisfiable_with(&mut cold).unwrap());
        let cold_spent = 10_000 - cold.remaining();
        assert!(cold_spent > 0);

        let mut warm = Budget::new(10_000).with_cache(cache.clone());
        assert!(p.is_satisfiable_with(&mut warm).unwrap());
        assert_eq!(10_000 - warm.remaining(), cold_spent);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_ignores_the_cache() {
        let cache = Arc::new(SolverCache::new());
        let p = small_problem();
        let mut cold = Budget::new(10_000).with_cache(cache.clone());
        p.is_satisfiable_with(&mut cold).unwrap();
        let cost = 10_000 - cold.remaining();

        // A budget below the recorded cost must fail exactly like an
        // uncached run: same error, same (partial) consumption.
        let mut tight_cached = Budget::new(cost - 1).with_cache(cache.clone());
        let cached_err = p.is_satisfiable_with(&mut tight_cached);
        let mut tight_plain = Budget::new(cost - 1);
        let plain_err = p.is_satisfiable_with(&mut tight_plain);
        assert_eq!(cached_err.is_err(), plain_err.is_err());
        assert_eq!(tight_cached.remaining(), tight_plain.remaining());
    }

    #[test]
    fn capacity_cap_stops_inserts() {
        let cache = SolverCache::new();
        let p = small_problem();
        let key = sat_key(&p);
        {
            // Fill the shard this key routes to; the per-shard cap is
            // what `put` enforces.
            let mut shard = cache.shards[shard_index(&key)].lock().unwrap();
            for i in 0..(MAX_ENTRIES / SHARD_COUNT) {
                let mut q = Problem::new();
                q.add_var(format!("pad{i}"), VarKind::Input);
                shard.insert(
                    sat_key(&q),
                    Entry {
                        cost: 1,
                        value: CachedValue::Sat(true),
                    },
                );
            }
        }
        cache.put(key.clone(), 1, CachedValue::Sat(true));
        assert_eq!(cache.stats().inserts, 0);
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn base_intern_is_bounded() {
        let cache = SolverCache::new();
        for i in 0..(MAX_BASES * 2) {
            cache.intern_base(&base_form(i));
        }
        let s = cache.stats();
        assert!(
            s.base_forms <= MAX_BASES as u64,
            "occupancy {} exceeds the cap",
            s.base_forms
        );
        assert!(s.base_sweeps > 0);
        // Nothing referenced these bases, so sweeps actually evicted.
        assert!(s.base_evicted > 0);
    }

    #[test]
    fn sweep_keeps_bases_referenced_by_entries() {
        let cache = SolverCache::new();
        let keeper = base_form(usize::MAX);
        let keeper_id = cache.intern_base(&keeper);
        // A resident delta entry pins the keeper's id.
        cache.put(
            MemoKey::Delta(DeltaKey {
                op: Op::Sat,
                base: keeper_id,
                vars: vec![],
                keep: vec![],
                eqs: vec![],
                geqs: vec![],
            }),
            1,
            CachedValue::Sat(true),
        );
        for i in 0..(MAX_BASES * 2) {
            cache.intern_base(&base_form(i));
        }
        assert!(cache.stats().base_sweeps > 0);
        // The referenced base survived every sweep under its old id.
        assert_eq!(cache.intern_base(&keeper), keeper_id);
    }

    #[test]
    fn sweep_drops_checkpoints_with_their_bases() {
        use crate::linexpr::LinExpr;
        let record = || {
            let mut p = Problem::new();
            let x = p.add_var("x", VarKind::Input);
            p.add_eq(LinExpr::var(x));
            crate::tableau::record_checkpoint(&p)
        };
        let cache = SolverCache::new();
        let form = base_form(0);
        let id = cache.intern_base(&form);
        let set = cache.checkpoint_set(id);
        // Record-on-second-miss: the first miss only marks the base.
        assert!(set.sat_checkpoint(record).is_none(), "first miss must not record");
        assert!(set.sat_checkpoint(record).is_some(), "second miss must record");
        // Nothing references the base, so flooding the intern sweeps it —
        // and its checkpoint set goes with it.
        for i in 1..=(MAX_BASES * 2) {
            cache.intern_base(&base_form(i));
        }
        let fresh = cache.checkpoint_set(id);
        assert!(
            fresh.sat_checkpoint(record).is_none(),
            "swept base kept its checkpoint: a resume could alias stale state"
        );
        // Re-interning the same form yields a fresh id with a fresh,
        // empty checkpoint set: resume falls back to rebuild, never to a
        // checkpoint recorded under the retired id.
        let id2 = cache.intern_base(&form);
        assert_ne!(id, id2);
        assert!(cache.checkpoint_set(id2).sat_checkpoint(record).is_none());
    }

    #[test]
    fn evicted_base_reinterns_under_a_fresh_id() {
        let cache = SolverCache::new();
        let form = base_form(0);
        let first = cache.intern_base(&form);
        // Unreferenced, so a cap-triggered sweep evicts it.
        for i in 1..=(MAX_BASES * 2) {
            cache.intern_base(&base_form(i));
        }
        let second = cache.intern_base(&form);
        // Monotonic ids: never reused, so stale delta keys can only miss.
        assert_ne!(first, second);
        assert!(second > first);
    }
}
