//! Variables and the per-problem variable table.

use std::fmt;

use crate::symbol::Name;

/// Identifies a variable within a [`Problem`](crate::Problem)'s table.
///
/// `VarId`s are indices: they are only meaningful relative to the problem
/// (or family of problems sharing a table) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The position of this variable in its problem's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        VarId(u32::try_from(i).expect("variable table exceeds u32 range"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The role a variable plays in a problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// An ordinary quantified variable (e.g. a loop iteration variable).
    Input,
    /// A symbolic constant: a loop-invariant scalar whose value is unknown
    /// but fixed (the set `Sym` of the paper).
    Symbolic,
    /// An auxiliary existential introduced internally (by equality
    /// elimination or splintering). Never protected; always eliminated
    /// before results are reported.
    Wildcard,
}

/// Per-variable bookkeeping inside a problem. `Copy`: the name is an
/// interned [`Name`], so the whole record is a few machine words and
/// variable tables clone without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarInfo {
    pub(crate) name: Name,
    pub(crate) kind: VarKind,
    /// Protected variables survive projection.
    pub(crate) protected: bool,
    /// Dead variables have been eliminated; their columns are zero.
    pub(crate) dead: bool,
    /// Pinned variables are unprotected variables the solver has declined
    /// to eliminate (they live on as existentials in projection results,
    /// e.g. in stride constraints like `x = 2α`).
    pub(crate) pinned: bool,
}

impl VarInfo {
    /// The variable's display name.
    pub fn name(&self) -> &str {
        self.name.render()
    }

    /// The variable's kind.
    pub fn kind(&self) -> VarKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip() {
        let v = VarId::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "v7");
    }
}
