//! Constraint normalization: gcd reduction, integer tightening of
//! inequalities, duplicate elimination, contradiction detection, and
//! coalescing of opposed inequality pairs into equalities.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::int::{self, Coef};
use crate::linexpr::{Constraint, LinExpr, Relation};
use crate::problem::Problem;
use crate::Result;

/// Result of a normalization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No contradiction found; the problem may still be unsatisfiable.
    Consistent,
    /// The constraints are contradictory (no integer or real solution).
    Infeasible,
}

impl Problem {
    /// Normalizes every constraint in place.
    ///
    /// * Equalities are divided by the gcd of their coefficients; if the
    ///   constant is not divisible by that gcd the problem is infeasible
    ///   (the classic GCD test falls out of this step).
    /// * Inequalities are divided by the gcd of their coefficients with the
    ///   constant rounded *down* — the integer tightening `⌊c/g⌋` that makes
    ///   later shadows sharper.
    /// * Syntactic duplicates are merged keeping the tightest constant, and
    ///   an opposed pair `e >= 0 ∧ -e >= 0` is coalesced into `e == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`](crate::Error::Overflow) on coefficient
    /// overflow.
    pub fn normalize(&mut self) -> Result<Outcome> {
        if self.known_infeasible {
            return Ok(Outcome::Infeasible);
        }
        if self.normalize_eqs()? == Outcome::Infeasible
            || self.normalize_geqs()? == Outcome::Infeasible
        {
            self.known_infeasible = true;
            return Ok(Outcome::Infeasible);
        }
        Ok(Outcome::Consistent)
    }

    fn normalize_eqs(&mut self) -> Result<Outcome> {
        let mut out: Vec<Constraint> = Vec::with_capacity(self.eqs.len());
        for mut c in std::mem::take(&mut self.eqs) {
            let g = c.expr().coef_gcd();
            if g == 0 {
                if c.expr().constant() != 0 {
                    self.eqs = out;
                    return Ok(Outcome::Infeasible);
                }
                continue; // 0 == 0
            }
            if c.expr().constant() % g != 0 {
                // GCD test: Σ a_i x_i = -c has no integer solution.
                self.eqs = out;
                return Ok(Outcome::Infeasible);
            }
            let flip = {
                let e = c.expr();
                match e.terms().next() {
                    Some((_, c0)) => c0 < 0,
                    None => e.constant() < 0,
                }
            };
            if g > 1 || flip {
                c.map_expr(|e| {
                    e.divide_exact(g);
                    canonical_eq_sign(e);
                });
            }
            // Reduced equalities are interned, so syntactic duplicates
            // share one row: dedup is a scan over row handles (equality
            // lists are short — a handful of live equalities at most).
            match out.iter_mut().find(|o| o.row == c.row) {
                Some(prev) => prev.color = prev.color.meet(c.color),
                None => out.push(c),
            }
        }
        self.eqs = out;
        Ok(Outcome::Consistent)
    }

    fn normalize_geqs(&mut self) -> Result<Outcome> {
        // Single pass: gcd-tighten each inequality, then merge duplicates
        // and detect opposed pairs by bucketing on the constraint's
        // *direction* (coefficient vector with the first non-zero
        // coefficient made positive). No key vectors are materialized:
        // a bucket is found through a hash of the sign-canonical
        // coefficients and verified against a representative already in
        // `out` (hash collisions probe to the next slot).
        struct Bucket {
            /// Index into `out` of the constraint whose coefficients
            /// define this bucket's direction, and whether that
            /// representative is the flipped orientation. The entry at
            /// `rep` may later be replaced by a tighter constraint, but
            /// only by one with the same direction.
            rep: u32,
            rep_flipped: bool,
            pos: Option<u32>,
            neg: Option<u32>,
        }
        let mut out: Vec<Option<Constraint>> = Vec::with_capacity(self.geqs.len());
        // First-encounter order, so the coalesced-equality pass below is
        // deterministic.
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut index: HashMap<(u64, u32), u32> = HashMap::with_capacity(self.geqs.len());
        let mut new_eqs: Vec<Constraint> = Vec::new();

        for mut c in std::mem::take(&mut self.geqs) {
            let g = c.expr().coef_gcd();
            if g == 0 {
                if c.expr().constant() < 0 {
                    self.geqs = out.into_iter().flatten().collect();
                    return Ok(Outcome::Infeasible);
                }
                continue; // constant >= 0: tautology
            }
            if g > 1 {
                let k = int::floor_div(c.expr().constant(), g);
                c.map_expr(|e| {
                    e.divide_exact_coeffs_only(g);
                    e.set_constant(k);
                });
            }

            let (hash, flipped) = direction_hash(c.expr().coeffs());
            let mut probe = 0u32;
            let bidx = loop {
                match index.entry((hash, probe)) {
                    Entry::Vacant(e) => {
                        e.insert(buckets.len() as u32);
                        buckets.push(Bucket {
                            rep: out.len() as u32,
                            rep_flipped: flipped,
                            pos: None,
                            neg: None,
                        });
                        break buckets.len() - 1;
                    }
                    Entry::Occupied(e) => {
                        let bi = *e.get() as usize;
                        let b = &buckets[bi];
                        let rep = out[b.rep as usize]
                            .as_ref()
                            .expect("representatives live until bucketing ends");
                        if same_direction(
                            c.expr().coeffs(),
                            rep.expr().coeffs(),
                            flipped != b.rep_flipped,
                        ) {
                            break bi;
                        }
                        probe += 1;
                    }
                }
            };
            let bucket = &mut buckets[bidx];
            let slot = if flipped {
                &mut bucket.neg
            } else {
                &mut bucket.pos
            };
            match *slot {
                Some(i) => {
                    let prev = out[i as usize]
                        .as_mut()
                        .expect("slot points at live constraint");
                    // Same direction: keep the tighter (smaller constant);
                    // equal constants merge colors.
                    if c.expr().constant() < prev.expr().constant() {
                        *prev = c;
                    } else if c.expr().constant() == prev.expr().constant() {
                        prev.color = prev.color.meet(c.color);
                    }
                }
                None => {
                    *slot = Some(out.len() as u32);
                    out.push(Some(c));
                }
            }
        }

        // Opposed pairs: e + c1 >= 0 and -e + c2 >= 0 require c1 + c2 >= 0.
        for bucket in &buckets {
            if let (Some(i), Some(j)) = (bucket.pos, bucket.neg) {
                let (i, j) = (i as usize, j as usize);
                let (c1, c2) = {
                    let a = out[i].as_ref().expect("live");
                    let b = out[j].as_ref().expect("live");
                    (a.expr().constant(), b.expr().constant())
                };
                let sum = c1 as i128 + c2 as i128;
                if sum < 0 {
                    self.geqs = out.into_iter().flatten().collect();
                    return Ok(Outcome::Infeasible);
                }
                if sum == 0 {
                    // Coalesce into an equality.
                    let a = out[i].take().expect("live");
                    let b = out[j].take().expect("live");
                    let color = a.color.join(b.color);
                    // Reuse the interned row: only the relation changes.
                    new_eqs.push(Constraint {
                        row: a.row,
                        rel: Relation::Zero,
                        color,
                    });
                }
            }
        }

        self.geqs = out.into_iter().flatten().collect();
        if !new_eqs.is_empty() {
            self.eqs.extend(new_eqs);
            // Newly created equalities need their own normalization.
            if self.normalize_eqs()? == Outcome::Infeasible {
                return Ok(Outcome::Infeasible);
            }
        }
        Ok(Outcome::Consistent)
    }
}

impl LinExpr {
    /// Divides the variable coefficients (but not the constant) exactly.
    pub(crate) fn divide_exact_coeffs_only(&mut self, d: Coef) {
        debug_assert!(d > 0);
        let constant = self.constant();
        self.divide_coeffs(d);
        self.set_constant(constant);
    }

    fn divide_coeffs(&mut self, d: Coef) {
        let terms: Vec<(crate::VarId, Coef)> = self.terms().collect();
        for (v, c) in terms {
            debug_assert_eq!(c % d, 0);
            self.set_coef(v, c / d);
        }
    }
}

/// Flips the expression so the first non-zero coefficient is positive.
fn canonical_eq_sign(e: &mut LinExpr) {
    let first = e.terms().next();
    if let Some((_, c)) = first {
        if c < 0 {
            e.negate();
        }
    } else if e.constant() < 0 {
        e.negate();
    }
}

/// FNV-1a hash of the sign-canonical direction of a dense coefficient
/// vector, plus whether the vector had to be flipped (first non-zero
/// coefficient negative) to reach that canonical direction.
pub(crate) fn direction_hash(coeffs: &[Coef]) -> (u64, bool) {
    let sign: Coef = match coeffs.iter().find(|&&c| c != 0) {
        Some(&c) if c < 0 => -1,
        _ => 1,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in coeffs {
        for b in ((sign * c) as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    (h, sign < 0)
}

/// Whether two dense coefficient vectors describe the same direction:
/// equal term-for-term, negated term-for-term when `opposite`.
pub(crate) fn same_direction(a: &[Coef], b: &[Coef], opposite: bool) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if opposite {
        a.iter().zip(b).all(|(&x, &y)| x == -y)
    } else {
        a == b
    }
}

/// Re-exported relation check used by other modules: whether `a` implies
/// `b` on syntactic grounds (same direction, tighter constant), treating
/// both as `expr >= 0`.
pub(crate) fn single_implies(a: &Constraint, b: &Constraint) -> bool {
    match (a.relation(), b.relation()) {
        (Relation::NonNegative, Relation::NonNegative) => {
            a.expr().coeffs() == b.expr().coeffs()
                && a.expr().constant() <= b.expr().constant()
        }
        (Relation::Zero, Relation::NonNegative) => {
            // e == 0 implies λ·e + c >= 0 iff c >= 0, for either sign of
            // λ; the general check subsumes the same-key fast path.
            if a.expr().coeffs().is_empty() {
                return false;
            }
            let same_key = a.expr().coeffs() == b.expr().coeffs()
                && b.expr().constant() - a.expr().constant() >= 0;
            same_key || proportional_implies(a, b)
        }
        (Relation::Zero, Relation::Zero) => a.row == b.row,
        (Relation::NonNegative, Relation::Zero) => false,
    }
}

/// Whether equality `a` (e == 0) implies inequality `b` (f >= 0) because
/// `f = λ·e + c` with `c >= 0` for some integer λ (either sign).
fn proportional_implies(a: &Constraint, b: &Constraint) -> bool {
    debug_assert_eq!(a.relation(), Relation::Zero);
    // Find the ratio from the first term of a.
    let Some((p, q)) = a
        .expr()
        .terms()
        .next()
        .map(|(v, ca)| (b.expr().coef(v), ca))
    else {
        return false;
    };
    if p == 0 {
        return false;
    }
    if q == 0 || p % q != 0 {
        return false;
    }
    let lambda = p / q;
    // Check every coefficient matches b = lambda * a.
    for (v, ca) in a.expr().terms() {
        if b.expr().coef(v) != lambda * ca {
            return false;
        }
    }
    for (v, _) in b.expr().terms() {
        if a.expr().coef(v) == 0 {
            return false;
        }
    }
    b.expr().constant() - lambda * a.expr().constant() >= 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn two_var_problem() -> (Problem, crate::VarId, crate::VarId) {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        (p, x, y)
    }

    #[test]
    fn gcd_test_on_equalities() {
        // 2x + 4y = 1 has no integer solution.
        let (mut p, x, y) = two_var_problem();
        p.add_eq(LinExpr::term(2, x).plus_term(4, y).plus_const(-1));
        assert_eq!(p.normalize().unwrap(), Outcome::Infeasible);
    }

    #[test]
    fn gcd_reduces_equalities() {
        let (mut p, x, y) = two_var_problem();
        p.add_eq(LinExpr::term(2, x).plus_term(4, y).plus_const(-6));
        assert_eq!(p.normalize().unwrap(), Outcome::Consistent);
        assert_eq!(p.eqs()[0].expr().coef(x), 1);
        assert_eq!(p.eqs()[0].expr().coef(y), 2);
        assert_eq!(p.eqs()[0].expr().constant(), -3);
    }

    #[test]
    fn inequality_tightening_floors_constant() {
        // 2x >= 1  tightens to  x >= 1 (i.e. x - 1 >= 0): 2x - 1 >= 0 -> x + floor(-1/2) >= 0.
        let (mut p, x, _) = two_var_problem();
        p.add_geq(LinExpr::term(2, x).plus_const(-1));
        p.normalize().unwrap();
        assert_eq!(p.geqs()[0].expr().coef(x), 1);
        assert_eq!(p.geqs()[0].expr().constant(), -1);
    }

    #[test]
    fn constant_contradiction() {
        let (mut p, _, _) = two_var_problem();
        p.add_geq(LinExpr::constant_expr(-1));
        assert_eq!(p.normalize().unwrap(), Outcome::Infeasible);
        assert!(p.is_known_infeasible());
    }

    #[test]
    fn constant_tautology_dropped() {
        let (mut p, _, _) = two_var_problem();
        p.add_geq(LinExpr::constant_expr(5));
        p.add_eq(LinExpr::zero());
        assert_eq!(p.normalize().unwrap(), Outcome::Consistent);
        assert_eq!(p.num_constraints(), 0);
        assert!(p.is_trivially_true());
    }

    #[test]
    fn duplicate_inequalities_keep_tightest() {
        let (mut p, x, _) = two_var_problem();
        p.add_geq(LinExpr::var(x).plus_const(-3)); // x >= 3
        p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5 (tighter)
        p.add_geq(LinExpr::var(x).plus_const(-1)); // x >= 1
        p.normalize().unwrap();
        assert_eq!(p.geqs().len(), 1);
        assert_eq!(p.geqs()[0].expr().constant(), -5);
    }

    #[test]
    fn opposed_pair_contradiction() {
        let (mut p, x, _) = two_var_problem();
        p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5
        p.add_geq(LinExpr::term(-1, x).plus_const(3)); // x <= 3
        assert_eq!(p.normalize().unwrap(), Outcome::Infeasible);
    }

    #[test]
    fn opposed_pair_coalesces_to_equality() {
        let (mut p, x, _) = two_var_problem();
        p.add_geq(LinExpr::var(x).plus_const(-4)); // x >= 4
        p.add_geq(LinExpr::term(-1, x).plus_const(4)); // x <= 4
        assert_eq!(p.normalize().unwrap(), Outcome::Consistent);
        assert_eq!(p.geqs().len(), 0);
        assert_eq!(p.eqs().len(), 1);
        assert!(p.satisfies(&[4, 0]));
        assert!(!p.satisfies(&[5, 0]));
    }

    #[test]
    fn opposed_pair_via_gcd_tightening() {
        // 2x >= 3 and 2x <= 4: tightening gives x >= 2 and x <= 2 -> x == 2.
        let (mut p, x, _) = two_var_problem();
        p.add_geq(LinExpr::term(2, x).plus_const(-3));
        p.add_geq(LinExpr::term(-2, x).plus_const(4));
        assert_eq!(p.normalize().unwrap(), Outcome::Consistent);
        assert_eq!(p.eqs().len(), 1);
        assert!(p.satisfies(&[2, 0]));
    }

    #[test]
    fn single_implies_same_direction() {
        let (_, x, _) = two_var_problem();
        let tight = Constraint::geq(LinExpr::var(x).plus_const(-5));
        let loose = Constraint::geq(LinExpr::var(x).plus_const(-3));
        assert!(single_implies(&tight, &loose));
        assert!(!single_implies(&loose, &tight));
    }

    #[test]
    fn equality_implies_scaled_inequality() {
        let (_, x, y) = two_var_problem();
        // x - y == 0 implies 2x - 2y + 3 >= 0.
        let e = Constraint::eq(LinExpr::var(x).plus_term(-1, y));
        let f = Constraint::geq(LinExpr::term(2, x).plus_term(-2, y).plus_const(3));
        assert!(single_implies(&e, &f));
        // ... and implies -3x + 3y >= 0 (lambda = -3).
        let g = Constraint::geq(LinExpr::term(-3, x).plus_term(3, y));
        assert!(single_implies(&e, &g));
        // ... but not 2x - 2y - 1 >= 0.
        let h = Constraint::geq(LinExpr::term(2, x).plus_term(-2, y).plus_const(-1));
        assert!(!single_implies(&e, &h));
    }
}
