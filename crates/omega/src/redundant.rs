//! Redundant constraint elimination: a cheap syntactic pass and an exact
//! (satisfiability-based) pass.

use crate::linexpr::{Color, Constraint, LinExpr, Relation};
use crate::normalize::{direction_hash, single_implies};
use crate::problem::{Budget, Problem};
use crate::Result;

impl Problem {
    /// Drops inequalities that are syntactically implied by a single other
    /// constraint (same direction with a tighter constant, or a multiple of
    /// an equality). Cheap; run after projection to tidy results.
    ///
    /// A red constraint may be dropped when implied by any constraint; a
    /// black constraint is only dropped when implied by another *black*
    /// constraint, so gist contexts are never weakened.
    pub fn remove_redundant_quick(&mut self) {
        let n = self.geqs.len();
        let mut drop = vec![false; n];
        // Inequality-vs-inequality implication needs the coefficient
        // vectors to be *identical*, so only constraints sharing a
        // direction can interact. Bucket by the sign-canonical direction
        // hash plus orientation (the same grouping normalization uses)
        // and run the pairwise scan within each class: classes are
        // independent, and within a class the original ascending-index
        // dynamics — earlier identical wins, a dropped constraint kills
        // nothing, black is never dropped by red — are preserved exactly.
        // Hash collisions merely merge classes; `single_implies`
        // re-checks the coefficients, so a collision costs comparisons,
        // never correctness.
        let mut keys: Vec<(u64, bool, u32)> = self
            .geqs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (h, f) = direction_hash(c.expr().coeffs());
                (h, f, i as u32)
            })
            .collect();
        keys.sort_unstable();
        let mut start = 0;
        while start < keys.len() {
            let mut end = start + 1;
            while end < keys.len()
                && (keys[end].0, keys[end].1) == (keys[start].0, keys[start].1)
            {
                end += 1;
            }
            // Indices within a class are ascending (the sort key ends
            // with the index), matching the original scan order.
            let class = &keys[start..end];
            for &(_, _, i) in class {
                let i = i as usize;
                if drop[i] {
                    continue;
                }
                for &(_, _, j) in class {
                    let j = j as usize;
                    if i == j || drop[j] {
                        continue;
                    }
                    let (a, b) = (&self.geqs[j], &self.geqs[i]);
                    if b.color == Color::Black && a.color == Color::Red {
                        continue;
                    }
                    if single_implies(a, b) {
                        // Identical constraints: keep the earlier one.
                        let identical = a.row == b.row;
                        if identical && j > i {
                            continue;
                        }
                        drop[i] = true;
                        break;
                    }
                }
            }
            start = end;
        }
        // Equalities also imply inequalities.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if drop[i] {
                continue;
            }
            let b = &self.geqs[i];
            for e in &self.eqs {
                if b.color == Color::Black && e.color == Color::Red {
                    continue;
                }
                if single_implies(e, b) {
                    drop[i] = true;
                    break;
                }
            }
        }
        let mut keep = drop.iter().map(|d| !d);
        self.geqs.retain(|_| keep.next().unwrap());
    }

    /// Exact redundancy elimination: a constraint is dropped iff the
    /// remaining constraints imply it (tested with the Omega test).
    /// Quadratic in constraint count with a satisfiability test per
    /// candidate; use on small problems or final results.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn remove_redundant_exact(&mut self, budget: &mut Budget) -> Result<()> {
        self.remove_redundant_quick();
        let mut i = 0;
        while i < self.geqs.len() {
            let candidate = self.geqs[i].clone();
            if candidate.color == Color::Red {
                // Exact kills are for presentation; red constraints carry
                // gist information and are left to the gist machinery.
                i += 1;
                continue;
            }
            let mut test = self.clone();
            test.geqs.remove(i);
            test.add_constraint(Constraint::geq(negate_geq(candidate.expr())));
            budget.spend(1)?;
            if !test.is_satisfiable_with(budget)? {
                self.geqs.remove(i);
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Tidies a problem for presentation: normalizes, removes wildcards
    /// where exact substitution permits, and drops redundant constraints.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn simplify(&mut self) -> Result<()> {
        let mut budget = Budget::default();
        for v in self.var_ids().collect::<Vec<_>>() {
            let wild = self.var_info(v).kind() == crate::VarKind::Wildcard;
            self.set_protected(v, !wild);
        }
        self.eliminate_equalities(&mut budget)?;
        self.normalize()?;
        self.remove_redundant_quick();
        Ok(())
    }
}

/// The integer negation of `e >= 0`: `-e - 1 >= 0`.
pub(crate) fn negate_geq(e: &LinExpr) -> LinExpr {
    let mut n = e.negated();
    n.add_constant(-1).expect("negation overflow");
    n
}

/// Splits an equality constraint into the two inequalities `e >= 0`,
/// `-e >= 0`, preserving color.
pub(crate) fn split_equality(c: &Constraint) -> [Constraint; 2] {
    debug_assert_eq!(c.relation(), Relation::Zero);
    [
        Constraint::geq(c.expr().clone()).with_color(c.color()),
        Constraint::geq(c.expr().negated()).with_color(c.color()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    #[test]
    fn quick_removes_looser_bound() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-5)); // x >= 5
        p.add_geq(LinExpr::var(x).plus_const(-3)); // x >= 3 (redundant)
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 1);
        assert_eq!(p.geqs()[0].expr().constant(), -5);
    }

    #[test]
    fn quick_keeps_identical_once() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 1);
    }

    #[test]
    fn quick_drop_order_ties_keep_earliest_tight_copy() {
        // [x>=3, x>=5, x>=5, x>=3]: the looser bounds and the *later*
        // identical copy drop; the first x>=5 survives. Pins the
        // earlier-identical-wins dynamics of the bucketed scan.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 1);
        assert_eq!(p.geqs()[0].expr().constant(), -5);
    }

    #[test]
    fn quick_identical_red_black_ties_are_order_sensitive() {
        let x_ge_3 = |p: &mut Problem| {
            let x = p.find_var("x").unwrap();
            LinExpr::var(x).plus_const(-3)
        };
        // Black first: the red copy is dropped (implied by an earlier
        // identical black constraint).
        let mut p = Problem::new();
        p.add_var("x", VarKind::Input);
        let e = x_ge_3(&mut p);
        p.add_geq(e.clone());
        p.add_constraint(Constraint::geq(e).with_color(Color::Red));
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 1);
        assert_eq!(p.geqs()[0].color(), Color::Black);

        // Red first: both survive — red cannot drop black, and the black
        // copy is later so it cannot drop the red one either.
        let mut q = Problem::new();
        q.add_var("x", VarKind::Input);
        let e = x_ge_3(&mut q);
        q.add_constraint(Constraint::geq(e.clone()).with_color(Color::Red));
        q.add_geq(e);
        q.remove_redundant_quick();
        assert_eq!(q.geqs().len(), 2);
    }

    #[test]
    fn quick_opposite_orientations_do_not_interact() {
        // x >= 3 and -x >= -10 share a direction class with opposite
        // orientation: neither implies the other.
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p.add_geq(LinExpr::term(-1, x).plus_const(10));
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 2);
    }

    #[test]
    fn quick_never_drops_black_for_red() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        p.add_constraint(
            Constraint::geq(LinExpr::var(x).plus_const(-5)).with_color(Color::Red),
        );
        p.add_geq(LinExpr::var(x).plus_const(-3)); // black, looser
        p.remove_redundant_quick();
        assert_eq!(p.geqs().len(), 2, "black context must survive");
    }

    #[test]
    fn exact_removes_combination_implied() {
        // x >= 0, y >= 0 imply x + y >= 0 (not caught by the quick pass).
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::var(y));
        p.add_geq(LinExpr::var(x).plus_term(1, y));
        let mut b = Budget::default();
        p.remove_redundant_exact(&mut b).unwrap();
        assert_eq!(p.geqs().len(), 2);
        assert!(p.geqs().iter().all(|c| c.expr().num_terms() == 1));
    }

    #[test]
    fn exact_keeps_non_redundant() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        p.add_geq(LinExpr::var(x));
        p.add_geq(LinExpr::var(y).plus_term(-1, x).plus_const(-1));
        let mut b = Budget::default();
        p.remove_redundant_exact(&mut b).unwrap();
        assert_eq!(p.geqs().len(), 2);
    }

    #[test]
    fn negate_geq_partitions_integers() {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let e = LinExpr::var(x).plus_const(-5); // x - 5 >= 0
        let n = negate_geq(&e); // 4 - x >= 0
        for xv in 0..10 {
            let orig = e.eval(&[xv]) >= 0;
            let neg = n.eval(&[xv]) >= 0;
            assert!(orig != neg, "x = {xv} must satisfy exactly one side");
        }
    }
}
