//! Witness extraction: produce an explicit integer solution of a
//! satisfiable problem by running the elimination forward and assigning
//! values on the way back (back-substitution through Fourier–Motzkin).
//!
//! Not part of the 1992 paper, but invaluable for validating the solver:
//! every "satisfiable" answer can be certified by a concrete point.

use std::collections::BTreeMap;

use crate::fourier::Elimination;
use crate::int::{self, Coef};
use crate::linexpr::LinExpr;
use crate::normalize::Outcome;
use crate::problem::{Budget, Problem};
use crate::var::VarId;
use crate::{Error, Result};

impl Problem {
    /// Finds an integer solution, if one exists.
    ///
    /// The returned map assigns every variable that occurs in a
    /// constraint; free variables may be absent (any value works).
    /// The witness always satisfies the problem — this is checked in
    /// debug builds.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (overflow, exhausted budget).
    ///
    /// # Examples
    ///
    /// ```
    /// use omega::{LinExpr, Problem, VarKind};
    ///
    /// let mut p = Problem::new();
    /// let x = p.add_var("x", VarKind::Input);
    /// let y = p.add_var("y", VarKind::Input);
    /// p.add_eq(LinExpr::term(3, x).plus_term(5, y).plus_const(-12));
    /// p.add_geq(LinExpr::var(x));
    /// p.add_geq(LinExpr::var(y));
    /// let sol = p.sample_solution()?.expect("3x + 5y = 12 is solvable");
    /// let xv = sol[&x];
    /// let yv = sol[&y];
    /// assert_eq!(3 * xv + 5 * yv, 12);
    /// assert!(xv >= 0 && yv >= 0);
    /// # Ok::<(), omega::Error>(())
    /// ```
    pub fn sample_solution(&self) -> Result<Option<BTreeMap<VarId, Coef>>> {
        self.sample_solution_with(&mut Budget::default())
    }

    /// [`sample_solution`](Problem::sample_solution) with an explicit
    /// budget.
    ///
    /// # Errors
    ///
    /// See [`sample_solution`](Problem::sample_solution).
    pub fn sample_solution_with(
        &self,
        budget: &mut Budget,
    ) -> Result<Option<BTreeMap<VarId, Coef>>> {
        let mut p = self.clone();
        for v in p.var_ids().collect::<Vec<_>>() {
            p.set_protected(v, false);
        }
        let solution = sample_rec(p, budget, 0)?;
        #[cfg(debug_assertions)]
        if let Some(sol) = &solution {
            let dense = to_dense(sol, self.num_vars());
            debug_assert!(
                self.satisfies(&dense),
                "witness {sol:?} does not satisfy {self}"
            );
        }
        Ok(solution)
    }
}

#[cfg(any(debug_assertions, test))]
fn to_dense(sol: &BTreeMap<VarId, Coef>, n: usize) -> Vec<Coef> {
    let size = sol
        .keys()
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0)
        .max(n);
    let mut dense = vec![0; size];
    for (v, &c) in sol {
        dense[v.index()] = c;
    }
    dense
}

const MAX_DEPTH: usize = 64;

fn sample_rec(
    mut p: Problem,
    budget: &mut Budget,
    depth: usize,
) -> Result<Option<BTreeMap<VarId, Coef>>> {
    budget.spend(1)?;
    if depth > MAX_DEPTH {
        return Err(Error::TooComplex { budget: MAX_DEPTH });
    }
    if p.normalize()? == Outcome::Infeasible {
        return Ok(None);
    }

    // Equalities: substitute a unit pivot (any variable) and compute its
    // value afterwards from the substitution.
    if let Some((eq_idx, pivot)) = pick_any_unit_pivot(&p) {
        let eq = p.eqs()[eq_idx].clone();
        let a = eq.expr().coef(pivot);
        let mut rest = eq.expr().clone();
        rest.set_coef(pivot, 0);
        rest.scale(-a)?; // a = ±1
        let mut q = p.clone();
        q.eqs.swap_remove(eq_idx);
        q.substitute_var(pivot, &rest, eq.color())?;
        let Some(mut sol) = sample_rec(q, budget, depth + 1)? else {
            return Ok(None);
        };
        let value = eval_expr(&rest, &sol);
        sol.insert(pivot, int::narrow(value)?);
        return Ok(Some(sol));
    }
    // Non-unit equalities: one mod̂ step (introduces a wildcard whose
    // assignment determines the pivot), then recover the pivot from its
    // replacement expression on the way back.
    if let Some((eq_idx, pivot)) = pick_any_small_pivot(&p) {
        let mut q = p.clone();
        let replacement = q.sample_mod_hat(eq_idx, pivot)?;
        let Some(mut sol) = sample_rec(q, budget, depth + 1)? else {
            return Ok(None);
        };
        sol.insert(pivot, int::narrow(eval_expr(&replacement, &sol))?);
        return Ok(Some(sol));
    }

    // Inequalities only: eliminate one variable, solve the shadow, then
    // pick a value for the variable within its bounds under the partial
    // assignment.
    let Some((v, _)) = p.choose_elimination_var() else {
        // No live variables: consistent constants.
        return Ok(Some(BTreeMap::new()));
    };
    match p.fm_eliminate(v, budget)? {
        Elimination::Exact(q) => {
            let Some(mut sol) = sample_rec(q, budget, depth + 1)? else {
                return Ok(None);
            };
            let Some(value) = bounds_under(&p, v, &sol)? else {
                // Exactness guarantees a value exists; defensive.
                return Ok(None);
            };
            sol.insert(v, value);
            Ok(Some(sol))
        }
        Elimination::Approx {
            dark, splinters, ..
        } => {
            if let Some(mut sol) = sample_rec(dark, budget, depth + 1)? {
                if let Some(value) = bounds_under(&p, v, &sol)? {
                    sol.insert(v, value);
                    return Ok(Some(sol));
                }
            }
            for s in splinters {
                if let Some(sol) = sample_rec(s, budget, depth + 1)? {
                    return Ok(Some(sol));
                }
            }
            Ok(None)
        }
    }
}

/// An equality pivot with |coefficient| = 1, over any live variable.
fn pick_any_unit_pivot(p: &Problem) -> Option<(usize, VarId)> {
    for (i, c) in p.eqs().iter().enumerate() {
        for (v, coef) in c.expr().terms() {
            if coef.abs() == 1 {
                return Some((i, v));
            }
        }
    }
    None
}

/// Any equality pivot (smallest |coefficient|) for the mod̂ step.
fn pick_any_small_pivot(p: &Problem) -> Option<(usize, VarId)> {
    let mut best: Option<(usize, VarId, Coef)> = None;
    for (i, c) in p.eqs().iter().enumerate() {
        for (v, coef) in c.expr().terms() {
            let a = coef.abs();
            if best.is_none_or(|(_, _, b)| a < b) {
                best = Some((i, v, a));
            }
        }
    }
    best.map(|(i, v, _)| (i, v))
}

impl Problem {
    /// A mod̂ step usable with protected variables ignored (sampling
    /// unprotects everything first).
    fn sample_mod_hat(&mut self, eq_idx: usize, k: VarId) -> Result<LinExpr> {
        let eq = self.eqs[eq_idx].clone();
        let a_k = eq.expr().coef(k);
        debug_assert!(a_k.abs() > 1);
        let m = int::narrow(a_k.unsigned_abs() as i128 + 1)?;
        let sigma = self.add_wildcard();
        let mut reduced = LinExpr::zero();
        for (v, c) in eq.expr().terms() {
            reduced.set_coef(v, int::mod_hat(c, m));
        }
        reduced.set_constant(int::mod_hat(eq.expr().constant(), m));
        reduced.set_coef(sigma, -m);
        let s = a_k.signum();
        debug_assert_eq!(reduced.coef(k), -s);
        let mut replacement = reduced;
        replacement.set_coef(k, 0);
        replacement.scale(s)?;
        self.substitute_var(k, &replacement, eq.color())?;
        Ok(replacement)
    }
}

fn eval_expr(e: &LinExpr, sol: &BTreeMap<VarId, Coef>) -> i128 {
    let mut acc = e.constant() as i128;
    for (v, c) in e.terms() {
        acc += c as i128 * sol.get(&v).copied().unwrap_or(0) as i128;
    }
    acc
}

/// The tightest integer bounds on `v` under `sol`; returns a value inside
/// (preferring the lower bound, or 0 for fully unbounded variables).
fn bounds_under(
    p: &Problem,
    v: VarId,
    sol: &BTreeMap<VarId, Coef>,
) -> Result<Option<Coef>> {
    let mut lo: Option<i128> = None;
    let mut hi: Option<i128> = None;
    for c in p.geqs() {
        let a = c.expr().coef(v);
        if a == 0 {
            continue;
        }
        // a·v + rest >= 0 under sol.
        let mut rest = c.expr().clone();
        rest.set_coef(v, 0);
        let r = eval_expr(&rest, sol);
        if a > 0 {
            // v >= ceil(-r / a)
            let b = div_ceil_i128(-r, a as i128);
            lo = Some(lo.map_or(b, |x| x.max(b)));
        } else {
            // v <= floor(r / -a)
            let b = div_floor_i128(r, -a as i128);
            hi = Some(hi.map_or(b, |x| x.min(b)));
        }
    }
    let value = match (lo, hi) {
        (Some(l), Some(h)) if l > h => return Ok(None),
        (Some(l), _) => l,
        (None, Some(h)) => h,
        (None, None) => 0,
    };
    Ok(Some(int::narrow(value)?))
}

fn div_floor_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn vars2() -> (Problem, VarId, VarId) {
        let mut p = Problem::new();
        let x = p.add_var("x", VarKind::Input);
        let y = p.add_var("y", VarKind::Input);
        (p, x, y)
    }

    fn check_witness(p: &Problem) {
        let sol = p
            .sample_solution()
            .unwrap()
            .unwrap_or_else(|| panic!("expected satisfiable: {p}"));
        let dense = to_dense(&sol, p.num_vars());
        assert!(p.satisfies(&dense), "witness {sol:?} fails {p}");
    }

    #[test]
    fn box_witness() {
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::var(x).plus_const(-3));
        p.add_geq(LinExpr::term(-1, x).plus_const(7));
        p.add_geq(LinExpr::var(y).plus_term(-1, x));
        check_witness(&p);
    }

    #[test]
    fn diophantine_witness() {
        let (mut p, x, y) = vars2();
        p.add_eq(LinExpr::term(7, x).plus_term(12, y).plus_const(-31));
        check_witness(&p);
        let sol = p.sample_solution().unwrap().unwrap();
        assert_eq!(7 * sol[&x] + 12 * sol[&y], 31);
    }

    #[test]
    fn unsat_yields_none() {
        let (mut p, x, _) = vars2();
        p.add_geq(LinExpr::var(x).plus_const(-5));
        p.add_geq(LinExpr::term(-1, x).plus_const(4));
        assert!(p.sample_solution().unwrap().is_none());

        let (mut q, x, _) = vars2();
        q.add_eq(LinExpr::term(2, x).plus_const(-1));
        assert!(q.sample_solution().unwrap().is_none());
    }

    #[test]
    fn splinter_witness() {
        // Requires the inexact machinery: 3x ≡ 0 (mod), tight band.
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::term(3, x).plus_term(-2, y));
        p.add_geq(LinExpr::term(-3, x).plus_term(2, y));
        p.add_geq(LinExpr::var(y).plus_const(-3));
        p.add_geq(LinExpr::term(-1, y).plus_const(30));
        check_witness(&p);
    }

    #[test]
    fn unbounded_problem_witness() {
        let (mut p, x, y) = vars2();
        p.add_geq(LinExpr::var(x).plus_term(1, y));
        check_witness(&p);
    }

    #[test]
    fn witness_matches_sat_on_grid() {
        // For a grid of problems, sample_solution() is Some iff
        // is_satisfiable(), and the witness always checks out.
        for a in -3i64..=3 {
            for b in -3i64..=3 {
                for c in -5i64..=5 {
                    if a == 0 && b == 0 {
                        continue;
                    }
                    let (mut p, x, y) = vars2();
                    p.add_geq(LinExpr::term(a, x).plus_term(b, y).plus_const(c));
                    p.add_geq(LinExpr::var(x).plus_const(4));
                    p.add_geq(LinExpr::term(-1, x).plus_const(4));
                    p.add_geq(LinExpr::var(y).plus_const(4));
                    p.add_geq(LinExpr::term(-1, y).plus_const(4));
                    p.add_eq(LinExpr::term(2, x).plus_term(3, y).plus_const(-1));
                    let sat = p.is_satisfiable().unwrap();
                    let sol = p.sample_solution().unwrap();
                    assert_eq!(sat, sol.is_some(), "{p}");
                    if let Some(sol) = sol {
                        let dense = to_dense(&sol, p.num_vars());
                        assert!(p.satisfies(&dense));
                    }
                }
            }
        }
    }
}
